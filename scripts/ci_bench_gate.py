"""Soft performance gate: diff fresh bench artifacts against baselines.

Usage::

    python scripts/ci_bench_gate.py <fresh_dir> <baseline_dir> \
        [--tolerance 0.20]

For every ``BENCH_<profile>.json`` present in *both* directories, the
profile's headline throughput metric (``events_per_sec``, falling back
to ``trials_per_sec``) is compared.  A drop of more than ``tolerance``
(relative) fails the gate with exit code 1; CI runs this inside a
``continue-on-error`` job, so a breach is a loud warning, not a red
build — bench numbers on shared CI runners are noisy, and the
committed baselines were measured on a different machine.  Improvements
and missing baselines never fail.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

#: Headline throughput metric per artifact, in preference order.
HEADLINE_METRICS = ("events_per_sec", "trials_per_sec")


def headline(metrics: dict) -> tuple:
    """Pick the headline (name, value) throughput of one artifact."""
    for name in HEADLINE_METRICS:
        if name in metrics:
            return name, float(metrics[name])
    raise KeyError(f"no headline metric among {HEADLINE_METRICS}")


def main(argv=None) -> int:
    """Compare artifacts; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh_dir")
    parser.add_argument("baseline_dir")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="max relative throughput drop (default 0.20)")
    args = parser.parse_args(argv)

    breaches = 0
    compared = 0
    for baseline_path in sorted(
            glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json"))):
        name = os.path.basename(baseline_path)
        fresh_path = os.path.join(args.fresh_dir, name)
        if not os.path.exists(fresh_path):
            print(f"{name}: no fresh artifact; skipped")
            continue
        with open(baseline_path) as handle:
            base = json.load(handle)
        with open(fresh_path) as handle:
            fresh = json.load(handle)
        metric, base_value = headline(base["metrics"])
        fresh_value = float(fresh["metrics"].get(metric, 0.0))
        ratio = fresh_value / base_value if base_value else 0.0
        compared += 1
        verdict = "ok"
        if ratio < 1.0 - args.tolerance:
            verdict = f"REGRESSION (> {args.tolerance:.0%} drop)"
            breaches += 1
        print(f"{name}: {metric} baseline {base_value:,.0f} "
              f"fresh {fresh_value:,.0f} ({ratio:.2f}x)  {verdict}")

    if compared == 0:
        print("bench gate: nothing to compare")
        return 0
    print(f"bench gate: {'PASS' if breaches == 0 else 'FAIL'} "
          f"({breaches} breach(es) of {compared} profile(s))")
    return 0 if breaches == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
