#!/usr/bin/env python
"""Capture a journaled repro run for a failing CI build.

When the tier-1 suite fails, CI runs this script to produce a
dependability artifact an investigator can open without re-running
anything: a canonical fault trial (process crash under load) with the
journal on, exported as JSONL plus the self-contained HTML report.

Usage: python scripts/ci_failure_journal.py [OUT_DIR]   (default
``ci-artifacts``).  Exit code 0 even if the trial itself looks odd —
this script documents a failure, it must not mask it.
"""

from __future__ import annotations

import json
import os
import sys


def main(out_dir: str = "ci-artifacts") -> int:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                    "src"))
    from repro.experiments import run_fault_trial
    from repro.journal import write_jsonl
    from repro.replication import ReplicationStyle
    from repro.tools import journal_html, journal_summary

    os.makedirs(out_dir, exist_ok=True)

    def crash(context):
        context.injector.crash_process_at(
            context.replicas[1].process, context.t0 + 300_000.0)

    result = run_fault_trial(
        ReplicationStyle.ACTIVE, n_replicas=3, n_clients=1,
        duration_us=800_000.0, rate_per_s=150.0, seed=0,
        inject=crash, journal=True)

    events = result.journal_events or []
    jsonl_path = os.path.join(out_dir, "failure.journal.jsonl")
    html_path = os.path.join(out_dir, "failure.report.html")
    digest_path = os.path.join(out_dir, "failure.digest.json")
    write_jsonl(events, jsonl_path)
    with open(html_path, "w") as handle:
        handle.write(journal_html(events, title="CI failure journal"))
    with open(digest_path, "w") as handle:
        json.dump(result.journal, handle, indent=2, sort_keys=True)

    print(f"wrote {jsonl_path} ({len(events)} events), {html_path}, "
          f"{digest_path}")
    print()
    print(journal_summary(events))
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:2]))
