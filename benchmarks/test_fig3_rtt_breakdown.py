"""Paper Fig. 3 — break-down of the average round-trip time.

Paper values (one client, one server replica, micro-benchmark):
application 15 µs, ORB 398 µs, group communication 620 µs,
replicator 154 µs.  The simulated substrate is calibrated to these
anchors, so the benchmark checks both the reproduction machinery and
the calibration.
"""

import pytest

from conftest import BENCH_REQUESTS, print_header

from repro.experiments import run_rtt_breakdown
from repro.sim import PAPER_FIG3_BREAKDOWN


@pytest.fixture(scope="module")
def breakdown(benchmark_requests=None):
    return run_rtt_breakdown(n_requests=max(BENCH_REQUESTS, 200), seed=0)


def test_fig3_breakdown(benchmark, breakdown):
    result = benchmark.pedantic(lambda: breakdown, rounds=1, iterations=1)
    print_header("Fig. 3 — break-down of the average round-trip time")
    print(f"{'component':24s} {'measured [us]':>14s} {'paper [us]':>12s}")
    for component, paper_value in PAPER_FIG3_BREAKDOWN.items():
        measured = result.get(component, 0.0)
        print(f"{component:24s} {measured:14.1f} {paper_value:12.1f}")
    total = sum(result.values())
    paper_total = sum(PAPER_FIG3_BREAKDOWN.values())
    print(f"{'TOTAL':24s} {total:14.1f} {paper_total:12.1f}")

    # Shape claims:
    # 1. Group communication dominates the round trip.
    assert result["group_communication"] == max(result.values())
    # 2. The replicator adds only a small overhead (~154 us, "fairly
    #    small compared to the GC and ORB latencies").
    assert result["replicator"] < result["orb"]
    assert result["replicator"] < result["group_communication"]
    # 3. The application share is tiny (micro-benchmark).
    assert result["application"] < 0.05 * total


def test_fig3_calibration_within_tolerance(benchmark, breakdown):
    """Each component lands within 20 % of the paper's measurement
    (the calibration contract stated in DESIGN.md)."""
    result = benchmark.pedantic(lambda: breakdown, rounds=1, iterations=1)
    for component, paper_value in PAPER_FIG3_BREAKDOWN.items():
        measured = result.get(component, 0.0)
        assert measured == pytest.approx(paper_value, rel=0.20), component
