"""Paper Fig. 3 — break-down of the average round-trip time.

Paper values (one client, one server replica, micro-benchmark):
application 15 µs, ORB 398 µs, group communication 620 µs,
replicator 154 µs.  The simulated substrate is calibrated to these
anchors, so the benchmark checks both the reproduction machinery and
the calibration.

The breakdown is aggregated with :class:`TimelineAggregate` (per
component mean *and* p99 over every completed request), and the same
run with telemetry enabled must re-derive the breakdown from measured
spans to within 5 % of the timeline accounting.
"""

import pytest

from conftest import BENCH_REQUESTS, print_header

from repro.experiments import run_replicated_load
from repro.orb import ALL_COMPONENTS
from repro.replication import ReplicationStyle
from repro.sim import PAPER_FIG3_BREAKDOWN
from repro.telemetry import component_breakdown


@pytest.fixture(scope="module")
def fig3_run():
    return run_replicated_load(
        ReplicationStyle.ACTIVE, n_replicas=1, n_clients=1,
        n_requests=max(BENCH_REQUESTS, 200), seed=0,
        keep_timelines=True, telemetry=True)


def test_fig3_breakdown(benchmark, fig3_run):
    result = benchmark.pedantic(lambda: fig3_run, rounds=1, iterations=1)
    stats = result.timeline_stats
    print_header("Fig. 3 — break-down of the average round-trip time")
    print(f"{'component':24s} {'mean [us]':>12s} {'p99 [us]':>12s} "
          f"{'paper [us]':>12s}")
    for component, paper_value in PAPER_FIG3_BREAKDOWN.items():
        print(f"{component:24s} {stats.mean_us(component):12.1f} "
              f"{stats.p99_us(component):12.1f} {paper_value:12.1f}")
    total = stats.totals.mean_us
    paper_total = sum(PAPER_FIG3_BREAKDOWN.values())
    print(f"{'TOTAL':24s} {total:12.1f} {stats.totals.p99_us:12.1f} "
          f"{paper_total:12.1f}")

    breakdown = result.breakdown
    # Shape claims:
    # 1. Group communication dominates the round trip.
    assert breakdown["group_communication"] == max(breakdown.values())
    # 2. The replicator adds only a small overhead (~154 us, "fairly
    #    small compared to the GC and ORB latencies").
    assert breakdown["replicator"] < breakdown["orb"]
    assert breakdown["replicator"] < breakdown["group_communication"]
    # 3. The application share is tiny (micro-benchmark).
    assert breakdown["application"] < 0.05 * total
    # 4. p99 never undercuts the mean.
    for component in PAPER_FIG3_BREAKDOWN:
        assert stats.p99_us(component) >= stats.mean_us(component) * 0.999


def test_fig3_calibration_within_tolerance(benchmark, fig3_run):
    """Each component lands within 20 % of the paper's measurement
    (the calibration contract stated in DESIGN.md)."""
    result = benchmark.pedantic(lambda: fig3_run, rounds=1, iterations=1)
    for component, paper_value in PAPER_FIG3_BREAKDOWN.items():
        measured = result.breakdown.get(component, 0.0)
        assert measured == pytest.approx(paper_value, rel=0.20), component


def test_fig3_spans_match_timelines(benchmark, fig3_run):
    """The span-derived per-component breakdown agrees with the
    RequestTimeline accounting to within 5 % (ISSUE acceptance bar;
    in practice they agree to well under 1 %)."""
    result = benchmark.pedantic(lambda: fig3_run, rounds=1, iterations=1)
    assert result.telemetry is not None
    from_spans = component_breakdown(result.telemetry.spans)
    for component in ALL_COMPONENTS:
        timeline_us = result.breakdown.get(component, 0.0)
        span_us = from_spans.get(component, 0.0)
        if timeline_us < 1.0:
            assert span_us < 1.0, component
            continue
        assert span_us == pytest.approx(timeline_us, rel=0.05), component
