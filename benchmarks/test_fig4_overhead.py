"""Paper Fig. 4 — overhead of the replicator for a remote
client-server application.

Six bars: no interceptor / client intercepted / server intercepted /
client & server intercepted / warm passive (1 replica) / active
(1 replica), each with a jitter error bar.  The paper's reading: "the
replicator itself introduces little overhead, but the replication
mechanisms lead to increased latency and jitter".
"""

import pytest

from conftest import BENCH_REQUESTS, print_header

from repro.experiments import run_overhead_modes

ORDER = ["no_interceptor", "client_intercepted", "server_intercepted",
         "both_intercepted", "warm_passive_1", "active_1"]


@pytest.fixture(scope="module")
def modes():
    return run_overhead_modes(n_requests=max(BENCH_REQUESTS, 200), seed=0)


def test_fig4_overhead_bars(benchmark, modes):
    result = benchmark.pedantic(lambda: modes, rounds=1, iterations=1)
    print_header("Fig. 4 — overhead of the replicator (6 bars + jitter)")
    print(f"{'mode':24s} {'mean RTT [us]':>14s} {'jitter [us]':>12s}")
    for mode in ORDER:
        bar = result[mode]
        print(f"{mode:24s} {bar.latency_mean_us:14.1f} "
              f"{bar.jitter_us:12.1f}")

    lat = {mode: result[mode].latency_mean_us for mode in ORDER}
    # 1. Interception alone is cheap and ordered: baseline < one side
    #    < both sides.
    assert lat["no_interceptor"] < lat["client_intercepted"]
    assert lat["no_interceptor"] < lat["server_intercepted"]
    assert lat["client_intercepted"] < lat["both_intercepted"]
    assert lat["server_intercepted"] < lat["both_intercepted"]
    # 2. Interception overhead stays small relative to the baseline.
    assert lat["both_intercepted"] < 1.35 * lat["no_interceptor"]
    # 3. The replication mechanisms dominate: both replicated modes
    #    cost clearly more than interception alone ("the replication
    #    mechanisms lead to increased latency").
    assert lat["warm_passive_1"] > 1.3 * lat["both_intercepted"]
    assert lat["active_1"] > 1.3 * lat["both_intercepted"]


def test_fig4_replication_does_not_shrink_jitter(benchmark, modes):
    """The paper's replicated bars carry larger error bars.  The
    simulated substrate has no OS scheduling noise, so for a single
    sequential client the honest reproducible claim is weaker: the
    replicated modes' jitter is at least comparable to the baseline
    (the full jitter blow-up appears under concurrent load — see the
    fig7 benchmark, where passive jitter grows with clients)."""
    result = benchmark.pedantic(lambda: modes, rounds=1, iterations=1)
    baseline_jitter = result["no_interceptor"].jitter_us
    assert result["active_1"].jitter_us >= 0.5 * baseline_jitter
    assert result["warm_passive_1"].jitter_us >= 0.5 * baseline_jitter
