"""Paper Fig. 9 — active and passive replication in the dependability
design space.

The Fig. 7 data set, normalized to its maxima on each axis
(fault-tolerance x performance x resources).  Paper claims: each
replication style covers a *region* (multiple configurations), and
the two regions are non-overlapping — the knobs are what let the
system reach any point in the union (versatile dependability's
"operating region rather than operating point", Fig. 1).
"""

import pytest

from conftest import print_header

from repro.core import DesignSpace
from repro.replication import ReplicationStyle

A = ReplicationStyle.ACTIVE
P = ReplicationStyle.WARM_PASSIVE


@pytest.fixture(scope="module")
def space(request):
    profile, _ = request.getfixturevalue("fig7_profile")
    return DesignSpace.from_profile(profile)


def test_fig9_regions(benchmark, space):
    result = benchmark.pedantic(lambda: space, rounds=1, iterations=1)
    print_header("Fig. 9 — normalized design-space regions")
    print(f"{'style':14s} {'FT':>6s} {'perf':>6s} {'res':>6s} "
          f"{'clients':>8s} {'replicas':>9s}")
    for point in sorted(result.points,
                        key=lambda p: (p.style.value, p.n_replicas,
                                       p.n_clients)):
        print(f"{point.style.value:14s} {point.fault_tolerance:6.2f} "
              f"{point.performance:6.2f} {point.resources:6.2f} "
              f"{point.n_clients:8d} {point.n_replicas:9d}")

    # Each style covers a region: multiple distinct configurations.
    assert len(result.region(A)) >= 4
    assert len(result.region(P)) >= 4


def test_fig9_regions_do_not_overlap(benchmark, space):
    result = benchmark.pedantic(lambda: space, rounds=1, iterations=1)
    overlap = result.regions_overlap(A, P)
    print_header("Fig. 9 — region overlap check")
    bounds_a = result.region_bounds(A)
    bounds_p = result.region_bounds(P)
    for axis in ("fault_tolerance", "performance", "resources"):
        print(f"{axis:16s} active={bounds_a[axis][0]:.2f}-"
              f"{bounds_a[axis][1]:.2f}  passive={bounds_p[axis][0]:.2f}-"
              f"{bounds_p[axis][1]:.2f}")
    assert not overlap, "active and passive regions must be disjoint"


def test_fig9_active_region_fast_and_hungry(benchmark, space):
    """At every matched operating condition (same redundancy, same
    load), the active point is strictly faster; under real load
    (3+ clients) it is also strictly hungrier — the Fig. 7(b) claim
    that feeds Fig. 9's resource axis."""
    result = benchmark.pedantic(lambda: space, rounds=1, iterations=1)
    passive_by_condition = {
        (p.fault_tolerance, p.n_clients): p for p in result.region(P)}
    compared = 0
    for active_point in result.region(A):
        key = (active_point.fault_tolerance, active_point.n_clients)
        passive_point = passive_by_condition.get(key)
        if passive_point is None:
            continue
        compared += 1
        assert active_point.performance > passive_point.performance, key
        if active_point.n_clients >= 3:
            assert active_point.resources > passive_point.resources, key
    assert compared >= 8
    # And globally, the hungriest configuration is an active one.
    max_active_res = max(p.resources for p in result.region(A))
    max_passive_res = max(p.resources for p in result.region(P))
    assert max_active_res > max_passive_res


def test_fig9_coverage_is_a_region_not_a_point(benchmark, space):
    """Versatile dependability spans a volume of the design space."""
    result = benchmark.pedantic(lambda: space, rounds=1, iterations=1)
    volume = result.coverage_volume()
    print(f"\ncovered volume (union of style boxes): {volume:.4f}")
    assert volume > 0.0
