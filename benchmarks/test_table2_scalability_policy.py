"""Paper Table 2 (and Fig. 8) — the scalability-knob policy.

Requirements (Section 4.3): latency <= 7000 us, bandwidth <= 3 MB/s,
best fault-tolerance possible, ties broken by
cost = 0.5 * L/7000us + 0.5 * B/(3 MB/s).

Paper's synthesized policy:

    Ncli    1      2      3      4      5
    conf  A(3)   A(3)   P(3)   P(3)   P(2)
    FT      2      2      2      2      1

The benchmark feeds the *measured* Fig. 7 profile of the simulated
substrate through the same synthesis and checks that the selected
configuration pattern — including the fault-tolerance drop at five
clients — reproduces.
"""

import pytest

from conftest import print_header

from repro.core import Constraints, CostFunction, ScalabilityPolicy
from repro.errors import ContractViolation
from repro.replication import ReplicationStyle

#: The paper's Table 2 selections.
PAPER_PATTERN = ["A(3)", "A(3)", "P(3)", "P(3)", "P(2)"]
PAPER_FAULTS = [2, 2, 2, 2, 1]


@pytest.fixture(scope="module")
def policy(request):
    profile, _ = request.getfixturevalue("fig7_profile")
    return ScalabilityPolicy.synthesize(
        profile, Constraints(), CostFunction())


def test_table2_policy(benchmark, policy):
    result = benchmark.pedantic(lambda: policy, rounds=1, iterations=1)
    print_header("Table 2 — policy for scalability tuning")
    print(f"{'Ncli':>4s} {'config':>8s} {'latency[us]':>12s} "
          f"{'bw[MB/s]':>10s} {'faults':>7s} {'cost':>7s}")
    labels = []
    faults = []
    for entry in result.table():
        labels.append(entry.config.label)
        faults.append(entry.faults_tolerated)
        print(f"{entry.n_clients:4d} {entry.config.label:>8s} "
              f"{entry.latency_us:12.1f} {entry.bandwidth_mbps:10.3f} "
              f"{entry.faults_tolerated:7d} {entry.cost:7.3f}")
    print(f"\npaper:    {PAPER_PATTERN}")
    print(f"measured: {labels}")

    assert labels == PAPER_PATTERN
    assert faults == PAPER_FAULTS


def test_table2_costs_increase_with_load(benchmark, policy):
    """Costs rise with the client count while the chosen configuration
    is unchanged (within a run of identical configs); the final P(2)
    row may dip because dropping a replica sheds bandwidth — in the
    paper's absolute numbers it happened to stay monotone."""
    result = benchmark.pedantic(lambda: policy, rounds=1, iterations=1)
    table = result.table()
    for previous, current in zip(table, table[1:]):
        if previous.config == current.config:
            assert current.cost > previous.cost
    assert table[-1].cost > table[0].cost


def test_table2_all_selected_configs_respect_constraints(benchmark, policy):
    result = benchmark.pedantic(lambda: policy, rounds=1, iterations=1)
    for entry in result.table():
        assert entry.latency_us <= 7000.0
        assert entry.bandwidth_mbps <= 3.0


def test_fig8_infeasible_beyond_profile(benchmark, fig7_profile):
    """Section 4.3: "for a higher load, we cannot satisfy the
    requirements ... the system notifies the operators that the tuning
    policy can no longer be honored."  Extrapolate the passive latency
    trend to larger client counts and confirm the synthesis reports
    infeasibility."""
    from repro.core import ConfigPoint, Measurement, Profile
    profile, _ = fig7_profile

    def run():
        extended = Profile(list(profile))
        # Linear extrapolation of each configuration's trends to 8
        # clients (both styles break a constraint there).
        for config in profile.configs():
            m4 = profile.get(config, 4)
            m5 = profile.get(config, 5)
            extended.add(Measurement(
                config=config, n_clients=8,
                latency_us=m5.latency_us + 3 * (m5.latency_us - m4.latency_us),
                jitter_us=m5.jitter_us,
                bandwidth_mbps=m5.bandwidth_mbps
                + 3 * max(0.0, m5.bandwidth_mbps - m4.bandwidth_mbps)
                + 1.0))
        return ScalabilityPolicy.synthesize(extended)

    policy = benchmark.pedantic(run, rounds=1, iterations=1)
    with pytest.raises(ContractViolation):
        policy.best_configuration(8)
    assert policy.max_supported_clients() == 5
