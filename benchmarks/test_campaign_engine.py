"""DAVOS-style fault-injection campaign (Sec. 6 methodology).

Runs a small grid campaign — {active, warm passive} x {2, 3 replicas}
x {fault-free, primary crash} x 2 seeds — through the campaign engine
and checks the dependability shape the paper's trade-off analysis
predicts:

- fault-free configurations score (near-)perfect dependability;
- active replication masks a replica crash far better than warm
  passive (failover gap vs. voting through the fault);
- a third replica costs extra resources in either style, and with
  per-request checkpointing passive loses every axis, leaving an
  all-active Pareto front;
- the parallel runner produces byte-identical results to the serial
  one, so campaign results are machine-independent artifacts.
"""

import pytest

from conftest import print_header

from repro.campaign import (
    CampaignSpec,
    ResultsStore,
    aggregate_scores,
    pareto_front,
    render_pareto,
    render_scores,
    run_campaign,
)


def _spec():
    return CampaignSpec(
        name="bench-grid",
        styles=["active", "warm_passive"],
        replica_counts=[2, 3],
        fault_loads=["none", "process_crash"],
        seeds=[0, 1],
        n_clients=2,
        duration_us=500_000.0,
        rate_per_s=150.0,
        settle_us=1_500_000.0)


def _run(tmp_path, tag, workers):
    store = ResultsStore(str(tmp_path / f"{tag}.jsonl"))
    summary = run_campaign(_spec(), store, workers=workers)
    assert summary.failed == 0
    return store


def test_campaign_dependability_shape(benchmark, tmp_path):
    store = benchmark.pedantic(lambda: _run(tmp_path, "serial", 1),
                               rounds=1, iterations=1)
    records = store.records()
    scores = aggregate_scores(records)
    print_header("Campaign engine — dependability per configuration")
    print(render_scores(scores))
    print()
    print(render_pareto(scores))

    by_key = {s.config_key: s for s in scores}

    # Per-trial view: crash trials hurt passive more than active.
    def mean_avail(style, fault):
        vals = [r.metrics["availability"] for r in records
                if r.spec["style"] == style
                and r.spec["fault_load"] == fault]
        return sum(vals) / len(vals)

    for style in ("active", "warm_passive"):
        assert mean_avail(style, "none") == pytest.approx(1.0)
    active_crash = mean_avail("active", "process_crash")
    passive_crash = mean_avail("warm_passive", "process_crash")
    print(f"\nmean availability under primary crash: "
          f"active {active_crash:.4f}, warm passive {passive_crash:.4f}")
    assert active_crash > passive_crash

    # Aggregate view: active dominates passive on dependability and
    # latency; within a style, a third replica always costs extra
    # resources.  (With per-request checkpointing, k=1, passive moves
    # whole-state snapshots and is NOT cheaper on the wire — the
    # paper's bandwidth advantage for passive needs a larger k.)
    assert by_key["A(2)/k1"].dependability \
        > by_key["P(2)/k1"].dependability
    assert by_key["A(2)/k1"].latency_us < by_key["P(2)/k1"].latency_us
    for style_key in ("A", "P"):
        assert by_key[f"{style_key}(3)/k1"].resource_cost \
            > by_key[f"{style_key}(2)/k1"].resource_cost

    # On this grid active wins every axis (passive at k=1 is slower,
    # pricier and no more dependable), so the Pareto front is pure
    # active, anchored by the cheapest active configuration.
    front = pareto_front(scores)
    assert front
    assert all(s.style == "active" for s in front)
    assert "A(2)/k1" in {s.config_key for s in front}


def test_campaign_parallel_speed_and_determinism(benchmark, tmp_path):
    serial = _run(tmp_path, "serial-ref", 1)
    parallel = benchmark.pedantic(
        lambda: _run(tmp_path, "parallel", 4), rounds=1, iterations=1)
    print_header("Campaign engine — parallel == serial, byte for byte")
    serial_bytes = open(serial.path, "rb").read()
    parallel_bytes = open(parallel.path, "rb").read()
    print(f"serial store:   {len(serial_bytes)} bytes, "
          f"{len(serial.records())} records")
    print(f"parallel store: {len(parallel_bytes)} bytes, "
          f"{len(parallel.records())} records")
    assert parallel_bytes == serial_bytes
