"""Telemetry overhead check (rides on the paper's Fig. 4 scenario).

Two guarantees the observability layer makes:

1. **Determinism** — recording never schedules events or adds
   simulated time, so every simulated outcome (latency, jitter,
   completions, wire bytes) is byte-identical with telemetry on or
   off.
2. **Near-zero cost when disabled** — every instrumentation site is a
   single attribute load plus an ``enabled`` branch, so the
   telemetry-capable build's wall-clock stays within budget of what
   the scenario costs anyway.

The wall-clock assertions are intentionally loose (shared CI boxes
are noisy) and the CI job running this file is non-blocking; the
determinism assertions are exact.
"""

import time

import pytest

from conftest import BENCH_REQUESTS, print_header

from repro.experiments import run_replicated_load
from repro.replication import ReplicationStyle

#: Wall-clock budget for the telemetry-capable-but-disabled path,
#: relative to a second identical disabled run (noise floor for the
#: "disabled Fig. 4 round-trip regresses < 2 %" acceptance bar --
#: asserting against sim results is exact, see below; asserting
#: wall-clock against wall-clock needs slack on shared runners).
DISABLED_BUDGET = 1.50
#: Enabled recording may cost real time (span objects, histograms)
#: but must stay within a small multiple of the disabled run.
ENABLED_BUDGET = 3.0

REQUESTS = max(BENCH_REQUESTS, 200)


def _timed_run(telemetry: bool, seed: int = 0):
    started = time.perf_counter()
    result = run_replicated_load(
        ReplicationStyle.ACTIVE, n_replicas=1, n_clients=1,
        n_requests=REQUESTS, seed=seed, telemetry=telemetry)
    return time.perf_counter() - started, result


def _sim_signature(result):
    return (result.latency_mean_us, result.jitter_us,
            result.completed, result.duration_us,
            result.bandwidth_mbps)


def test_telemetry_disabled_is_free(benchmark):
    """Simulated results are byte-identical with telemetry off vs on,
    and the disabled path's wall-clock sits at the noise floor."""
    warm, _ = _timed_run(telemetry=False)  # warm caches/imports
    t_off, off = _timed_run(telemetry=False)
    t_off2, off2 = _timed_run(telemetry=False)
    t_on, on = _timed_run(telemetry=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print_header("Telemetry overhead (Fig. 4 single-replica scenario)")
    print(f"{'mode':28s} {'wall [ms]':>10s} {'mean RTT [us]':>14s}")
    for label, wall, result in (
            ("disabled", t_off, off), ("disabled (repeat)", t_off2, off2),
            ("enabled", t_on, on)):
        print(f"{label:28s} {wall * 1e3:10.1f} "
              f"{result.latency_mean_us:14.1f}")

    # Exact determinism: the < 2 % regression bar is met trivially
    # because the simulated round trip does not move at all.
    assert _sim_signature(off) == _sim_signature(off2)
    assert _sim_signature(off) == _sim_signature(on)

    # Wall-clock budgets (loose; the CI job is non-blocking).
    floor = min(t_off, t_off2)
    assert max(t_off, t_off2) < DISABLED_BUDGET * max(floor, 1e-3)
    assert t_on < ENABLED_BUDGET * max(floor, 1e-3)


def test_telemetry_enabled_records_everything(benchmark):
    """With telemetry on the same run yields a complete span record:
    one closed trace per request and no drops."""
    _, result = _timed_run(telemetry=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    recorder = result.telemetry
    assert recorder is not None
    assert recorder.dropped == 0
    open_spans = [s for s in recorder.spans if s.end_us is None]
    assert open_spans == []
    roots = [s for s in recorder.spans if s.parent_id == 0]
    assert len(roots) == result.completed
