"""Ablation: fixed-timeout vs adaptive failure detection.

The paper's fault model includes "performance and timing faults" —
messages that arrive, but late.  This bench quantifies the membership
layer's behaviour under a gradually intensifying network-delay storm:

- the fixed 350 ms timeout (the paper-era default) false-suspects live
  daemons and permanently shrinks the membership;
- the adaptive inter-arrival-statistics detector widens its threshold
  ahead of the degradation and keeps the membership intact, while
  still detecting a real crash afterwards.
"""

import pytest

from conftest import print_header

from repro.gcs import GcsClient, GcsDaemon
from repro.net import Network, RampJitter
from repro.sim import (
    GcsCalibration,
    Process,
    Simulator,
    default_calibration,
)

HOSTS = ["h1", "h2", "h3", "h4"]
STORM_US = 8_000_000.0
PEAK_US = 900_000.0


def _run(adaptive: bool, crash_after: bool, seed: int = 41):
    calibration = default_calibration().with_overrides(
        gcs=GcsCalibration(adaptive_failure_detection=adaptive))
    sim = Simulator(seed=seed)
    network = Network(sim, calibration.network)
    hosts = {name: network.add_host(name) for name in HOSTS}
    daemons = {}
    for name in HOSTS:
        proc = Process(hosts[name], f"gcsd-{name}")
        daemons[name] = GcsDaemon(proc, network, HOSTS, calibration.gcs)
    sim.run(until=100_000)

    network.add_loss_model(RampJitter(sim.now, sim.now + STORM_US,
                                      PEAK_US))
    sim.run(until=sim.now + STORM_US + 4_000_000)
    storm_views = {name: daemons[name].view.members
                   for name in HOSTS if hosts[name].alive}

    crash_detected_in = None
    if crash_after:
        crash_at = sim.now
        hosts["h4"].crash()
        probe_step = 100_000.0
        while sim.now - crash_at < 20_000_000.0:
            sim.run(until=sim.now + probe_step)
            if all("h4" not in daemons[n].view.members
                   for n in HOSTS[:3]):
                crash_detected_in = sim.now - crash_at
                break
    return storm_views, crash_detected_in


def test_ablation_fixed_detector_collapses_under_timing_fault(benchmark):
    storm_views, _ = benchmark.pedantic(
        lambda: _run(adaptive=False, crash_after=False),
        rounds=1, iterations=1)
    print_header("Ablation — fixed 350 ms timeout under a delay storm")
    for name, members in storm_views.items():
        print(f"  {name}: view={list(members)}")
    # At least one live daemon was falsely evicted somewhere.
    assert any(len(members) < len(HOSTS)
               for members in storm_views.values())


def test_ablation_adaptive_detector_survives_and_still_detects(benchmark):
    storm_views, detected_in = benchmark.pedantic(
        lambda: _run(adaptive=True, crash_after=True),
        rounds=1, iterations=1)
    print_header("Ablation — adaptive detector under the same storm")
    for name, members in storm_views.items():
        print(f"  {name}: view={list(members)}")
    print(f"  real crash after the storm detected in "
          f"{(detected_in or 0) / 1000.0:.0f} ms")
    # Membership intact through the storm...
    assert all(members == tuple(HOSTS)
               for members in storm_views.values())
    # ...and a genuine crash is still detected promptly.
    assert detected_in is not None
    assert detected_in < 5_000_000.0
