"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation section and prints the rows/series the paper reports.
Absolute numbers come from the simulated substrate (calibrated to the
paper's Fig. 3 component costs); assertions check the paper's *shape*
claims — who wins, by roughly what factor, where crossovers fall.

``REPRO_BENCH_REQUESTS`` scales the per-client request cycle (default
150; the paper used 10,000 — larger values sharpen the averages but
grow the runtime roughly linearly).
"""

from __future__ import annotations

import os

import pytest

from repro.core import Profile
from repro.experiments import build_profile

#: Requests per client per configuration in the Fig. 7 sweep.
BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "150"))


@pytest.fixture(scope="session")
def fig7_profile():
    """The Fig. 7 measurement sweep, shared by the fig7 / fig8 /
    table2 / fig9 benchmarks (one expensive run, many consumers)."""
    profile, results = build_profile(
        client_counts=(1, 2, 3, 4, 5), replica_counts=(2, 3),
        n_requests=BENCH_REQUESTS, seed=0)
    return profile, results


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
