"""Paper Fig. 6 — the adaptive-replication low-level knob.

Closed-loop think-time clients drive a time-varying request rate
against a three-replica group starting in warm passive.  A threshold
policy
switches the group to active when the rate climbs and back when it
falls.  Paper claims:

- the group switches when the rate crosses the threshold;
- switch delays are "comparable to the average response time" and
  negligible at high load;
- the observed request arrival rate is ~4.1 % *higher* with adaptive
  replication than with static passive under the same workload (the
  speed-up lets clients send sooner).
"""

import pytest

from conftest import print_header

from repro.core import ThresholdSwitchPolicy
from repro.experiments import run_adaptive_scenario
from repro.replication import ReplicationStyle
from repro.workload import SpikeProfile

#: Fig. 6-style load: quiet, then a burst past the threshold, then quiet.
PROFILE = SpikeProfile(base_rate=100.0, spike_rate=1100.0,
                       spike_start_us=1_500_000.0,
                       spike_end_us=5_500_000.0)
POLICY = ThresholdSwitchPolicy(rate_high_per_s=400.0,
                               rate_low_per_s=200.0)
DURATION_US = 7_000_000.0

#: The closed-feedback effect of Fig. 6: the paper measured +4.1 %.
PAPER_RATE_GAIN = 0.041


N_CLIENTS = 2


@pytest.fixture(scope="module")
def runs():
    adaptive = run_adaptive_scenario(PROFILE, DURATION_US, policy=POLICY,
                                     n_clients=N_CLIENTS, seed=0)
    static = run_adaptive_scenario(
        PROFILE, DURATION_US, n_clients=N_CLIENTS,
        static_style=ReplicationStyle.WARM_PASSIVE, seed=0)
    return adaptive, static


def test_fig6_rate_triggered_switching(benchmark, runs):
    adaptive, _ = benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    print_header("Fig. 6 — adaptive replication under a rate spike")
    print("style timeline (time [s] -> style):")
    for time_us, style in adaptive.style_series:
        print(f"  {time_us / 1e6:6.2f}s  {style}")
    print("switches:")
    for record in adaptive.switch_events:
        print(f"  {record.switch_id}: {record.from_style.short} -> "
              f"{record.to_style.short} in {record.duration_us:.0f} us")

    styles = [style for _, style in adaptive.style_series]
    # Starts passive, goes active during the spike, returns passive.
    assert styles[0] == "warm_passive"
    assert "active" in styles
    assert styles[-1] == "warm_passive"
    assert len(adaptive.switch_events) >= 2


def test_fig6_switch_delay_comparable_to_response_time(benchmark, runs):
    """Section 4.2: switch-completion delays are "comparable to the
    average response time" — bounded by the worst response time the
    same run produced, and well under the adaptation time scale."""
    adaptive, _ = benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    for record in adaptive.switch_events:
        assert record.duration_us < max(5 * adaptive.mean_latency_us,
                                        adaptive.max_latency_us)
        assert record.duration_us < 100_000.0


def test_fig6_adaptive_beats_static_passive(benchmark, runs):
    """The headline: higher observed arrival rate (and lower latency)
    than static passive under the identical offered load."""
    adaptive, static = benchmark.pedantic(lambda: runs, rounds=1,
                                          iterations=1)
    print_header("Fig. 6 — adaptive vs static warm passive")
    adaptive_rate = adaptive.observed_arrival_rate_per_s
    static_rate = static.observed_arrival_rate_per_s
    gain = adaptive_rate / static_rate - 1.0
    print(f"observed arrival rate: adaptive {adaptive_rate:.1f}/s, "
          f"static passive {static_rate:.1f}/s  (gain {gain * 100:+.1f} %, "
          f"paper {PAPER_RATE_GAIN * 100:+.1f} %)")
    print(f"mean latency: adaptive {adaptive.mean_latency_us:.0f} us, "
          f"static {static.mean_latency_us:.0f} us")
    print(f"completions: adaptive {adaptive.completed}/{adaptive.sent}, "
          f"static {static.completed}/{static.sent}")

    assert adaptive.mean_latency_us < static.mean_latency_us
    # The observed-rate gain is positive, like the paper's +4.1 %.
    assert gain > 0.0


def test_fig6_journal_agrees_with_scenario_accounting(benchmark):
    """The dependability journal's derived accounting reproduces the
    scenario's own bookkeeping: every completed switch appears with
    the same duration (within 5 %), availability is 1.0 in this
    faultless run, and the switch windows land as degraded time."""
    from repro.journal import availability_report, switch_windows

    def run():
        return run_adaptive_scenario(PROFILE, DURATION_US, policy=POLICY,
                                     n_clients=N_CLIENTS, seed=0,
                                     journal=True)

    adaptive = benchmark.pedantic(run, rounds=1, iterations=1)
    journal = adaptive.journal
    assert journal is not None and journal.dropped == 0

    report = availability_report(journal.events)
    windows = switch_windows(journal.events)
    print_header("Fig. 6 — journal vs scenario accounting")
    print(f"availability {report.availability * 100:.3f} %  "
          f"degraded {report.degraded_fraction * 100:.2f} %  "
          f"switch windows {len(windows)}")

    assert report.availability == 1.0
    assert report.downtime_us == 0.0
    assert report.degraded_us > 0.0
    assert set(windows) == {r.switch_id
                            for r in adaptive.switch_events}
    completes = journal.of_kind("switch.complete")
    for record in adaptive.switch_events:
        durations = [e.attrs["duration_us"] for e in completes
                     if e.attrs["switch_id"] == record.switch_id]
        closest = min(durations,
                      key=lambda d: abs(d - record.duration_us))
        assert abs(closest - record.duration_us) <= \
            max(0.05 * record.duration_us, 1.0)


def test_fig6_static_active_needs_no_switch(benchmark):
    """Sanity arm: static active under the same profile never
    switches and handles the spike easily."""
    def run():
        return run_adaptive_scenario(
            PROFILE, DURATION_US, n_clients=N_CLIENTS,
            static_style=ReplicationStyle.ACTIVE, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.switch_events == []
    assert result.completed == result.sent
