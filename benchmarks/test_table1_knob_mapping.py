"""Paper Table 1 — mapping from high-level to low-level knobs.

Table 1 is structural, not measured: it records which low-level knobs
(replication style, #replicas, checkpointing frequency) implement each
high-level knob (scalability, availability, real-time guarantees), and
which application parameters influence each.  The benchmark renders
the registry and *behaviourally validates* two rows against the live
implementation: the scalability knob must actually drive exactly its
declared low-level knobs, and the availability model must respond to
its declared inputs.
"""

import pytest

from conftest import print_header

from repro.core import (
    AvailabilityKnob,
    AvailabilityModel,
    NumReplicasKnob,
    ReplicationStyleKnob,
    ScalabilityKnob,
    ScalabilityPolicy,
    TABLE_1,
    validate_table,
)
from repro.replication import ReplicationStyle


def test_table1_registry(benchmark):
    result = benchmark.pedantic(lambda: TABLE_1, rounds=1, iterations=1)
    print_header("Table 1 — high-level to low-level knob mapping")
    for name, row in result.items():
        print(f"{name}:")
        print(f"    low-level knobs: {', '.join(row.low_level)}")
        print(f"    app parameters:  "
              f"{', '.join(row.application_parameters)}")
    validate_table()
    assert set(result) == {"scalability", "availability", "real_time"}


def test_table1_scalability_row_behaviour(benchmark):
    """The scalability knob drives exactly the low-level knobs Table 1
    declares: replication style and number of replicas."""
    from tests.core.test_policies import paper_profile

    def run():
        policy = ScalabilityPolicy.synthesize(paper_profile())
        style_knob = ReplicationStyleKnob([])
        # A stub factory records targets without a live testbed.
        class _StubFactory:
            def __init__(self):
                self.target = 0
            def set_target(self, n):
                self.target = n
        factory = _StubFactory()
        replicas_knob = NumReplicasKnob(factory)
        knob = ScalabilityKnob(policy, style_knob, replicas_knob)
        row = TABLE_1["scalability"]
        driven = []
        try:
            knob.set(3)  # Table 2: P(3); style switch fails (no replica)
        except Exception:
            pass
        if factory.target:
            driven.append("n_replicas")
        return row, factory.target

    row, target = benchmark.pedantic(run, rounds=1, iterations=1)
    assert "n_replicas" in row.low_level
    assert "replication_style" in row.low_level
    assert target == 3  # the knob really drove the replica count


def test_table1_availability_row_behaviour(benchmark):
    """The availability knob's plan depends on the declared low-level
    knobs (style, redundancy) and responds to the state-size-driven
    failover costs Table 1 lists among its inputs."""
    def run():
        model = AvailabilityModel()
        knob = AvailabilityKnob(model, ReplicationStyleKnob([]), None)
        lax = knob.plan(0.99)
        strict = knob.plan(0.99999)
        return lax, strict

    lax, strict = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Table 1 — availability knob plans")
    print(f"target 0.99    -> {lax[0].value}({lax[1]})")
    print(f"target 0.99999 -> {strict[0].value}({strict[1]})")
    # Stricter targets demand a costlier plan (style upgrade and/or
    # more replicas).
    order = [ReplicationStyle.COLD_PASSIVE, ReplicationStyle.WARM_PASSIVE,
             ReplicationStyle.ACTIVE]
    assert (order.index(strict[0]), strict[1]) > (order.index(lax[0]),
                                                  0) or strict[1] > lax[1]
