"""Paper Fig. 7 — the latency/bandwidth trade-off sweep.

(a) Mean round-trip latency and (b) bandwidth usage for active and
warm passive replication, swept over 1-5 clients and 1-2 faults
tolerated (2-3 replicas).  Paper claims:

- active incurs much lower latency; passive round trips "increase
  almost linearly with the number of clients";
- with five clients, passive is "roughly three times slower";
- bandwidth grows with clients in both styles, steeper for active;
- with five clients, active needs "about twice the bandwidth".
"""

import pytest

from conftest import print_header

from repro.core import ConfigPoint
from repro.replication import ReplicationStyle

A = ReplicationStyle.ACTIVE
P = ReplicationStyle.WARM_PASSIVE


def _table(profile, metric):
    print(f"{'config':8s}" + "".join(f"{n:>10d}" for n in (1, 2, 3, 4, 5)))
    for style in (A, P):
        for n_replicas in (2, 3):
            config = ConfigPoint(style=style, n_replicas=n_replicas)
            cells = []
            for n_clients in (1, 2, 3, 4, 5):
                m = profile.get(config, n_clients)
                cells.append(getattr(m, metric))
            label = config.label
            print(f"{label:8s}" + "".join(f"{c:10.1f}" if metric ==
                                          "latency_us" else f"{c:10.3f}"
                                          for c in cells))


def test_fig7a_latency(benchmark, fig7_profile):
    profile, _ = fig7_profile
    result = benchmark.pedantic(lambda: profile, rounds=1, iterations=1)
    print_header("Fig. 7(a) — round-trip latency [us] vs clients "
                 "(rows: style(replicas))")
    _table(result, "latency_us")

    def lat(style, n_rep, n_cli):
        return result.get(ConfigPoint(style, n_rep), n_cli).latency_us

    # Active is faster at every measured point.
    for n_rep in (2, 3):
        for n_cli in (1, 2, 3, 4, 5):
            assert lat(A, n_rep, n_cli) < lat(P, n_rep, n_cli)
    # Passive roughly 3x slower at five clients (paper: "roughly three
    # times slower"); accept 2.5-4.5x.
    ratio = lat(P, 3, 5) / lat(A, 3, 5)
    print(f"\npassive/active latency ratio at 5 clients: {ratio:.2f} "
          f"(paper ~3)")
    assert 2.5 <= ratio <= 4.5
    # Passive latency grows almost linearly with clients: the 5-client
    # latency is close to 5x the 1-client increment structure.  Check
    # monotone growth and a strong linear fit.
    points = [lat(P, 3, n) for n in (1, 2, 3, 4, 5)]
    assert all(b > a for a, b in zip(points, points[1:]))
    increments = [b - a for a, b in zip(points, points[1:])]
    mean_inc = sum(increments) / len(increments)
    assert all(abs(i - mean_inc) < 0.5 * mean_inc for i in increments)
    # Active stays comparatively flat: its 5-client latency is less
    # than twice its 1-client latency.
    assert lat(A, 3, 5) < 2.0 * lat(A, 3, 1)


def test_fig7b_bandwidth(benchmark, fig7_profile):
    profile, _ = fig7_profile
    result = benchmark.pedantic(lambda: profile, rounds=1, iterations=1)
    print_header("Fig. 7(b) — bandwidth usage [MB/s] vs clients "
                 "(rows: style(replicas))")
    _table(result, "bandwidth_mbps")

    def bw(style, n_rep, n_cli):
        return result.get(ConfigPoint(style, n_rep), n_cli).bandwidth_mbps

    # Bandwidth grows with the number of clients in both styles.
    for style in (A, P):
        assert bw(style, 3, 5) > bw(style, 3, 1)
    # Growth is steeper for active.
    active_growth = bw(A, 3, 5) - bw(A, 3, 1)
    passive_growth = bw(P, 3, 5) - bw(P, 3, 1)
    assert active_growth > passive_growth
    # About twice the bandwidth at five clients (accept 1.5-3x).
    ratio = bw(A, 3, 5) / bw(P, 3, 5)
    print(f"\nactive/passive bandwidth ratio at 5 clients: {ratio:.2f} "
          f"(paper ~2)")
    assert 1.5 <= ratio <= 3.0
    # More replicas cost more bandwidth in active replication.
    assert bw(A, 3, 5) > bw(A, 2, 5)


def test_fig7_jitter_grows_with_load_for_passive(benchmark, fig7_profile):
    """Supporting claim from Fig. 4/7: replication mechanisms increase
    jitter, and the effect compounds with concurrent clients for the
    checkpoint-quiescing passive style."""
    profile, _ = fig7_profile
    result = benchmark.pedantic(lambda: profile, rounds=1, iterations=1)
    passive_1 = result.get(ConfigPoint(P, 3), 1).jitter_us
    passive_5 = result.get(ConfigPoint(P, 3), 5).jitter_us
    assert passive_5 > passive_1
