"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but quantified support for its qualitative
claims:

- Section 3.1/4.2: the checkpointing-frequency knob trades latency
  against the recovery window;
- Section 4.2: "active replication is faster in responding to
  requests and in recovering from faults ... passive replication uses
  more efficiently the resources";
- Section 3.1: client-side majority voting (the Byzantine option)
  costs latency over first-response;
- cold passive is the cheapest steady state and the slowest recovery.
"""

import pytest

from conftest import BENCH_REQUESTS, print_header

from repro.experiments import (
    deploy_client,
    deploy_replica_group,
    run_replicated_load,
    Testbed,
)
from repro.orb import BusyServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)

N = max(BENCH_REQUESTS // 2, 75)


def test_ablation_checkpoint_interval(benchmark):
    """Less frequent checkpoints shed passive latency (amortized
    quiescence) at the price of a longer vulnerability window."""
    def run():
        out = {}
        for interval in (1, 5, 20):
            result = run_replicated_load(
                ReplicationStyle.WARM_PASSIVE, n_replicas=3, n_clients=4,
                n_requests=N, checkpoint_interval=interval, seed=0)
            out[interval] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — checkpoint interval (warm passive, 4 clients)")
    print(f"{'interval':>8s} {'latency[us]':>12s} {'bw[MB/s]':>10s}")
    for interval, result in sorted(results.items()):
        print(f"{interval:8d} {result.latency_mean_us:12.1f} "
              f"{result.bandwidth_mbps:10.3f}")
    latencies = [results[k].latency_mean_us for k in (1, 5, 20)]
    assert latencies[0] > latencies[1] > latencies[2]
    # Amortized checkpoints also shed checkpoint bandwidth.
    assert results[20].bandwidth_mbps < results[1].bandwidth_mbps * 1.05


def test_ablation_state_size(benchmark):
    """Bigger application state makes passive checkpointing costlier
    (Table 1 lists state size among the availability knob's inputs)."""
    def run():
        out = {}
        for state_bytes in (256, 4096, 16384):
            result = run_replicated_load(
                ReplicationStyle.WARM_PASSIVE, n_replicas=3, n_clients=3,
                n_requests=N, state_bytes=state_bytes, seed=0)
            out[state_bytes] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — state size (warm passive, 3 clients)")
    print(f"{'state[B]':>9s} {'latency[us]':>12s} {'bw[MB/s]':>10s}")
    for state_bytes, result in sorted(results.items()):
        print(f"{state_bytes:9d} {result.latency_mean_us:12.1f} "
              f"{result.bandwidth_mbps:10.3f}")
    assert results[16384].latency_mean_us > results[256].latency_mean_us
    assert results[16384].bandwidth_mbps > results[256].bandwidth_mbps


def test_ablation_voting_costs_latency(benchmark):
    """Majority voting waits for 2-of-3 matching replies instead of
    the first response."""
    def run():
        testbeds = {}
        for voting in (False, True):
            testbed = Testbed.paper_testbed(3, 1, seed=0)
            config = ReplicationConfig(style=ReplicationStyle.ACTIVE,
                                       group="svc")
            deploy_replica_group(
                testbed, ["s01", "s02", "s03"], config,
                {"bench": lambda: BusyServant(processing_us=15,
                                              reply_bytes=128)})
            stack = deploy_client(testbed, "w01", ClientReplicationConfig(
                group="svc", expected_style=ReplicationStyle.ACTIVE,
                voting=voting))
            testbed.run(150_000)
            from repro.workload import ClosedLoopClient
            loader = ClosedLoopClient(stack, N, object_key="bench",
                                      payload_bytes=128)
            loader.start()
            while not loader.done:
                testbed.run(500_000)
            testbeds[voting] = loader.stats.mean_latency_us
        return testbeds

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — first-response vs majority voting (active)")
    print(f"first response: {results[False]:10.1f} us")
    print(f"majority vote:  {results[True]:10.1f} us")
    assert results[True] > results[False]


def test_ablation_recovery_time_by_style(benchmark):
    """Section 4.2: active recovers fastest (no rollback), warm
    passive pays detection + promotion, cold passive pays detection +
    spawn + state restore."""
    def measure(style):
        testbed = Testbed.paper_testbed(3, 1, seed=0)
        config = ReplicationConfig(style=style, group="svc")
        n_replicas = 1 if style is ReplicationStyle.COLD_PASSIVE else 3
        replicas = deploy_replica_group(
            testbed, [f"s{i:02d}" for i in range(1, n_replicas + 1)],
            config,
            {"bench": lambda: BusyServant(processing_us=15,
                                          reply_bytes=128)})
        stack = deploy_client(testbed, "w01", ClientReplicationConfig(
            group="svc", expected_style=style, retry_timeout_us=100_000))
        if style is ReplicationStyle.COLD_PASSIVE:
            from repro.replication import ReplicaFactory
            from repro.experiments import deploy_replica
            manager = testbed.connect(testbed.spawn("w01", "mgr"))
            hosts = [testbed.hosts[f"s{i:02d}"] for i in range(1, 4)]
            ReplicaFactory(
                manager, "svc", hosts,
                lambda host: deploy_replica(
                    testbed, host.name, config,
                    {"bench": lambda: BusyServant(processing_us=15,
                                                  reply_bytes=128)},
                    process_name=f"svc@{host.name}-respawn"),
                target=1, calibration=testbed.calibration.replication)
        testbed.run(200_000)
        # Warm up with one request, then kill the primary.
        replies = []
        stack.orb_client.invoke("bench", "op", 1, 128, replies.append)
        testbed.run(2_000_000)
        assert replies
        replicas[0].crash()
        crash_at = testbed.now
        after = []
        stack.orb_client.invoke("bench", "op", 1, 128, after.append)
        guard = 0
        while not after and guard < 60:
            testbed.run(500_000)
            guard += 1
        assert after, f"no recovery for {style.value}"
        # The reply timeline carries the exact completion instant
        # (the polling loop above is coarse).
        return after[0].timeline.completed_at - crash_at

    def run():
        return {style: measure(style)
                for style in (ReplicationStyle.ACTIVE,
                              ReplicationStyle.WARM_PASSIVE,
                              ReplicationStyle.COLD_PASSIVE)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — recovery time after primary crash")
    for style, recovery_us in results.items():
        print(f"{style.value:14s} {recovery_us / 1000.0:10.1f} ms")
    active = results[ReplicationStyle.ACTIVE]
    warm = results[ReplicationStyle.WARM_PASSIVE]
    cold = results[ReplicationStyle.COLD_PASSIVE]
    assert active < warm < cold
    # Active recovery is essentially a normal round trip.
    assert active < 50_000.0


def test_ablation_incremental_checkpoints(benchmark):
    """`checkpoint_delta_fraction`: shipping state deltas instead of
    full snapshots sheds checkpoint bandwidth without touching the
    capture cost (latency roughly unchanged)."""
    from repro.experiments import Testbed, deploy_client, deploy_replica_group
    from repro.workload import ClosedLoopClient

    def run_with_delta(delta):
        testbed = Testbed.paper_testbed(3, 3, seed=0)
        config = ReplicationConfig(
            style=ReplicationStyle.WARM_PASSIVE, group="svc",
            checkpoint_delta_fraction=delta)
        deploy_replica_group(
            testbed, ["s01", "s02", "s03"], config,
            {"bench": lambda: BusyServant(processing_us=15,
                                          reply_bytes=128,
                                          state_bytes=4096)})
        stacks = [deploy_client(testbed, f"w{i:02d}",
                                ClientReplicationConfig(
                                    group="svc",
                                    expected_style=ReplicationStyle
                                    .WARM_PASSIVE))
                  for i in (1, 2, 3)]
        testbed.run(150_000)
        loaders = [ClosedLoopClient(s, N, object_key="bench",
                                    payload_bytes=128) for s in stacks]
        b0, t0 = testbed.network.stats.total_bytes, testbed.now
        for loader in loaders:
            loader.start()
        while not all(l.done for l in loaders):
            testbed.run(500_000)
        duration = max(l.stats.completion_times[-1] for l in loaders) - t0
        bw = (testbed.network.stats.total_bytes - b0) / duration
        lat = sum(l.stats.mean_latency_us for l in loaders) / 3
        return lat, bw

    def run():
        return {delta: run_with_delta(delta) for delta in (1.0, 0.25)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — incremental checkpoints (state 4 KB)")
    for delta, (lat, bw) in sorted(results.items()):
        print(f"delta={delta:4.2f}: latency={lat:8.1f} us  "
              f"bandwidth={bw:.3f} MB/s")
    full_lat, full_bw = results[1.0]
    delta_lat, delta_bw = results[0.25]
    assert delta_bw < full_bw            # deltas shed bandwidth
    assert delta_lat == pytest.approx(full_lat, rel=0.10)  # capture same


def test_ablation_broadcast_mode_trades_bandwidth_for_recovery(benchmark):
    """`broadcast_requests`: multicasting client requests to the
    backups costs bandwidth in steady state but buys log-replay
    recovery (state restored without client retransmissions)."""
    def run_mode(broadcast):
        # run_replicated_load has no broadcast knob; measure directly.
        from repro.experiments import (Testbed, deploy_client,
                                       deploy_replica_group)
        from repro.workload import ClosedLoopClient
        testbed = Testbed.paper_testbed(3, 3, seed=0)
        config = ReplicationConfig(
            style=ReplicationStyle.WARM_PASSIVE, group="svc",
            broadcast_requests=broadcast, checkpoint_interval_requests=50)
        deploy_replica_group(
            testbed, ["s01", "s02", "s03"], config,
            {"bench": lambda: BusyServant(processing_us=15,
                                          reply_bytes=128)})
        stacks = [deploy_client(testbed, f"w{i:02d}",
                                ClientReplicationConfig(
                                    group="svc",
                                    expected_style=ReplicationStyle
                                    .WARM_PASSIVE))
                  for i in (1, 2, 3)]
        testbed.run(150_000)
        loaders = [ClosedLoopClient(s, N, object_key="bench",
                                    payload_bytes=128) for s in stacks]
        b0, t0 = testbed.network.stats.total_bytes, testbed.now
        for loader in loaders:
            loader.start()
        while not all(l.done for l in loaders):
            testbed.run(500_000)
        duration = max(l.stats.completion_times[-1] for l in loaders) - t0
        return (testbed.network.stats.total_bytes - b0) / duration

    def run():
        return {mode: run_mode(mode) for mode in (False, True)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — direct-to-primary vs broadcast requests")
    print(f"direct to primary: {results[False]:.3f} MB/s")
    print(f"broadcast + log:   {results[True]:.3f} MB/s")
    assert results[True] > results[False]
