"""Journal overhead check (rides on the paper's Fig. 4 scenario).

The dependability journal makes the same two guarantees telemetry
does (see ``test_telemetry_overhead.py``):

1. **Determinism** — recording is observation-only, so every
   simulated outcome is byte-identical with the journal on or off.
2. **Near-zero cost when disabled** — each journal site is a single
   attribute load plus an ``enabled`` branch.

The wall-clock assertions are intentionally loose (shared CI boxes
are noisy) and the CI job running this file is non-blocking; the
determinism assertions are exact.
"""

import time

import pytest

from conftest import BENCH_REQUESTS, print_header

from repro.experiments import run_replicated_load
from repro.journal import events_to_jsonl
from repro.replication import ReplicationStyle

#: Wall-clock budgets, same rationale (and same slack) as telemetry.
DISABLED_BUDGET = 1.50
ENABLED_BUDGET = 3.0

REQUESTS = max(BENCH_REQUESTS, 200)


def _timed_run(journal: bool, seed: int = 0):
    started = time.perf_counter()
    result = run_replicated_load(
        ReplicationStyle.ACTIVE, n_replicas=2, n_clients=1,
        n_requests=REQUESTS, seed=seed, journal=journal)
    return time.perf_counter() - started, result


def _sim_signature(result):
    return (result.latency_mean_us, result.jitter_us,
            result.completed, result.duration_us,
            result.bandwidth_mbps)


def test_journal_disabled_is_free(benchmark):
    """Simulated results are byte-identical with the journal off vs
    on, and the disabled path's wall-clock sits at the noise floor."""
    warm, _ = _timed_run(journal=False)  # warm caches/imports
    t_off, off = _timed_run(journal=False)
    t_off2, off2 = _timed_run(journal=False)
    t_on, on = _timed_run(journal=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print_header("Journal overhead (Fig. 4 two-replica scenario)")
    print(f"{'mode':28s} {'wall [ms]':>10s} {'mean RTT [us]':>14s}")
    for label, wall, result in (
            ("disabled", t_off, off), ("disabled (repeat)", t_off2, off2),
            ("enabled", t_on, on)):
        print(f"{label:28s} {wall * 1e3:10.1f} "
              f"{result.latency_mean_us:14.1f}")

    assert _sim_signature(off) == _sim_signature(off2)
    assert _sim_signature(off) == _sim_signature(on)

    floor = min(t_off, t_off2)
    assert max(t_off, t_off2) < DISABLED_BUDGET * max(floor, 1e-3)
    assert t_on < ENABLED_BUDGET * max(floor, 1e-3)


def test_journal_deterministic_artifact(benchmark):
    """Two same-seed runs write byte-identical JSONL journals."""
    _, first = _timed_run(journal=True)
    _, second = _timed_run(journal=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert first.journal is not None and len(first.journal) > 0
    assert first.journal.dropped == 0
    assert events_to_jsonl(first.journal.events) == \
        events_to_jsonl(second.journal.events)
