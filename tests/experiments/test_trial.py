"""Tests for the single fault-injection trial harness."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import FaultTrialResult, run_fault_trial
from repro.replication import ReplicationStyle


def run(style=ReplicationStyle.ACTIVE, **kwargs):
    defaults = dict(n_replicas=2, n_clients=1, duration_us=300_000.0,
                    rate_per_s=100.0, seed=1, settle_us=400_000.0)
    defaults.update(kwargs)
    return run_fault_trial(style, **defaults)


def test_fault_free_trial_is_fully_available():
    result = run()
    assert result.sent > 0
    assert result.completed == result.sent
    assert result.availability == 1.0
    assert result.failed_fraction == 0.0
    assert result.mean_recovery_us == 0.0
    assert result.latency_mean_us > 0
    assert result.injected == []


def test_active_replication_masks_a_replica_crash():
    def crash_backup(ctx):
        ctx.injector.crash_process_at(ctx.replicas[1].process,
                                      ctx.t0 + 100_000.0)

    result = run(inject=crash_backup)
    assert len(result.injected) == 1
    # Active replication masks a non-primary crash completely.
    assert result.completed == result.sent
    assert result.availability > 0.99


def test_primary_crash_causes_measurable_downtime():
    def crash_primary(ctx):
        ctx.injector.crash_process_at(ctx.replicas[0].process,
                                      ctx.t0 + 100_000.0)

    result = run(style=ReplicationStyle.WARM_PASSIVE,
                 duration_us=400_000.0, settle_us=1_500_000.0,
                 inject=crash_primary)
    assert result.availability < 1.0
    assert result.mean_recovery_us > 0


def test_metrics_dict_is_json_ready():
    import json

    result = run()
    metrics = result.metrics()
    line = json.dumps(metrics, sort_keys=True)
    assert json.loads(line) == metrics
    for key in ("sent", "completed", "availability", "failed_fraction",
                "late_fraction", "latency_mean_us", "bandwidth_mbps",
                "mean_recovery_us", "faults"):
        assert key in metrics


def test_trials_are_deterministic_per_seed():
    a = run(seed=5).metrics()
    b = run(seed=5).metrics()
    c = run(seed=6).metrics()
    assert a == b
    assert a != c


def test_late_fraction_counts_deadline_misses():
    strict = run(deadline_us=1.0)
    assert strict.late == strict.completed
    assert strict.late_fraction == 1.0
    relaxed = run(deadline_us=10_000_000.0)
    assert relaxed.late == 0


def test_respawn_replica_restores_group_size():
    observed = {}

    def crash_and_respawn(ctx):
        ctx.injector.crash_and_restart_at(
            ctx.replicas[0].process, ctx.t0 + 100_000.0,
            restart_after_us=50_000.0,
            restart=lambda: observed.setdefault(
                "respawned", ctx.respawn_replica(0)))

    run(duration_us=400_000.0, settle_us=1_500_000.0,
        inject=crash_and_respawn)
    assert "respawned" in observed


def test_bad_arguments_rejected():
    with pytest.raises(ConfigurationError):
        run(n_replicas=0)
    with pytest.raises(ConfigurationError):
        run(duration_us=0.0)
    with pytest.raises(ConfigurationError):
        run(rate_per_s=-5.0)


def test_failed_fraction_of_empty_trial_is_zero():
    result = FaultTrialResult(style=ReplicationStyle.ACTIVE,
                              n_replicas=2, n_clients=0,
                              duration_us=1.0, sent=0, completed=0,
                              failed=0, late=0, availability=1.0,
                              mean_recovery_us=0.0,
                              recovery_times_us=[],
                              latency_mean_us=0.0, jitter_us=0.0,
                              bandwidth_mbps=0.0, wire_bytes=0.0,
                              injected=[])
    assert result.failed_fraction == 0.0
    assert result.late_fraction == 0.0


def test_check_attaches_verification_verdict():
    result = run(check=True)
    assert result.check is not None
    assert result.check["ok"] is True
    assert result.check["linearizable"] is True
    assert result.check["violations"] == []
    assert result.check["operations"] > 0
    assert result.check["truncated_rings"] == {}
    assert result.metrics()["check"]["ok"] is True


def test_check_forces_journal_capture():
    result = run(check=True, journal=False)
    assert result.journal_events is not None


def test_no_check_by_default():
    result = run()
    assert result.check is None
    assert "check" not in result.metrics()
