"""Multiple replicated services sharing one GCS substrate.

The paper's architecture allows "selecting a different replication
style for each CORBA process": several replica groups coexist on the
same daemons, with independent styles, switches and failures.
"""

import pytest

from repro.experiments import (
    Testbed,
    deploy_client,
    deploy_replica_group,
)
from repro.orb import CounterServant, KeyValueServant, marshalled_size
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)

FAILOVER_US = 1_500_000


@pytest.fixture
def two_services():
    testbed = Testbed.paper_testbed(3, 1, seed=17)
    counter_cfg = ReplicationConfig(style=ReplicationStyle.ACTIVE,
                                    group="counter-svc")
    kv_cfg = ReplicationConfig(style=ReplicationStyle.WARM_PASSIVE,
                               group="kv-svc")
    counters = deploy_replica_group(testbed, ["s01", "s02", "s03"],
                                    counter_cfg,
                                    {"counter": CounterServant})
    kvs = deploy_replica_group(testbed, ["s01", "s02", "s03"], kv_cfg,
                               {"kv": KeyValueServant})
    counter_client = deploy_client(
        testbed, "w01", ClientReplicationConfig(
            group="counter-svc",
            expected_style=ReplicationStyle.ACTIVE),
        process_name="counter-client")
    kv_client = deploy_client(
        testbed, "w01", ClientReplicationConfig(
            group="kv-svc",
            expected_style=ReplicationStyle.WARM_PASSIVE),
        process_name="kv-client")
    testbed.run(150_000)
    return testbed, counters, kvs, counter_client, kv_client


def _call(testbed, client, key, op, payload, timeout=2_000_000):
    replies = []
    client.orb_client.invoke(key, op, payload, marshalled_size(payload),
                             replies.append)
    testbed.run(timeout)
    assert replies
    return replies[0]


def test_styles_are_independent_per_service(two_services):
    testbed, counters, kvs, counter_client, kv_client = two_services
    assert counters[0].replicator.style is ReplicationStyle.ACTIVE
    assert kvs[0].replicator.style is ReplicationStyle.WARM_PASSIVE


def test_both_services_answer(two_services):
    testbed, counters, kvs, counter_client, kv_client = two_services
    assert _call(testbed, counter_client, "counter", "add", 4).payload == 4
    assert _call(testbed, kv_client, "kv", "put",
                 ("k", "v")).payload == "ok"
    assert _call(testbed, kv_client, "kv", "get", "k").payload == "v"


def test_switching_one_service_leaves_the_other(two_services):
    testbed, counters, kvs, counter_client, kv_client = two_services
    kvs[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(1_500_000)
    assert all(r.replicator.style is ReplicationStyle.ACTIVE for r in kvs)
    assert all(r.replicator.style is ReplicationStyle.ACTIVE
               for r in counters)  # was active already, untouched
    assert counters[0].replicator.switch_history == []
    assert len(kvs[0].replicator.switch_history) == 1


def test_crash_of_one_services_replica_is_isolated(two_services):
    """Killing one service's replica process must not disturb the
    other service's group (they share hosts and daemons)."""
    testbed, counters, kvs, counter_client, kv_client = two_services
    kvs[0].crash()  # kv primary dies; counter replica on s01 lives
    testbed.run(FAILOVER_US)
    assert counters[0].alive
    assert _call(testbed, counter_client, "counter", "add",
                 1).payload == 1
    reply = _call(testbed, kv_client, "kv", "put", ("x", 1),
                  timeout=2 * FAILOVER_US)
    assert reply.payload == "ok"
    assert len(counters[0].replicator.view.members) == 3
    live_kv_views = [r.replicator.view.members for r in kvs if r.alive]
    assert all(len(v) == 2 for v in live_kv_views)


def test_host_crash_hits_both_services_consistently(two_services):
    testbed, counters, kvs, counter_client, kv_client = two_services
    testbed.hosts["s02"].crash()
    testbed.run(2 * FAILOVER_US)
    assert _call(testbed, counter_client, "counter", "add", 2,
                 timeout=FAILOVER_US).payload == 2
    assert _call(testbed, kv_client, "kv", "put", ("y", 9),
                 timeout=2 * FAILOVER_US).payload == "ok"
    for group in (counters, kvs):
        live = [r for r in group if r.alive]
        assert all(len(r.replicator.view.members) == 2 for r in live)
