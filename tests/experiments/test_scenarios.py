"""Integration tests for the experiment harness itself."""

import pytest

from repro.core import ThresholdSwitchPolicy
from repro.errors import ConfigurationError
from repro.experiments import (
    Testbed,
    build_profile,
    deploy_client,
    deploy_replica,
    deploy_replica_group,
    run_adaptive_scenario,
    run_overhead_modes,
    run_replicated_load,
    run_rtt_breakdown,
)
from repro.orb import CounterServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)
from repro.workload import ConstantRate


class TestTestbed:
    def test_paper_testbed_host_naming(self):
        testbed = Testbed.paper_testbed(3, 5)
        assert sorted(testbed.hosts) == [
            "s01", "s02", "s03", "w01", "w02", "w03", "w04", "w05"]
        # Servers sort first: the sequencer colocates with s01.
        assert testbed.daemons["s01"].is_sequencer

    def test_empty_testbed_rejected(self):
        with pytest.raises(ConfigurationError):
            Testbed([])

    def test_deploy_replica_group_join_order(self):
        testbed = Testbed.paper_testbed(3, 1)
        config = ReplicationConfig(style=ReplicationStyle.WARM_PASSIVE,
                                   group="svc")
        replicas = deploy_replica_group(testbed, ["s01", "s02", "s03"],
                                        config,
                                        {"counter": CounterServant})
        testbed.run(100_000)
        # First deployed is the longest-standing member = primary.
        assert replicas[0].replicator.is_primary
        assert not replicas[1].replicator.is_primary

    def test_all_replicas_synced_after_deploy(self):
        testbed = Testbed.paper_testbed(3, 1)
        config = ReplicationConfig(style=ReplicationStyle.ACTIVE,
                                   group="svc")
        replicas = deploy_replica_group(testbed, ["s01", "s02", "s03"],
                                        config,
                                        {"counter": CounterServant})
        testbed.run(300_000)
        assert all(r.replicator.synced for r in replicas)


class TestLoadScenario:
    def test_result_fields_consistent(self):
        result = run_replicated_load(ReplicationStyle.ACTIVE, 2, 2, 20)
        assert result.completed == 40
        assert result.latency_mean_us > 0
        assert result.bandwidth_mbps > 0
        assert result.throughput_per_s > 0
        assert len(result.per_client_latency_us) == 2

    def test_measurement_conversion(self):
        result = run_replicated_load(ReplicationStyle.WARM_PASSIVE, 2, 1, 10)
        m = result.as_measurement()
        assert m.config.label == "P(2)"
        assert m.config.faults_tolerated == 1
        assert m.latency_us == result.latency_mean_us

    def test_deterministic_given_seed(self):
        a = run_replicated_load(ReplicationStyle.ACTIVE, 2, 1, 20, seed=9)
        b = run_replicated_load(ReplicationStyle.ACTIVE, 2, 1, 20, seed=9)
        assert a.latency_mean_us == b.latency_mean_us
        assert a.bandwidth_mbps == b.bandwidth_mbps

    def test_breakdown_only_with_timelines(self):
        bare = run_replicated_load(ReplicationStyle.ACTIVE, 1, 1, 10)
        kept = run_replicated_load(ReplicationStyle.ACTIVE, 1, 1, 10,
                                   keep_timelines=True)
        assert bare.breakdown == {}
        assert kept.breakdown


class TestProfileSweep:
    def test_small_sweep_shape(self):
        profile, results = build_profile(client_counts=(1, 2),
                                         replica_counts=(2,),
                                         n_requests=15)
        assert len(profile) == 4  # 2 styles x 1 replica count x 2 loads
        assert len(results) == 4
        assert profile.client_counts() == [1, 2]


class TestBreakdownScenario:
    def test_components_present(self):
        breakdown = run_rtt_breakdown(n_requests=50)
        for component in ("application", "orb", "group_communication",
                          "replicator"):
            assert breakdown.get(component, 0.0) > 0


class TestOverheadScenario:
    def test_all_six_modes_present(self):
        modes = run_overhead_modes(n_requests=40)
        assert set(modes) == {
            "no_interceptor", "client_intercepted", "server_intercepted",
            "both_intercepted", "warm_passive_1", "active_1"}


class TestAdaptiveScenario:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            run_adaptive_scenario(ConstantRate(100), 1_000_000)
        with pytest.raises(ValueError):
            run_adaptive_scenario(
                ConstantRate(100), 1_000_000,
                policy=ThresholdSwitchPolicy(400, 200),
                static_style=ReplicationStyle.ACTIVE)

    def test_static_run_has_no_rate_series(self):
        result = run_adaptive_scenario(
            ConstantRate(50), 1_000_000,
            static_style=ReplicationStyle.ACTIVE)
        assert result.rate_series == []
        assert result.switch_events == []
        assert result.completed == result.sent

    def test_open_loop_mode(self):
        result = run_adaptive_scenario(
            ConstantRate(100), 1_000_000, closed_loop=False,
            static_style=ReplicationStyle.ACTIVE)
        # Open loop sends at the profile rate regardless of replies.
        assert 80 <= result.sent <= 120
