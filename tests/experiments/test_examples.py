"""Smoke tests: every shipped example must run green.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in a subprocess exactly as a user would run it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    assert "quickstart.py" in ALL_EXAMPLES
    assert "adaptive_replication.py" in ALL_EXAMPLES
    assert "scalability_tuning.py" in ALL_EXAMPLES
    assert "mission_modes.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 4


@pytest.mark.parametrize("example", ALL_EXAMPLES)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True, text=True, timeout=900)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_shows_failover():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=900)
    assert "crashing replica" in result.stdout
    assert "client retries so far: 0" in result.stdout


def test_scalability_example_reproduces_table2_pattern():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "scalability_tuning.py")],
        capture_output=True, text=True, timeout=900)
    out = result.stdout
    # The synthesized table follows the paper's selections.
    assert "A(3)" in out and "P(3)" in out and "P(2)" in out
    assert "operator is notified" in out


def test_adaptive_example_reports_gain():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "adaptive_replication.py")],
        capture_output=True, text=True, timeout=900)
    assert "gain +" in result.stdout
    assert "warm_passive -> active" in result.stdout
