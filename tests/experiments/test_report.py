"""Tests for the EXPERIMENTS.md report generator."""

import io

import pytest

from repro.experiments.report import PAPER_TABLE_2, write_report


@pytest.fixture(scope="module")
def report_text():
    buffer = io.StringIO()
    # Tiny request counts keep this fast; section structure and the
    # presence of every artifact is what we assert.
    write_report(buffer, n_requests=12, seed=0)
    return buffer.getvalue()


def test_report_contains_every_artifact_section(report_text):
    for heading in ("## Fig. 3", "## Fig. 4", "## Fig. 6", "## Fig. 7",
                    "## Fig. 9", "## Table 1", "## Table 2",
                    "## Substitutions"):
        assert heading in report_text, heading


def test_report_quotes_paper_numbers(report_text):
    # Fig. 3 anchors.
    for value in ("398", "620", "154"):
        assert value in report_text
    # Table 2 paper costs.
    assert "0.268" in report_text
    assert "0.895" in report_text


def test_report_renders_all_table2_rows(report_text):
    for _, config, *_ in PAPER_TABLE_2:
        assert config in report_text


def test_report_is_markdown_tables(report_text):
    assert report_text.count("|---|") >= 5
    assert report_text.startswith("# EXPERIMENTS")


def test_paper_table2_constants_sane():
    n_clients = [row[0] for row in PAPER_TABLE_2]
    assert n_clients == [1, 2, 3, 4, 5]
    faults = [row[4] for row in PAPER_TABLE_2]
    assert faults == [2, 2, 2, 2, 1]
