"""Golden-numbers regression net.

``golden.json`` snapshots the calibrated substrate's Fig. 3 breakdown
and a cut of the Fig. 7 sweep.  These tests re-measure and compare
within ±10 %: loose enough to survive benign refactors, tight enough
to catch accidental calibration drift (which would silently bend every
benchmark's absolute numbers).

Regenerate after an *intentional* calibration change with::

    python - <<'PY'
    # (see the generation snippet in the repository history, or simply
    # re-run the block in tests/experiments/test_golden.py's docstring
    # with the new calibration)
    PY
"""

import json
import pathlib

import pytest

from repro.core.measurements import ConfigPoint
from repro.experiments import build_profile, run_rtt_breakdown
from repro.replication import ReplicationStyle

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden.json").read_text())

TOLERANCE = 0.10


@pytest.fixture(scope="module")
def measured_profile():
    profile, _ = build_profile(client_counts=(1, 3, 5),
                               replica_counts=(2, 3),
                               n_requests=60, seed=0)
    return profile


def test_breakdown_matches_golden():
    breakdown = run_rtt_breakdown(n_requests=200, seed=0)
    for component, golden_value in GOLDEN["breakdown"].items():
        assert breakdown[component] == pytest.approx(
            golden_value, rel=TOLERANCE), component


def test_profile_matches_golden(measured_profile):
    for row in GOLDEN["profile"]:
        config = ConfigPoint(style=ReplicationStyle(row["style"]),
                             n_replicas=row["n_replicas"])
        measurement = measured_profile.get(config, row["n_clients"])
        assert measurement is not None, row
        label = f"{config.label}@{row['n_clients']}cli"
        assert measurement.latency_us == pytest.approx(
            row["latency_us"], rel=TOLERANCE), f"latency {label}"
        assert measurement.bandwidth_mbps == pytest.approx(
            row["bandwidth_mbps"], rel=TOLERANCE), f"bandwidth {label}"


def test_golden_file_covers_expected_grid():
    rows = GOLDEN["profile"]
    assert len(rows) == 12  # 2 styles x 2 replica counts x 3 loads
    assert set(GOLDEN["breakdown"]) == {
        "application", "orb", "group_communication", "replicator"}
