"""End-to-end story tests: the full Section 4.3 procedure against a
live system — profile, synthesize, tune, verify the prediction.
"""

import pytest

from repro.core import (
    Constraints,
    CostFunction,
    NumReplicasKnob,
    ReplicationStyleKnob,
    ScalabilityKnob,
    ScalabilityPolicy,
)
from repro.experiments import (
    Testbed,
    build_profile,
    deploy_client,
    deploy_replica,
    run_replicated_load,
)
from repro.orb import BusyServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicaFactory,
    ReplicationConfig,
    ReplicationStyle,
)
from repro.workload import ClosedLoopClient


@pytest.fixture(scope="module")
def small_profile():
    """A cut-down Fig. 7 sweep (cheap enough for the unit suite)."""
    profile, _ = build_profile(client_counts=(1, 3), replica_counts=(2, 3),
                               n_requests=60, seed=0)
    return profile


def test_policy_prediction_matches_live_measurement(small_profile):
    """The configuration the policy picks for 3 clients, deployed live
    and loaded with 3 clients, actually behaves as the profile
    predicted (within sampling tolerance)."""
    policy = ScalabilityPolicy.synthesize(small_profile, Constraints(),
                                          CostFunction())
    entry = policy.best_configuration(3)
    live = run_replicated_load(entry.config.style,
                               entry.config.n_replicas, 3, 60, seed=1)
    assert live.latency_mean_us == pytest.approx(entry.latency_us,
                                                 rel=0.15)
    assert live.bandwidth_mbps == pytest.approx(entry.bandwidth_mbps,
                                                rel=0.15)
    # The live run honours the constraints the policy promised.
    assert live.latency_mean_us <= 7000.0
    assert live.bandwidth_mbps <= 3.0


def test_knob_driven_reconfiguration_end_to_end(small_profile):
    """Drive a deployed service through the scalability knob and keep
    invoking across the reconfiguration: no request is lost and the
    final configuration matches the policy."""
    policy = ScalabilityPolicy.synthesize(small_profile, Constraints(),
                                          CostFunction())
    testbed = Testbed.paper_testbed(4, 1, seed=2)
    config = ReplicationConfig(style=ReplicationStyle.ACTIVE, group="svc")
    style_knob = ReplicationStyleKnob([])

    def spawn(host):
        replica = deploy_replica(
            testbed, host.name, config,
            {"bench": lambda: BusyServant(processing_us=15,
                                          reply_bytes=128)},
            process_name=f"svc@{host.name}")
        style_knob.add_replica(replica.replicator)
        return replica

    manager = testbed.connect(testbed.spawn("w01", "mgr"))
    hosts = [testbed.hosts[f"s{i:02d}"] for i in range(1, 5)]
    factory = ReplicaFactory(manager, "svc", hosts, spawn, target=2,
                             calibration=testbed.calibration.replication)
    client = deploy_client(testbed, "w01",
                           ClientReplicationConfig(group="svc"))
    knob = ScalabilityKnob(policy, style_knob, NumReplicasKnob(factory))
    testbed.run(3_000_000)

    # Load continuously while the knob reconfigures for 3 clients.
    loader = ClosedLoopClient(client, 40, object_key="bench",
                              payload_bytes=128)
    loader.start()
    testbed.run(10_000)
    knob.set(3)
    while not loader.done:
        testbed.run(500_000)
    testbed.run(4_000_000)

    assert loader.stats.completed == 40
    expected = policy.best_configuration(3).config
    assert style_knob.get() is expected.style
    assert factory.live_count == expected.n_replicas


def test_full_run_is_reproducible_end_to_end():
    """Two identical end-to-end runs (profile + policy) are
    bit-identical — the determinism requirement, system-wide."""
    def run_once():
        profile, _ = build_profile(client_counts=(1,),
                                   replica_counts=(2,),
                                   n_requests=25, seed=11)
        policy = ScalabilityPolicy.synthesize(profile)
        return [(e.n_clients, e.config.label, e.latency_us,
                 e.bandwidth_mbps, e.cost) for e in policy.table()]

    assert run_once() == run_once()
