"""Shared test helpers: a small simulated cluster with GCS daemons."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.gcs import GcsClient, GcsDaemon
from repro.net import Network
from repro.sim import (
    Host,
    NetworkCalibration,
    Process,
    Simulator,
    SubstrateCalibration,
    default_calibration,
)


class Cluster:
    """A LAN of hosts, each running a GCS daemon."""

    def __init__(self, host_names: Sequence[str], seed: int = 0,
                 calibration: Optional[SubstrateCalibration] = None,
                 deterministic_network: bool = True):
        self.calibration = calibration or default_calibration()
        if deterministic_network:
            self.calibration = self.calibration.with_overrides(
                network=NetworkCalibration(jitter_us=0.0))
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, self.calibration.network)
        self.hosts: Dict[str, Host] = {}
        self.daemons: Dict[str, GcsDaemon] = {}
        names = list(host_names)
        for name in names:
            self.hosts[name] = self.network.add_host(
                name, calibration=self.calibration.host)
        for name in names:
            proc = Process(self.hosts[name], f"gcsd-{name}")
            self.daemons[name] = GcsDaemon(proc, self.network, names,
                                           self.calibration.gcs)

    def spawn(self, host: str, name: str) -> Process:
        return Process(self.hosts[host], name)

    def client(self, host: str, name: str) -> Tuple[Process, GcsClient]:
        proc = self.spawn(host, name)
        return proc, GcsClient(proc, self.daemons[host])

    def run(self, duration_us: float) -> None:
        self.sim.run(until=self.sim.now + duration_us)

    def run_until_idle(self) -> None:
        self.sim.run_until_idle()


class RecordingListener:
    """GroupListener that records everything it sees."""

    def __init__(self) -> None:
        self.messages: List[Tuple[str, str, object]] = []
        self.views: List[Tuple[int, Tuple[str, ...], bool]] = []

    def on_message(self, group, sender, payload, nbytes) -> None:
        self.messages.append((group, str(sender), payload))

    def on_view(self, view, joined, left, crashed) -> None:
        self.views.append(
            (view.view_id, tuple(str(m) for m in view.members), crashed))

    @property
    def payloads(self) -> List[object]:
        return [payload for _, _, payload in self.messages]

    @property
    def member_sets(self) -> List[Tuple[str, ...]]:
        return [members for _, members, _ in self.views]
