"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_breakdown_command(capsys):
    assert main(["--requests", "30", "breakdown"]) == 0
    out = capsys.readouterr().out
    assert "group_communication" in out
    assert "TOTAL" in out


def test_profile_command_with_csv(tmp_path, capsys):
    csv_path = tmp_path / "sweep.csv"
    assert main(["--requests", "8", "profile", "--csv",
                 str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "A(2)" in out and "P(3)" in out
    assert csv_path.read_text().startswith("style,")


def test_policy_command(capsys):
    assert main(["--requests", "30", "policy"]) == 0
    out = capsys.readouterr().out
    assert "Ncli" in out
    # With 30-request sampling the exact pattern may wobble, but the
    # table renders and selects configurations.
    assert "(" in out


def test_policy_command_custom_constraints(capsys):
    assert main(["--requests", "8", "policy", "--max-latency", "900000",
                 "--max-bandwidth", "90"]) == 0
    out = capsys.readouterr().out
    # With absurdly loose constraints every load is feasible.
    assert out.count("\n") >= 5


def test_report_command(capsys):
    assert main(["--requests", "8", "report"]) == 0
    out = capsys.readouterr().out
    assert "# EXPERIMENTS" in out
    assert "Table 2" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-command"])


def test_verify_command_passes(capsys):
    assert main(["--requests", "60", "verify"]) == 0
    out = capsys.readouterr().out
    assert "verify: PASS" in out
    assert "Table 2 pattern" in out
