"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_breakdown_command(capsys):
    assert main(["--requests", "30", "breakdown"]) == 0
    out = capsys.readouterr().out
    assert "group_communication" in out
    assert "TOTAL" in out


def test_profile_command_with_csv(tmp_path, capsys):
    csv_path = tmp_path / "sweep.csv"
    assert main(["--requests", "8", "profile", "--csv",
                 str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "A(2)" in out and "P(3)" in out
    assert csv_path.read_text().startswith("style,")


def test_policy_command(capsys):
    assert main(["--requests", "30", "policy"]) == 0
    out = capsys.readouterr().out
    assert "Ncli" in out
    # With 30-request sampling the exact pattern may wobble, but the
    # table renders and selects configurations.
    assert "(" in out


def test_policy_command_custom_constraints(capsys):
    assert main(["--requests", "8", "policy", "--max-latency", "900000",
                 "--max-bandwidth", "90"]) == 0
    out = capsys.readouterr().out
    # With absurdly loose constraints every load is feasible.
    assert out.count("\n") >= 5


def test_report_command(capsys):
    assert main(["--requests", "8", "report"]) == 0
    out = capsys.readouterr().out
    assert "# EXPERIMENTS" in out
    assert "Table 2" in out


def test_unknown_command_exits_2_with_listing(capsys):
    assert main(["definitely-not-a-command"]) == 2
    err = capsys.readouterr().err
    assert "unknown command 'definitely-not-a-command'" in err
    # The listing names every subcommand with its one-line summary.
    for name in ("breakdown", "profile", "policy", "adaptive",
                 "campaign", "trace", "observe", "bench", "check",
                 "cluster", "report", "verify"):
        assert name in err
    assert "sharded deployments" in err


def test_verify_command_passes(capsys):
    assert main(["--requests", "60", "verify"]) == 0
    out = capsys.readouterr().out
    assert "verify: PASS" in out
    assert "Table 2 pattern" in out


def _write_campaign_spec(tmp_path):
    import json

    spec = {
        "name": "cli-test", "styles": ["active"],
        "replica_counts": [2], "checkpoint_intervals": [1],
        "fault_loads": ["none", "process_crash"], "seeds": [0],
        "n_clients": 1, "duration_us": 200000.0, "rate_per_s": 100.0,
        "deadline_us": 7000.0, "settle_us": 400000.0,
        "base_seed": 0, "version": 1,
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return path


def test_campaign_command_runs_and_resumes(tmp_path, capsys):
    spec = _write_campaign_spec(tmp_path)
    results = tmp_path / "out.jsonl"
    csv_path = tmp_path / "scores.csv"

    assert main(["campaign", str(spec), "--results", str(results),
                 "--csv", str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "2 trial" in out or "ran 2" in out
    assert "Pareto" in out
    assert results.exists()
    assert len(results.read_text().splitlines()) == 2
    assert csv_path.read_text().startswith("config,")

    # Second invocation resumes: every trial is already recorded.
    assert main(["campaign", str(spec), "--results",
                 str(results)]) == 0
    out = capsys.readouterr().out
    assert "skipped 2" in out
    assert len(results.read_text().splitlines()) == 2


def test_campaign_command_fresh_rerun(tmp_path, capsys):
    spec = _write_campaign_spec(tmp_path)
    results = tmp_path / "out.jsonl"
    assert main(["campaign", str(spec), "--results",
                 str(results)]) == 0
    first = results.read_bytes()
    capsys.readouterr()
    assert main(["campaign", str(spec), "--results", str(results),
                 "--fresh", "--quiet"]) == 0
    assert results.read_bytes() == first


def test_campaign_command_rejects_bad_spec(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["campaign", str(bad)]) == 2
    assert "bad spec" in capsys.readouterr().err


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro {__version__}" in capsys.readouterr().out


def test_trace_command_summary(capsys):
    assert main(["--requests", "15", "trace"]) == 0
    out = capsys.readouterr().out
    assert "traced 15 requests" in out
    assert "latency p50" in out
    assert "group_communication" in out


def test_trace_command_chrome_round_trips(tmp_path, capsys):
    from repro.telemetry import parse_chrome_trace

    out_path = tmp_path / "trace.json"
    assert main(["--requests", "10", "trace", "--format", "chrome",
                 "--out", str(out_path)]) == 0
    assert "wrote" in capsys.readouterr().out
    events = parse_chrome_trace(out_path.read_text())
    assert events
    assert any(e["name"] == "request" for e in events)


def test_trace_command_prometheus_round_trips(capsys):
    from repro.telemetry import parse_prometheus_text

    assert main(["--requests", "10", "trace", "--format",
                 "prometheus"]) == 0
    series = parse_prometheus_text(capsys.readouterr().out)
    assert any(key.startswith("request_latency_us_bucket")
               for key in series)
    assert any(key.startswith("replicator_requests_total")
               for key in series)


def test_trace_command_csv(capsys):
    import csv
    import io

    assert main(["--requests", "5", "trace", "--format", "csv",
                 "--style", "warm_passive"]) == 0
    rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
    assert rows
    assert {"trace_id", "span_id", "component"} <= set(rows[0])


def test_trace_command_usage_errors_exit_2(capsys):
    assert main(["--requests", "0", "trace"]) == 2
    assert "must be >= 1" in capsys.readouterr().err
    assert main(["trace", "--replicas", "0"]) == 2
    assert main(["trace", "--clients", "-1"]) == 2
    with pytest.raises(SystemExit) as excinfo:
        main(["trace", "--format", "yaml"])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit) as excinfo:
        main(["trace", "--style", "bogus"])
    assert excinfo.value.code == 2


def test_campaign_telemetry_flag_attaches_summaries(tmp_path, capsys):
    import json

    spec = _write_campaign_spec(tmp_path)
    results = tmp_path / "out.jsonl"
    assert main(["campaign", str(spec), "--results", str(results),
                 "--telemetry", "--quiet"]) == 0
    capsys.readouterr()
    records = [json.loads(line)
               for line in results.read_text().splitlines()]
    assert all("telemetry" in r["metrics"] for r in records
               if r["status"] == "ok")
    digest = records[0]["metrics"]["telemetry"]
    assert digest["dropped"] == 0
    assert "breakdown_us" in digest


def _write_journal(tmp_path):
    from repro.journal import Journal, write_jsonl

    journal = Journal()
    journal.record(100.0, "net", "injector", "fault.inject",
                   fault="process_crash", target="svc-r2",
                   at_us=100.0, until_us=None)
    journal.record(400.0, "s01", "gcs", "membership.view",
                   group="svc", view_id=2, members=["svc-r1#1@s01"],
                   joined=[], left=["svc-r2#2@s02"], crashed=False)
    path = tmp_path / "run.journal.jsonl"
    write_jsonl(journal.events, str(path))
    return path


def test_observe_command_renders_summary_and_timeline(tmp_path, capsys):
    path = _write_journal(tmp_path)
    assert main(["observe", str(path)]) == 0
    out = capsys.readouterr().out
    assert "availability" in out
    assert "MTTR" in out
    assert "process_crash" in out
    assert "GROUP" in out  # the membership.view timeline line


def test_observe_command_kind_filter_and_limit(tmp_path, capsys):
    path = _write_journal(tmp_path)
    assert main(["observe", str(path), "--kind", "fault.inject",
                 "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "FAULT" in out
    assert "GROUP" not in out


def test_observe_command_writes_html(tmp_path, capsys):
    path = _write_journal(tmp_path)
    html_path = tmp_path / "report.html"
    assert main(["observe", str(path), "--no-timeline", "--html",
                 str(html_path)]) == 0
    text = html_path.read_text()
    assert text.startswith("<!DOCTYPE html>")
    assert "Injected faults vs detection" in text


def test_observe_command_rejects_missing_file(tmp_path, capsys):
    assert main(["observe", str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_observe_command_rejects_corrupt_file(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    assert main(["observe", str(path)]) == 2


def test_observe_command_empty_journal_exits_1(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert main(["observe", str(path)]) == 1


def test_campaign_journal_flag_captures_per_trial_jsonl(tmp_path, capsys):
    import json

    from repro.journal import read_jsonl

    spec = _write_campaign_spec(tmp_path)
    results = tmp_path / "out.jsonl"
    journal_dir = tmp_path / "journals"
    assert main(["campaign", str(spec), "--results", str(results),
                 "--journal", str(journal_dir), "--quiet"]) == 0
    capsys.readouterr()
    records = [json.loads(line)
               for line in results.read_text().splitlines()]
    assert all("journal" in r["metrics"] for r in records
               if r["status"] == "ok")
    for record in records:
        events = read_jsonl(str(journal_dir /
                                f"{record['trial_id']}.journal.jsonl"))
        assert len(events) == record["metrics"]["journal"]["events"]
    crash = next(r for r in records if "process_crash" in r["trial_id"])
    digest = crash["metrics"]["journal"]
    assert digest["faults_injected"] == 1
    assert digest["faults_matched"] + digest["faults_missed"] == 1


def test_bench_usage_errors_exit_2(tmp_path, capsys):
    missing = tmp_path / "nope"
    assert main(["bench", "--quick", "--out-dir", str(missing)]) == 2
    assert "not a directory" in capsys.readouterr().err
    assert main(["bench", "--profile", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "unknown profile(s): bogus" in err
    assert "available profiles:" in err
    assert "snapshot" in err


def test_bench_list_enumerates_profiles(capsys):
    from repro.bench import PROFILE_NAMES

    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "available profiles:" in out
    for name in PROFILE_NAMES:
        assert name in out


def test_observe_usage_errors_exit_2(tmp_path, capsys):
    journal = _write_journal(tmp_path)
    assert main(["observe", str(journal), "--limit", "0"]) == 2
    assert "must be >= 1" in capsys.readouterr().err
    with pytest.raises(SystemExit) as excinfo:
        main(["observe", str(journal), "--format", "yaml"])
    assert excinfo.value.code == 2


def test_check_usage_errors_exit_2(tmp_path, capsys):
    assert main(["check", "--budget", "0"]) == 2
    assert "must be >= 1" in capsys.readouterr().err
    assert main(["check", "--tie-choices", "0"]) == 2
    assert main(["check", "--delay-bound", "-1"]) == 2
    assert main(["check", "--mutation", "bogus"]) == 2
    assert "unknown --mutation" in capsys.readouterr().err
    missing = tmp_path / "missing.json"
    assert main(["check", "--replay", str(missing)]) == 2
    assert "cannot load" in capsys.readouterr().err
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json")
    assert main(["check", "--replay", str(corrupt)]) == 2
    with pytest.raises(SystemExit) as excinfo:
        main(["check", "--replay", str(missing), "--minimize",
              str(missing)])
    assert excinfo.value.code == 2  # mutually exclusive modes


def test_check_explore_clean_exits_0(capsys):
    assert main(["check", "--explore", "--budget", "2"]) == 0
    out = capsys.readouterr().out
    assert "explored 2 schedules" in out
    assert "verdict: PASS" in out


def test_check_explore_mutation_writes_replayable_artifact(tmp_path,
                                                          capsys):
    artifact = tmp_path / "viol" / "repro.json"
    assert main(["check", "--explore", "--budget", "10",
                 "--mutation", "skip_final_checkpoint",
                 "--artifact", str(artifact)]) == 1
    out = capsys.readouterr().out
    assert "verdict: FAIL" in out
    assert artifact.exists()

    assert main(["check", "--replay", str(artifact)]) == 0
    assert "REPRODUCED" in capsys.readouterr().out


def test_campaign_check_flag_attaches_verdicts(tmp_path, capsys):
    import json

    spec = _write_campaign_spec(tmp_path)
    results = tmp_path / "out.jsonl"
    assert main(["campaign", str(spec), "--results", str(results),
                 "--check", "--quiet"]) == 0
    capsys.readouterr()
    records = [json.loads(line)
               for line in results.read_text().splitlines()]
    assert records
    for record in records:
        if record["status"] != "ok":
            continue
        verdict = record["metrics"]["check"]
        assert verdict["ok"] is True
        assert verdict["operations"] > 0


def test_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    for name in ("breakdown", "profile", "policy", "adaptive",
                 "campaign", "trace", "observe", "bench", "check",
                 "cluster", "report", "verify"):
        assert name in out


def test_cluster_route_command(capsys):
    assert main(["cluster", "route", "counter", "payments",
                 "--shards", "3"]) == 0
    out = capsys.readouterr().out
    assert "counter" in out and "payments" in out
    assert "-> shard" in out


def test_cluster_route_rejects_bad_shards(capsys):
    assert main(["cluster", "route", "k", "--shards", "0"]) == 2
    assert "--shards must be >= 1" in capsys.readouterr().err


def test_cluster_summary_command(capsys):
    assert main(["cluster", "summary", "--shards", "2",
                 "--clients", "2", "--cycle", "5"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "shard0" in out and "shard1" in out
    assert "active" in out and "warm_passive" in out


def test_cluster_rebalance_command(capsys):
    assert main(["cluster", "rebalance", "--cycle", "8"]) == 0
    out = capsys.readouterr().out
    assert "migration(s) committed" in out
    assert "verdict: OK" in out


def test_cluster_rebalance_rejects_single_shard(capsys):
    assert main(["cluster", "rebalance", "--shards", "1"]) == 2
    assert "--shards >= 2" in capsys.readouterr().err


def test_cluster_replay_command(tmp_path, capsys):
    from repro.cluster import run_cluster_rebalance_check
    from repro.journal.io import write_jsonl

    out_path = tmp_path / "cluster.journal.jsonl"
    outcome = run_cluster_rebalance_check(n_requests=8)
    write_jsonl(outcome.journal_events, str(out_path))
    assert main(["cluster", "replay", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "cluster event(s)" in out
    assert "migrate.start" in out
    assert "map" in out


def test_cluster_replay_rejects_missing_file(tmp_path, capsys):
    assert main(["cluster", "replay",
                 str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_bench_profile_choices_include_cluster():
    parser = build_parser()
    args = parser.parse_args(["bench", "--quick",
                              "--profile", "cluster"])
    assert args.profile == ["cluster"]
