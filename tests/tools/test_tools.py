"""Tests for the trace-timeline and export tools."""

import pytest

from repro.core import ConfigPoint, Measurement, Profile, ScalabilityPolicy
from repro.replication import ReplicationStyle
from repro.sim import TraceLog
from repro.tools import (
    DEFAULT_CATEGORIES,
    policy_to_csv,
    profile_to_csv,
    render_series,
    render_timeline,
    series_to_csv,
    summarize_trace,
)


@pytest.fixture
def trace():
    log = TraceLog()
    log.record(100_000.0, "host.crash", "host s02 crashed")
    log.record(450_000.0, "gcs.suspect", "suspecting ['s02']")
    log.record(500_000.0, "gcs.install", "installed daemon view 1")
    log.record(600_000.0, "repl.switch", "step III: switched to active")
    log.record(700_000.0, "adapt.switch", "rate 900 -> switching")
    log.record(800_000.0, "net.drop", "frame lost")  # not in defaults
    return log


class TestTimeline:
    def test_renders_selected_categories_in_time_order(self, trace):
        text = render_timeline(trace)
        lines = text.splitlines()
        assert len(lines) == 5  # net.drop excluded
        assert "FAULT" in lines[0]
        assert "SWITCH" in lines[3]
        times = [float(line.split("s]")[0].strip("[ "))
                 for line in lines]
        assert times == sorted(times)

    def test_since_filter(self, trace):
        text = render_timeline(trace, since_us=550_000.0)
        assert "crashed" not in text
        assert "switched" in text

    def test_limit(self, trace):
        text = render_timeline(trace, limit=2)
        assert len(text.splitlines()) == 2

    def test_custom_categories(self, trace):
        text = render_timeline(trace, categories=[("net.drop", "DROP")])
        assert text.splitlines() == [text]  # single line
        assert "DROP" in text

    def test_summary_counters(self, trace):
        summary = summarize_trace(trace)
        assert summary["host_crashes"] == 1
        assert summary["daemon_view_changes"] == 1
        assert summary["style_switches"] == 1
        assert summary["adaptations"] == 1


class TestSeries:
    def test_bars_scale_to_peak(self):
        text = render_series([(0.0, 10.0), (1e6, 100.0)], width=10)
        lines = text.splitlines()
        assert lines[0].startswith("value (peak 100.0)")
        assert lines[1].count("#") == 1
        assert lines[2].count("#") == 10

    def test_empty_series(self):
        assert render_series([]) == "(empty series)"

    def test_zero_peak(self):
        text = render_series([(0.0, 0.0)])
        assert "|" in text


class TestCsvExport:
    def _profile(self):
        return Profile([
            Measurement(config=ConfigPoint(ReplicationStyle.ACTIVE, 3),
                        n_clients=1, latency_us=1200.0, jitter_us=10.0,
                        bandwidth_mbps=1.5, throughput_per_s=800.0),
            Measurement(config=ConfigPoint(
                ReplicationStyle.WARM_PASSIVE, 2),
                n_clients=1, latency_us=2000.0, jitter_us=50.0,
                bandwidth_mbps=0.9, throughput_per_s=480.0),
        ])

    def test_profile_csv_roundtrippable(self):
        import csv as csv_module
        import io
        text = profile_to_csv(self._profile())
        rows = list(csv_module.reader(io.StringIO(text)))
        assert rows[0][0] == "style"
        assert len(rows) == 3
        assert rows[1][0] == "active"
        assert float(rows[1][3]) == 1200.0

    def test_profile_csv_writes_to_stream(self, tmp_path):
        target = tmp_path / "profile.csv"
        with open(target, "w") as handle:
            profile_to_csv(self._profile(), out=handle)
        assert target.read_text().startswith("style,")

    def test_policy_csv(self):
        policy = ScalabilityPolicy.synthesize(self._profile())
        text = policy_to_csv(policy)
        lines = text.strip().splitlines()
        assert lines[0].startswith("n_clients,")
        assert len(lines) == 2  # one feasible load profiled
        assert "A(3)" in lines[1]

    def test_series_csv(self):
        text = series_to_csv([(0, 1.5), (1, 2.5)], header=("t", "v"))
        assert text.strip().splitlines() == ["t,v", "0,1.5", "1,2.5"]


class TestTelemetryCategories:
    def test_telemetry_drop_is_a_default_category(self):
        assert ("telemetry.drop", "TELEM") in DEFAULT_CATEGORIES

    def test_drop_record_renders_in_timeline(self):
        log = TraceLog()
        log.record(250_000.0, "telemetry.drop",
                   "span capacity 10 reached; dropping further spans")
        text = render_timeline(log)
        assert "TELEM" in text
        assert "span capacity" in text

    def test_series_renders_telemetry_quantiles(self):
        # The ASCII chart is format-agnostic; feed it p99 samples the
        # way `AdaptationManager.telemetry_samples` stores them.
        samples = [(0.0, 200.0, 1.0), (1e6, 400.0, 3.0)]
        text = render_series([(t, p99) for t, p99, _ in samples],
                             label="service p99 [us]")
        assert "service p99" in text
        assert text.count("|") == 2
