"""Tests for load profiles and workload drivers."""

import pytest

from repro.errors import ConfigurationError
from repro.replication import ReplicationStyle
from repro.workload import (
    ClosedLoopClient,
    ConstantRate,
    OpenLoopClient,
    RampProfile,
    SpikeProfile,
    StepProfile,
)
from tests.replication.helpers import build_rig


class TestProfiles:
    def test_constant(self):
        profile = ConstantRate(100.0)
        assert profile.rate_at(0) == 100.0
        assert profile.rate_at(1e9) == 100.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantRate(-1.0)

    def test_step_profile(self):
        profile = StepProfile([(0.0, 10.0), (1000.0, 50.0),
                               (2000.0, 20.0)])
        assert profile.rate_at(500.0) == 10.0
        assert profile.rate_at(1000.0) == 50.0
        assert profile.rate_at(5000.0) == 20.0

    def test_step_profile_implicit_zero_start(self):
        profile = StepProfile([(1000.0, 50.0)])
        assert profile.rate_at(0.0) == 0.0

    def test_step_profile_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            StepProfile([])

    def test_ramp(self):
        profile = RampProfile(start_rate=0.0, end_rate=100.0,
                              duration_us=1000.0)
        assert profile.rate_at(0.0) == 0.0
        assert profile.rate_at(500.0) == pytest.approx(50.0)
        assert profile.rate_at(5000.0) == 100.0

    def test_spike(self):
        profile = SpikeProfile(base_rate=10.0, spike_rate=100.0,
                               spike_start_us=1000.0, spike_end_us=2000.0)
        assert profile.rate_at(500.0) == 10.0
        assert profile.rate_at(1500.0) == 100.0
        assert profile.rate_at(2500.0) == 10.0

    def test_spike_validates_window(self):
        with pytest.raises(ConfigurationError):
            SpikeProfile(10.0, 100.0, 2000.0, 1000.0)

    def test_peak(self):
        profile = SpikeProfile(base_rate=10.0, spike_rate=100.0,
                               spike_start_us=1000.0,
                               spike_end_us=50_000.0)
        assert profile.peak(100_000.0) == 100.0


class TestClosedLoop:
    def test_completes_requested_cycle(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        loader = ClosedLoopClient(clients[0], 20)
        loader.start()
        testbed.run(60_000_000)
        assert loader.done
        assert loader.stats.completed == 20
        assert len(loader.stats.latencies_us) == 20

    def test_latency_stats(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        loader = ClosedLoopClient(clients[0], 10)
        loader.start()
        testbed.run(60_000_000)
        assert loader.stats.mean_latency_us > 0
        assert loader.stats.jitter_us >= 0

    def test_pipelines_one_at_a_time(self):
        """Closed loop means at most one outstanding request."""
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        loader = ClosedLoopClient(clients[0], 5)
        loader.start()
        testbed.run(3_000)
        assert clients[0].replicator.outstanding_count <= 1

    def test_cannot_start_twice(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        loader = ClosedLoopClient(clients[0], 5)
        loader.start()
        with pytest.raises(ConfigurationError):
            loader.start()

    def test_dies_with_process(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        loader = ClosedLoopClient(clients[0], 1000)
        loader.start()
        testbed.run(100_000)
        clients[0].process.kill()
        done_at_kill = loader.stats.completed
        testbed.run(5_000_000)
        assert loader.stats.completed == done_at_kill

    def test_invalid_count(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        with pytest.raises(ConfigurationError):
            ClosedLoopClient(clients[0], 0)


class TestOpenLoop:
    def test_sends_at_configured_rate(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        loader = OpenLoopClient(clients[0], ConstantRate(500.0),
                                duration_us=2_000_000)
        loader.start()
        testbed.run(2_500_000)
        # ~500 req/s for 2 s -> about 1000 requests.
        assert 900 <= loader.stats.sent <= 1100

    def test_stops_after_duration(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        loader = OpenLoopClient(clients[0], ConstantRate(200.0),
                                duration_us=1_000_000)
        loader.start()
        testbed.run(5_000_000)
        sent_then = loader.stats.sent
        testbed.run(2_000_000)
        assert loader.stats.sent == sent_then

    def test_poisson_arrivals_rate_close(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE,
                                               seed=5)
        loader = OpenLoopClient(clients[0], ConstantRate(500.0),
                                duration_us=2_000_000, poisson=True)
        loader.start()
        testbed.run(3_000_000)
        assert 750 <= loader.stats.sent <= 1250

    def test_zero_rate_sends_nothing(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        loader = OpenLoopClient(clients[0], ConstantRate(0.0),
                                duration_us=1_000_000)
        loader.start()
        testbed.run(2_000_000)
        assert loader.stats.sent == 0

    def test_invalid_duration(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        with pytest.raises(ConfigurationError):
            OpenLoopClient(clients[0], ConstantRate(10.0), duration_us=0)
