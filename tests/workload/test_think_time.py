"""Unit tests for the think-time (closed-loop, rate-profiled) client."""

import pytest

from repro.errors import ConfigurationError
from repro.replication import ReplicationStyle
from repro.workload import ConstantRate, SpikeProfile, ThinkTimeClient
from tests.replication.helpers import build_rig


def test_observed_rate_tracks_profile_when_latency_small():
    """With think time >> latency, the observed rate approaches the
    profile rate."""
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    loader = ThinkTimeClient(clients[0], ConstantRate(50.0),
                             duration_us=2_000_000)
    loader.start()
    testbed.run(3_000_000)
    observed = loader.stats.completed / 2.0  # per second
    assert observed == pytest.approx(50.0, rel=0.15)


def test_observed_rate_throttled_by_latency():
    """With think time << latency, the loop is latency-bound: the
    observed rate is ~1/latency regardless of the offered rate."""
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    loader = ThinkTimeClient(clients[0], ConstantRate(5000.0),
                             duration_us=2_000_000)
    loader.start()
    testbed.run(4_000_000)
    latency = loader.stats.mean_latency_us
    expected_rate = 1e6 / (latency + 200.0)  # think = 200 us at 5000/s
    observed = loader.stats.completed / (2.0 + latency / 1e6)
    assert observed == pytest.approx(expected_rate, rel=0.2)


def test_never_more_than_one_outstanding():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    loader = ThinkTimeClient(clients[0], ConstantRate(1000.0),
                             duration_us=500_000)
    loader.start()
    for _ in range(20):
        testbed.run(20_000)
        assert clients[0].replicator.outstanding_count <= 1


def test_stops_after_duration():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    loader = ThinkTimeClient(clients[0], ConstantRate(200.0),
                             duration_us=1_000_000)
    loader.start()
    testbed.run(3_000_000)
    sent = loader.stats.sent
    testbed.run(2_000_000)
    assert loader.stats.sent == sent
    assert loader.stats.completed == sent


def test_spike_profile_changes_pace():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    profile = SpikeProfile(base_rate=20.0, spike_rate=400.0,
                           spike_start_us=1_000_000,
                           spike_end_us=2_000_000)
    loader = ThinkTimeClient(clients[0], profile, duration_us=3_000_000)
    loader.start()
    testbed.run(4_000_000)
    times = loader.stats.completion_times
    in_spike = sum(1 for t in times if 1_000_000 <= t - times[0]
                   <= 2_000_000)
    outside = len(times) - in_spike
    assert in_spike > outside


def test_cannot_start_twice():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    loader = ThinkTimeClient(clients[0], ConstantRate(10.0),
                             duration_us=1_000_000)
    loader.start()
    with pytest.raises(ConfigurationError):
        loader.start()


def test_invalid_duration():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    with pytest.raises(ConfigurationError):
        ThinkTimeClient(clients[0], ConstantRate(10.0), duration_us=0)


def test_zero_rate_phase_idles_then_resumes():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    from repro.workload import StepProfile
    profile = StepProfile([(0.0, 100.0), (500_000.0, 0.0),
                           (1_500_000.0, 100.0)])
    loader = ThinkTimeClient(clients[0], profile, duration_us=2_500_000)
    loader.start()
    testbed.run(4_000_000)
    times = [t - loader.started_at for t in loader.stats.completion_times]
    quiet = [t for t in times if 600_000 < t < 1_400_000]
    busy_late = [t for t in times if t > 1_600_000]
    assert len(quiet) <= 2  # at most stragglers in the quiet window
    assert busy_late  # traffic resumed
