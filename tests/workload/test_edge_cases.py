"""Edge cases for the workload drivers.

Zero-rate profile segments, profiles that run out before the client
does, and closed-loop clients caught by a shard migration mid-cycle.
"""

import pytest

from repro.cluster import ShardSpec, deploy_cluster, deploy_cluster_client
from repro.errors import ConfigurationError
from repro.experiments.testbed import Testbed
from repro.orb import CounterServant
from repro.replication import ReplicationStyle
from repro.workload import (
    ClosedLoopClient,
    ConstantRate,
    OpenLoopClient,
    StepProfile,
)
from tests.replication.helpers import build_rig


class TestZeroRateSegments:
    def test_open_loop_idles_through_a_zero_rate_window(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        profile = StepProfile([(0.0, 200.0), (200_000.0, 0.0),
                               (600_000.0, 200.0)])
        loader = OpenLoopClient(clients[0], profile,
                                duration_us=1_000_000)
        start = testbed.sim.now
        loader.start()
        testbed.run(2_000_000)
        assert loader.stats.sent > 0
        # No arrival fires inside the zero-rate window.  The bound is
        # strict: one last arrival scheduled just before the boundary
        # (when the rate was still positive) may land exactly on it.
        gap = [t - start for t in loader.send_times
               if 200_000.0 < t - start < 600_000.0]
        assert gap == []
        resumed = [t - start for t in loader.send_times
                   if t - start >= 600_000.0]
        assert resumed  # arrivals resume after the window
        assert loader.stats.completed == loader.stats.sent

    def test_open_loop_profile_starting_at_zero_eventually_sends(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        # An implicit (0, 0.0) leading segment: nothing until 300 ms.
        profile = StepProfile([(300_000.0, 400.0)])
        loader = OpenLoopClient(clients[0], profile,
                                duration_us=800_000)
        start = testbed.sim.now
        loader.start()
        testbed.run(1_500_000)
        assert loader.stats.sent > 0
        assert min(loader.send_times) - start >= 300_000.0


class TestProfileExhaustion:
    def test_step_profile_holds_last_rate_past_its_steps(self):
        profile = StepProfile([(0.0, 100.0), (100_000.0, 40.0)])
        assert profile.rate_at(10_000_000.0) == 40.0

    def test_duration_expiring_during_idle_phase_stops_cleanly(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        # Rate drops to zero before the duration ends: the client is
        # in its idle re-check loop when the run expires, and must not
        # keep polling (or sending) afterwards.
        profile = StepProfile([(0.0, 300.0), (150_000.0, 0.0)])
        loader = OpenLoopClient(clients[0], profile,
                                duration_us=400_000)
        loader.start()
        testbed.run(1_000_000)
        sent_then = loader.stats.sent
        testbed.run(5_000_000)
        assert loader.stats.sent == sent_then
        assert loader.stats.completed == sent_then

    def test_open_loop_mid_flight_requests_complete_after_duration(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        loader = OpenLoopClient(clients[0], ConstantRate(500.0),
                                duration_us=500_000)
        loader.start()
        testbed.run(5_000_000)
        # Arrivals stop at the deadline but replies still drain.
        assert loader.stats.completed == loader.stats.sent > 0


class TestClosedLoopAcrossMigration:
    def _cluster(self, seed=0):
        testbed = Testbed.paper_testbed(4, 1, seed=seed)
        specs = [ShardSpec(name="shard0", n_replicas=2,
                           hosts=("s01", "s02")),
                 ShardSpec(name="shard1", n_replicas=2,
                           hosts=("s03", "s04"))]
        keys = ["k0", "k1"]
        cluster = deploy_cluster(testbed, specs, keys,
                                 servant_factory=lambda k: CounterServant())
        stack = deploy_cluster_client(cluster, "w01")
        testbed.run(150_000)
        return testbed, cluster, stack, keys

    def test_cycle_survives_a_mid_run_shard_switch(self):
        testbed, cluster, stack, keys = self._cluster()
        loader = ClosedLoopClient(stack, 30, object_keys=keys,
                                  operation="add", payload=1)
        loader.start()
        testbed.run(20_000)
        # Move one key while the cycle is in flight.
        moved = cluster.coordinator.rebalance(keys[0], "shard1")
        assert moved is not None
        testbed.run(60_000_000)
        assert cluster.coordinator.migrations_committed == 1
        assert loader.done
        assert loader.stats.completed == 30
        assert len(loader.stats.latencies_us) == 30

    def test_round_robin_spreads_a_cycle_over_both_shards(self):
        testbed, cluster, stack, keys = self._cluster(seed=2)
        loader = ClosedLoopClient(stack, 10, object_keys=keys,
                                  operation="add", payload=1)
        loader.start()
        testbed.run(60_000_000)
        assert loader.done
        # Request i targeted keys[i % 2]: each counter took 5 adds.
        for shard, key in (("shard0", "k0"), ("shard1", "k1")):
            primary = cluster.shards[shard].primary_replica
            assert primary.orb_server.servant(key).value == 5

    def test_object_keys_must_be_non_empty(self):
        testbed, cluster, stack, keys = self._cluster()
        with pytest.raises(ConfigurationError):
            ClosedLoopClient(stack, 5, object_keys=[])
