"""End-to-end telemetry tests across the replication stack.

The three system-level guarantees:

1. **Determinism** — simulated results are byte-identical with
   telemetry on or off (recording never schedules events).
2. **Accuracy** — the span-derived Fig. 3 breakdown matches the
   :class:`RequestTimeline` accounting within 5 %.
3. **Propagation invariants** — even under crashes and lost frames,
   spans are never orphaned or cross-wired (they may stay *open*).
"""

import pytest

from repro.experiments import run_fault_trial, run_replicated_load
from repro.orb import ALL_COMPONENTS
from repro.replication import ReplicationStyle
from repro.telemetry import (
    component_breakdown,
    completed_traces,
    critical_path,
    style_aggregates,
    validate_spans,
)

REQUESTS = 40


def _load(style=ReplicationStyle.ACTIVE, **kwargs):
    defaults = dict(n_replicas=1, n_clients=1, n_requests=REQUESTS,
                    seed=0)
    defaults.update(kwargs)
    return run_replicated_load(style, **defaults)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

@pytest.mark.parametrize("style", [ReplicationStyle.ACTIVE,
                                   ReplicationStyle.WARM_PASSIVE])
def test_results_identical_with_telemetry_on_or_off(style):
    off = _load(style, n_replicas=2, n_clients=2, telemetry=False)
    on = _load(style, n_replicas=2, n_clients=2, telemetry=True)
    assert off.telemetry is None
    assert on.telemetry is not None
    assert on.latency_mean_us == off.latency_mean_us
    assert on.jitter_us == off.jitter_us
    assert on.duration_us == off.duration_us
    assert on.completed == off.completed
    assert on.bandwidth_mbps == off.bandwidth_mbps


# ----------------------------------------------------------------------
# Accuracy: spans vs RequestTimeline (Fig. 3 cross-check)
# ----------------------------------------------------------------------

def test_span_breakdown_matches_timeline_within_5_percent():
    result = _load(keep_timelines=True, telemetry=True)
    from_spans = component_breakdown(result.telemetry.spans)
    for component in ALL_COMPONENTS:
        timeline_us = result.breakdown.get(component, 0.0)
        span_us = from_spans.get(component, 0.0)
        if timeline_us < 1.0:
            assert span_us < 1.0, component
        else:
            assert span_us == pytest.approx(timeline_us,
                                            rel=0.05), component


def test_every_request_yields_one_completed_valid_trace():
    result = _load(telemetry=True)
    recorder = result.telemetry
    assert recorder.dropped == 0
    assert recorder.open_spans == 0
    assert len(completed_traces(recorder.spans)) == result.completed
    assert validate_spans(recorder.spans) == []


def test_critical_path_covers_most_of_the_round_trip():
    result = _load(telemetry=True)
    for trace_spans in completed_traces(result.telemetry.spans).values():
        root = next(s for s in trace_spans if s.is_root)
        path = critical_path(trace_spans)
        busy = sum(seg.duration_us for seg in path)
        gaps = sum(seg.gap_us for seg in path)
        # Leaves plus surfaced gaps account for the full round trip
        # (the only untracked remainder is the tail after the last
        # leaf, i.e. the client accept already being a leaf -> ~0).
        assert busy + gaps <= root.duration_us + 1e-6
        assert busy > 0.5 * root.duration_us


def test_style_attribute_reaches_server_spans():
    result = _load(ReplicationStyle.WARM_PASSIVE, telemetry=True)
    aggregates = style_aggregates(result.telemetry.spans)
    assert "warm_passive" in aggregates
    assert aggregates["warm_passive"]["server.process"].count > 0


# ----------------------------------------------------------------------
# Metrics flow into monitoring snapshots
# ----------------------------------------------------------------------

def test_registry_feeds_metrics_snapshot():
    from repro.monitoring.sensors import MetricsHub

    result = _load(ReplicationStyle.WARM_PASSIVE, n_replicas=2,
                   telemetry=True, n_requests=30)

    class _StoppedSim:
        now = 0.0
        telemetry = result.telemetry

    # A hub around the run's recorder picks up the registry-derived
    # snapshot fields (no live sim needed for those).
    hub = MetricsHub(_StoppedSim())
    snapshot = hub.snapshot()
    assert snapshot.latency_p50_us > 0.0
    assert snapshot.latency_p99_us >= snapshot.latency_p50_us
    assert snapshot.checkpoint_bytes > 0.0
    assert "latency_p99_us" in snapshot.as_dict()
    # Latency quantiles agree with the client-observed mean's scale.
    assert (0.25 * result.latency_mean_us
            < snapshot.latency_p50_us
            < 4.0 * result.latency_mean_us)


def test_server_counters_count_requests():
    result = _load(ReplicationStyle.WARM_PASSIVE, n_replicas=2,
                   telemetry=True)
    registry = result.telemetry.metrics
    total = sum(metric.value for _, metric
                in registry.find("replicator_requests_total"))
    assert total == result.completed
    checkpoints = sum(metric.value for _, metric
                      in registry.find("replicator_checkpoints_total"))
    assert checkpoints > 0


# ----------------------------------------------------------------------
# Propagation invariants under fault injection
# ----------------------------------------------------------------------

def _trial(inject=None, style=ReplicationStyle.ACTIVE, **kwargs):
    defaults = dict(n_replicas=2, n_clients=1, duration_us=300_000.0,
                    rate_per_s=100.0, seed=1, settle_us=400_000.0,
                    telemetry=True)
    defaults.update(kwargs)
    return run_fault_trial(style, inject=inject, **defaults)


def test_trace_invariants_hold_across_replica_crash():
    def crash_backup(ctx):
        ctx.injector.crash_process_at(ctx.replicas[1].process,
                                      ctx.t0 + 100_000.0)

    result = _trial(crash_backup)
    assert result.telemetry is not None
    assert result.telemetry["traces_completed"] >= result.completed
    # Crash mid-request leaves spans open at worst — never orphaned
    # or cross-wired (validated inside the worker-free trial run).


def test_trace_invariants_hold_under_lost_frames():
    def lossy(ctx):
        ctx.injector.loss_burst(ctx.t0 + 50_000.0, ctx.t0 + 150_000.0,
                                rate=0.4)

    result = _trial(lossy, style=ReplicationStyle.WARM_PASSIVE)
    summary = result.telemetry
    assert summary is not None
    assert summary["spans"] > 0
    assert summary["dropped"] == 0
    # Lost frames may leave transit spans open, but completed traces
    # still at least match completed requests.
    assert summary["traces_completed"] >= result.completed


def test_validate_spans_clean_after_crash_with_recorder_access():
    """Drive the testbed directly so the recorder is in hand, crash a
    replica mid-run, and assert the span-tree invariants."""
    from dataclasses import replace

    from repro.experiments.testbed import (
        Testbed, deploy_client, deploy_replica_group)
    from repro.faults import FaultInjector
    from repro.orb import BusyServant
    from repro.replication import (
        ClientReplicationConfig, ReplicationConfig)
    from repro.sim import default_calibration
    from repro.workload import ClosedLoopClient

    base = default_calibration()
    calibration = replace(base,
                          telemetry=replace(base.telemetry, enabled=True))
    testbed = Testbed.paper_testbed(2, 1, seed=3, calibration=calibration)
    config = ReplicationConfig(style=ReplicationStyle.ACTIVE, group="svc")
    servants = {"bench": lambda: BusyServant(processing_us=15,
                                             reply_bytes=128,
                                             state_bytes=1024)}
    replicas = deploy_replica_group(testbed, ["s01", "s02"], config,
                                    servants)
    stack = deploy_client(testbed, "w01",
                          ClientReplicationConfig(group="svc"))
    testbed.run(150_000)

    injector = FaultInjector(testbed.sim, testbed.network)
    injector.crash_process_at(replicas[1].process, testbed.now + 20_000.0)
    injector.loss_burst(testbed.now + 10_000.0, testbed.now + 60_000.0,
                        rate=0.3)
    loader = ClosedLoopClient(stack, 30, object_key="bench")
    loader.start()
    testbed.run(3_000_000)

    recorder = testbed.sim.telemetry
    assert recorder.enabled
    assert len(recorder.spans) > 0
    # The hard invariants: no orphans, no cross-wiring, children
    # inside parents — even though some spans stay open.
    assert validate_spans(recorder.spans) == []
    # Completed requests closed their root span.
    assert len(completed_traces(recorder.spans)) >= loader.stats.completed


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------

def test_trial_record_gains_telemetry_key_only_when_enabled():
    from repro.experiments.trial import run_fault_trial

    plain = run_fault_trial(ReplicationStyle.ACTIVE, n_replicas=1,
                            n_clients=1, duration_us=100_000.0,
                            rate_per_s=50.0, seed=0,
                            settle_us=200_000.0)
    traced = run_fault_trial(ReplicationStyle.ACTIVE, n_replicas=1,
                             n_clients=1, duration_us=100_000.0,
                             rate_per_s=50.0, seed=0,
                             settle_us=200_000.0, telemetry=True)
    assert "telemetry" not in plain.metrics()
    digest = traced.metrics()["telemetry"]
    assert digest["traces_completed"] == traced.completed
    assert digest["dropped"] == 0
    # Default records stay byte-identical to pre-telemetry trials.
    without = {k: v for k, v in traced.metrics().items()
               if k != "telemetry"}
    assert without == plain.metrics()


def test_adaptation_manager_samples_telemetry():
    from dataclasses import replace

    from repro.adaptation import AdaptationManager
    from repro.core import ThresholdSwitchPolicy
    from repro.experiments import (
        Testbed, deploy_client, deploy_replica_group)
    from repro.orb import BusyServant
    from repro.replication import (
        ClientReplicationConfig, ReplicationConfig)
    from repro.sim import default_calibration
    from repro.workload import ClosedLoopClient

    base = default_calibration()
    calibration = replace(base,
                          telemetry=replace(base.telemetry, enabled=True))
    testbed = Testbed.paper_testbed(2, 1, seed=0, calibration=calibration)
    config = ReplicationConfig(style=ReplicationStyle.ACTIVE, group="svc")
    replicas = deploy_replica_group(
        testbed, ["s01", "s02"], config,
        {"bench": lambda: BusyServant(processing_us=15, reply_bytes=128,
                                      state_bytes=1024)})
    policy = ThresholdSwitchPolicy(rate_high_per_s=1e9, rate_low_per_s=0)
    managers = [AdaptationManager(r.replicator, policy) for r in replicas]
    stack = deploy_client(testbed, "w01",
                          ClientReplicationConfig(group="svc"))
    testbed.run(150_000)
    loader = ClosedLoopClient(stack, 30, object_key="bench")
    loader.start()
    testbed.run(2_000_000)

    samples = managers[0].telemetry_samples
    assert samples, "manager recorded no telemetry samples"
    assert any(p99 > 0.0 for _, p99, _ in samples)
    # Local observation only: the replicated monitoring state carries
    # the rate key and nothing telemetry-derived (determinism).
    assert managers[0].state.values_matching("rate")
    published = managers[0].state.own_keys() \
        if hasattr(managers[0].state, "own_keys") else None
    if published is not None:
        assert all("telemetry" not in key for key in published)
