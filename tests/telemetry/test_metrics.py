"""Unit tests for the metrics registry."""

import pytest

from repro.telemetry import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_counts_up(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(bounds=(10.0, 100.0))
        for value in (5, 10, 50, 1000):
            h.observe(value)
        # <=10, <=100, +Inf
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == 1065.0
        assert h.mean == pytest.approx(266.25)

    def test_requires_sorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(100.0, 10.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_quantile_interpolates(self):
        h = Histogram(bounds=(100.0, 200.0))
        for _ in range(10):
            h.observe(150.0)  # all in the (100, 200] bucket
        # Rank interpolation within the bucket: p50 lands mid-bucket.
        assert h.quantile(0.5) == pytest.approx(150.0)
        assert 100.0 < h.quantile(0.01) <= h.quantile(0.99) <= 200.0

    def test_quantile_overflow_clamps_to_last_bound(self):
        h = Histogram(bounds=(10.0,))
        h.observe(1e9)
        assert h.quantile(0.99) == 10.0

    def test_quantile_empty_and_bad_q(self):
        h = Histogram(bounds=(10.0,))
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_merge_adds_counts(self):
        a = Histogram(bounds=(10.0, 100.0))
        b = Histogram(bounds=(10.0, 100.0))
        a.observe(5)
        b.observe(50)
        b.observe(500)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.sum == 555.0

    def test_merge_rejects_different_bounds(self):
        populated = Histogram(bounds=(20.0,))
        populated.observe(5)
        target = Histogram(bounds=(10.0,))
        target.observe(5)
        with pytest.raises(ValueError):
            target.merge(populated)

    def test_merge_empty_histogram_is_noop(self):
        # An unpopulated instrument carries no information, so it
        # merges into anything — even with mismatched bounds.
        target = Histogram(bounds=(10.0,))
        target.observe(5)
        target.merge(Histogram(bounds=(20.0,)))
        assert target.count == 1
        assert target.bounds == (10.0,)

    def test_empty_histogram_adopts_bounds_on_merge(self):
        populated = Histogram(bounds=(20.0, 40.0))
        populated.observe(30)
        target = Histogram(bounds=(10.0,))
        target.merge(populated)
        assert target.bounds == (20.0, 40.0)
        assert target.count == 1
        assert target.counts == [0, 1, 0]

    def test_single_sample_quantile_is_exact(self):
        h = Histogram(bounds=(100.0, 200.0))
        h.observe(137.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(137.0)

    def test_to_dict_round_trips_state(self):
        h = Histogram(bounds=(10.0,))
        h.observe(3)
        state = h.to_dict()
        assert state == {"bounds": [10.0], "counts": [1, 0],
                         "count": 1, "sum": 3.0}


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", host="h1")
        b = reg.counter("requests_total", host="h1")
        assert a is b
        assert len(reg) == 1

    def test_label_sets_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", host="h1").inc()
        reg.counter("requests_total", host="h2").inc(2)
        values = {labels["host"]: metric.value
                  for labels, metric in reg.find("requests_total")}
        assert values == {"h1": 1.0, "h2": 2.0}

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("")
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("1leading")

    def test_merged_histogram(self):
        reg = MetricsRegistry()
        reg.histogram("lat_us", bounds=(10.0, 100.0), host="h1").observe(5)
        reg.histogram("lat_us", bounds=(10.0, 100.0), host="h2").observe(50)
        merged = reg.merged_histogram("lat_us")
        assert merged.count == 2
        assert merged.counts == [1, 1, 0]
        assert reg.merged_histogram("absent") is None

    def test_as_dict_renders_labels(self):
        reg = MetricsRegistry()
        reg.counter("x_total", host="h1").inc()
        reg.gauge("depth").set(4)
        dump = reg.as_dict()
        assert dump["x_total{host=h1}"] == 1.0
        assert dump["depth"] == 4.0

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_US) == sorted(
            DEFAULT_LATENCY_BUCKETS_US)
        assert list(DEFAULT_BYTES_BUCKETS) == sorted(DEFAULT_BYTES_BUCKETS)
