"""Exporter round-trip tests (the acceptance gate for the formats)."""

import csv
import io

import pytest

from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    chrome_trace_json,
    parse_chrome_trace,
    parse_prometheus_text,
    prometheus_text,
    spans_to_csv,
    to_chrome_trace,
)


def _record_spans() -> Telemetry:
    t = Telemetry()
    ctx = t.start_trace("req-1", host="w01", process="client", now=0.0)
    span = t.begin(ctx, "marshal", "orb", host="w01", process="client",
                   now=0.0, operation="add")
    t.end(span, 12.5)
    t.emit(ctx, "redirect", "replicator", 12.5, 44.5, host="w01",
           process="client")
    t.begin(ctx, "dangling", "orb", now=50.0)  # stays open
    t.finish_trace(ctx, 100.0)
    return t


class TestChromeTrace:
    def test_round_trip(self):
        t = _record_spans()
        events = parse_chrome_trace(chrome_trace_json(t.spans))
        # Open spans are skipped; root + marshal + redirect survive.
        assert len(events) == 3
        by_name = {e["name"]: e for e in events}
        assert by_name["marshal"]["dur"] == 12.5
        assert by_name["marshal"]["cat"] == "orb"
        assert by_name["marshal"]["args"]["operation"] == "add"
        assert by_name["request"]["args"]["parent_id"] == 0
        assert all(e["ph"] == "X" for e in events)
        assert all(e["pid"] == "w01" for e in events)

    def test_envelope(self):
        document = to_chrome_trace(_record_spans().spans)
        assert document["displayTimeUnit"] == "ms"

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_chrome_trace("not json")
        with pytest.raises(ValueError):
            parse_chrome_trace("{}")
        with pytest.raises(ValueError):
            parse_chrome_trace('{"traceEvents": [{"name": "x"}]}')
        with pytest.raises(ValueError):
            parse_chrome_trace(
                '{"traceEvents": [{"name": "x", "ph": "X", "ts": 0,'
                ' "pid": "p", "tid": "t"}]}')  # complete event, no dur


class TestPrometheus:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("requests_total", host="h1").inc(3)
        reg.gauge("queue_depth", host="h1").set(2)
        hist = reg.histogram("latency_us", bounds=(100.0, 200.0), host="h1")
        hist.observe(50)
        hist.observe(150)
        hist.observe(500)
        return reg

    def test_round_trip(self):
        text = prometheus_text(self._registry())
        series = parse_prometheus_text(text)
        assert series['requests_total{host="h1"}'] == 3.0
        assert series['queue_depth{host="h1"}'] == 2.0
        # Buckets are cumulative, +Inf equals the count.
        assert series['latency_us_bucket{host="h1",le="100"}'] == 1.0
        assert series['latency_us_bucket{host="h1",le="200"}'] == 2.0
        assert series['latency_us_bucket{host="h1",le="+Inf"}'] == 3.0
        assert series['latency_us_count{host="h1"}'] == 3.0
        assert series['latency_us_sum{host="h1"}'] == 700.0

    def test_type_lines(self):
        text = prometheus_text(self._registry())
        assert "# TYPE requests_total counter" in text
        assert "# TYPE queue_depth gauge" in text
        assert "# TYPE latency_us histogram" in text

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("not a metric line at all!")
        with pytest.raises(ValueError):
            parse_prometheus_text("metric_name not_a_number")

    def test_parse_skips_comments_and_blanks(self):
        assert parse_prometheus_text("# HELP x\n\nx 1\n") == {"x": 1.0}


class TestCsv:
    def test_header_and_rows(self):
        t = _record_spans()
        rows = list(csv.DictReader(io.StringIO(spans_to_csv(t.spans))))
        assert len(rows) == 4  # open spans ARE exported (empty end)
        marshal = next(r for r in rows if r["name"] == "marshal")
        assert marshal["component"] == "orb"
        assert float(marshal["duration_us"]) == 12.5
        dangling = next(r for r in rows if r["name"] == "dangling")
        assert dangling["end_us"] == ""
        assert dangling["duration_us"] == ""
