"""Unit tests for the span recorder lifecycle."""

from repro.sim import NULL_TELEMETRY, Simulator
from repro.telemetry import Telemetry, TraceContext, spans_by_trace
from repro.telemetry.spans import KIND_CHARGED, KIND_MEASURED


def test_start_trace_opens_root():
    t = Telemetry()
    ctx = t.start_trace("req-1", host="w01", process="client", now=10.0)
    assert isinstance(ctx, TraceContext)
    assert ctx.trace_id == "req-1"
    assert ctx.root_id == ctx.span_id
    assert ctx.inflight == 0
    root = t.spans[0]
    assert root.is_root and not root.finished
    assert root.start_us == 10.0
    assert t.open_spans == 1


def test_begin_end_child_span():
    t = Telemetry()
    ctx = t.start_trace("req-1", now=0.0)
    span = t.begin(ctx, "marshal", "orb", now=5.0, operation="add")
    assert span.parent_id == ctx.root_id
    assert span.attrs == {"operation": "add"}
    assert span.kind == KIND_MEASURED
    t.end(span, 8.0)
    assert span.duration_us == 3.0
    t.end(span, 99.0)  # double-close is a no-op
    assert span.end_us == 8.0


def test_none_context_is_safe_everywhere():
    t = Telemetry()
    assert t.begin(None, "x", "orb") is None
    assert t.emit(None, "x", "orb", 0.0, 1.0) is None
    assert t.begin_transit(None, "x", "gcs", 0.0) == (None, None)
    assert t.finish_inflight(None, 1.0) is None
    assert t.finish_trace(None, 1.0) is None
    t.end(None, 1.0)
    assert len(t) == 0


def test_emit_records_closed_charged_span():
    t = Telemetry()
    ctx = t.start_trace("req-1", now=0.0)
    span = t.emit(ctx, "redirect", "replicator", 10.0, 42.0)
    assert span.finished and span.kind == KIND_CHARGED
    assert span.duration_us == 32.0
    assert t.open_spans == 1  # only the root stays open


def test_transit_round_trip():
    t = Telemetry()
    ctx = t.start_trace("req-1", now=0.0)
    span, carried = t.begin_transit(ctx, "gcs.request", "gcs", 100.0)
    assert carried.inflight == span.span_id
    assert carried.span_id == span.span_id  # hops nest under transit
    # Receiver-side hop span parents to the transit span.
    hop = t.begin(carried, "gcsd.process", "gcs", now=120.0)
    assert hop.parent_id == span.span_id
    t.end(hop, 140.0)
    closed = t.finish_inflight(carried, 150.0)
    assert closed is span and span.end_us == 150.0
    # First arrival wins: a second replica's close is a no-op.
    assert t.finish_inflight(carried, 200.0) is None
    assert span.end_us == 150.0
    back_at_root = carried.at_root()
    assert back_at_root.span_id == ctx.root_id
    assert back_at_root.inflight == 0


def test_finish_trace_closes_root():
    t = Telemetry()
    ctx = t.start_trace("req-1", now=0.0)
    root = t.finish_trace(ctx, 500.0)
    assert root.finished and root.duration_us == 500.0
    assert t.finish_trace(ctx, 600.0) is None
    assert t.open_spans == 0


def test_capacity_drop_counts_and_traces():
    from repro.sim.trace import TraceLog
    log = TraceLog()
    t = Telemetry(max_spans=2, trace=log)
    ctx = t.start_trace("req-1", now=0.0)
    t.begin(ctx, "a", "orb", now=1.0)
    assert t.begin(ctx, "b", "orb", now=2.0) is None  # over capacity
    assert t.start_trace("req-2", now=3.0) is None
    span, carried = t.begin_transit(ctx, "c", "gcs", 4.0)
    assert span is None
    assert carried is ctx  # context keeps propagating undisturbed
    assert t.dropped == 3
    assert len(t) == 2
    drops = log.query("telemetry.drop")
    assert len(drops) == 1  # the drop is traced once, not per span


def test_traces_grouping():
    t = Telemetry()
    a = t.start_trace("a", now=0.0)
    b = t.start_trace("b", now=0.0)
    t.begin(a, "x", "orb", now=1.0)
    grouped = t.traces()
    assert set(grouped) == {"a", "b"}
    assert len(grouped["a"]) == 2
    assert spans_by_trace(t.spans) == grouped
    assert b.trace_id == "b"


def test_null_telemetry_is_disabled_and_inert():
    sim = Simulator(seed=0)
    assert sim.telemetry is NULL_TELEMETRY
    assert not sim.telemetry.enabled
    assert getattr(sim.telemetry, "metrics", None) is None
