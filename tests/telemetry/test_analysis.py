"""Unit tests for trace analysis on hand-built span trees."""

import pytest

from repro.telemetry import (
    Telemetry,
    completed_traces,
    component_breakdown,
    critical_path,
    exclusive_durations,
    style_aggregates,
    telemetry_summary,
    trace_component_us,
    validate_spans,
)


def _toy_trace(t: Telemetry, trace_id: str = "req-1"):
    """One request: root > [orb 10us, transit 100us > hop 20us]."""
    ctx = t.start_trace(trace_id, host="w01", process="client", now=0.0)
    orb = t.begin(ctx, "marshal", "orb", now=0.0)
    t.end(orb, 10.0)
    transit, carried = t.begin_transit(ctx, "gcs.request",
                                       "group_communication", 10.0)
    hop = t.begin(carried, "gcsd.process", "group_communication",
                  now=40.0, style="active")
    t.end(hop, 60.0)
    t.finish_inflight(carried, 110.0)
    t.finish_trace(ctx, 110.0)
    return ctx, orb, transit, hop


def test_exclusive_durations_subtract_children():
    t = Telemetry()
    ctx, orb, transit, hop = _toy_trace(t)
    exclusive = exclusive_durations(t.spans)
    # Transit 100us minus the nested 20us hop.
    assert exclusive[transit.span_id] == pytest.approx(80.0)
    assert exclusive[hop.span_id] == pytest.approx(20.0)
    # Root 110us minus orb (10) + transit (100) = 0.
    assert exclusive[ctx.root_id] == pytest.approx(0.0)


def test_trace_component_us_skips_rootless_component():
    t = Telemetry()
    _toy_trace(t)
    per_component = trace_component_us(t.spans)
    # Root has NO component, so only the named layers appear and the
    # nested hop never double-counts its parent transit.
    assert per_component == {"orb": pytest.approx(10.0),
                             "group_communication": pytest.approx(100.0)}


def test_component_breakdown_averages_completed_traces_only():
    t = Telemetry()
    _toy_trace(t, "req-1")
    _toy_trace(t, "req-2")
    dangling = t.start_trace("req-3", now=0.0)  # never finished
    assert dangling is not None
    assert set(completed_traces(t.spans)) == {"req-1", "req-2"}
    breakdown = component_breakdown(t.spans)
    assert breakdown["orb"] == pytest.approx(10.0)
    assert breakdown["group_communication"] == pytest.approx(100.0)
    assert breakdown["application"] == 0.0


def test_critical_path_is_leaf_chain_with_gaps():
    t = Telemetry()
    _toy_trace(t)
    path = critical_path(t.spans)
    names = [segment.span.name for segment in path]
    # Leaves in time order; the transit span is a parent (hop nests
    # inside it) so it does not appear.
    assert names == ["marshal", "gcsd.process"]
    assert path[0].gap_us == 0.0
    # 30us of un-instrumented wire time between marshal end (10) and
    # the daemon hop start (40).
    assert path[1].gap_us == pytest.approx(30.0)


def test_style_aggregates_group_by_style_attr():
    t = Telemetry()
    _toy_trace(t)
    aggregates = style_aggregates(t.spans)
    assert aggregates["active"]["gcsd.process"].count == 1
    assert aggregates["active"]["gcsd.process"].mean_us == pytest.approx(20.0)
    assert "marshal" in aggregates["-"]


def test_validate_spans_clean_trace():
    t = Telemetry()
    _toy_trace(t)
    assert validate_spans(t.spans) == []


def test_validate_spans_flags_cross_wiring_and_escapes():
    from repro.telemetry import Span
    spans = [
        Span(span_id=1, trace_id="a", parent_id=0, name="root",
             component="", host="", process="", start_us=0.0, end_us=10.0),
        # Parent id 99 does not exist in trace "a".
        Span(span_id=2, trace_id="a", parent_id=99, name="lost",
             component="orb", host="", process="", start_us=1.0, end_us=2.0),
        # Child escapes its parent's interval.
        Span(span_id=3, trace_id="a", parent_id=1, name="late",
             component="orb", host="", process="", start_us=5.0, end_us=20.0),
        # Second root in trace "b" plus the real one.
        Span(span_id=4, trace_id="b", parent_id=0, name="root",
             component="", host="", process="", start_us=0.0, end_us=1.0),
        Span(span_id=5, trace_id="b", parent_id=0, name="root2",
             component="", host="", process="", start_us=0.0, end_us=1.0),
    ]
    problems = validate_spans(spans)
    assert any("cross-wired" in p for p in problems)
    assert any("escapes" in p for p in problems)
    assert any("2 root spans" in p for p in problems)


def test_validate_spans_allows_children_outliving_transit_parents():
    """First-arrival-wins closes a transit span while slower fan-out
    replicas' hops are still running; that is not a violation."""
    t = Telemetry()
    ctx = t.start_trace("req-1", now=0.0)
    transit, carried = t.begin_transit(ctx, "gcs.request",
                                       "group_communication", 0.0)
    fast = t.begin(carried, "gcsd.process", "group_communication", now=10.0)
    t.end(fast, 20.0)
    t.finish_inflight(carried, 30.0)  # first replica arrived
    slow = t.begin(carried, "gcsd.process", "group_communication", now=40.0)
    t.end(slow, 60.0)  # ends after the transit span closed
    t.finish_trace(ctx, 100.0)
    assert transit.kind == "transit"
    assert validate_spans(t.spans) == []


def test_telemetry_summary_shape():
    t = Telemetry()
    _toy_trace(t)
    t.metrics.histogram("request_latency_us").observe(110.0)
    summary = telemetry_summary(t)
    assert summary["spans"] == 4
    assert summary["open_spans"] == 0
    assert summary["dropped"] == 0
    assert summary["traces"] == 1
    assert summary["traces_completed"] == 1
    assert summary["breakdown_us"]["orb"] == pytest.approx(10.0)
    assert summary["latency_p50_us"] > 0.0
    assert summary["latency_p99_us"] >= summary["latency_p50_us"]
