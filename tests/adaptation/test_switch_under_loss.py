"""The Fig. 5 switch protocol under transient communication faults.

The paper's protocol rides on the GCS's reliable totally-ordered
channel; these tests inject message loss *during* switches and check
that the protocol still completes consistently.
"""

import pytest

from repro.net import BurstLoss, RandomLoss
from repro.replication import ReplicationStyle
from tests.replication.helpers import (
    build_rig,
    call,
    counter_values,
    fire,
)


def test_switch_completes_under_transient_random_loss():
    """A 1.5 s window of 25 % random loss (a transient communication
    fault per the paper's fault model — sustained loss beyond the
    failure timeout would legitimately look like crashes) spans the
    whole switch; the protocol must complete and stay consistent."""
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE,
                                           seed=31)
    call(testbed, clients[0], "add", 3)
    start = testbed.now
    testbed.network.add_loss_model(BurstLoss(start, start + 1_500_000,
                                             rate=0.25))
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(10_000_000)
    live = [r for r in replicas if r.alive]
    assert all(r.replicator.style is ReplicationStyle.ACTIVE
               for r in live)
    # No false suspicions: the daemon membership is intact.
    for daemon in testbed.daemons.values():
        assert len(daemon.view.members) == 4
    reply = call(testbed, clients[0], "add", 2, timeout_us=10_000_000)
    assert reply.payload == 5
    assert counter_values(replicas) == [5, 5, 5]


def test_switch_command_lost_then_retransmitted():
    """A total loss burst swallows the first transmission of the
    switch command; link retransmission must deliver it and the switch
    must complete exactly once."""
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE,
                                           seed=32)
    start = testbed.now
    testbed.network.add_loss_model(BurstLoss(start, start + 30_000,
                                             rate=1.0))
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(10_000_000)
    for replica in replicas:
        assert replica.replicator.style is ReplicationStyle.ACTIVE
        assert len(replica.replicator.switch_history) == 1


def test_final_checkpoint_lost_then_recovered():
    """Loss hits while the final checkpoint of a WP->A switch is on
    the wire; reliability must re-deliver it so backups complete."""
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE,
                                           seed=33)
    call(testbed, clients[0], "add", 7)
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    # The command lands almost immediately; the checkpoint follows.
    burst_start = testbed.now + 2_000
    testbed.network.add_loss_model(BurstLoss(burst_start,
                                             burst_start + 25_000,
                                             rate=1.0))
    testbed.run(10_000_000)
    assert all(r.replicator.style is ReplicationStyle.ACTIVE
               for r in replicas)
    call(testbed, clients[0], "add", 1, timeout_us=10_000_000)
    assert counter_values(replicas) == [8, 8, 8]


def test_requests_racing_loss_and_switch_exactly_once():
    """Loss + switch + retries together: every request executes
    exactly once in the surviving state."""
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE,
                                           n_clients=2, seed=34)
    start = testbed.now
    testbed.network.add_loss_model(BurstLoss(start + 5_000,
                                             start + 120_000, rate=0.6))
    pending = []
    for client in clients:
        for _ in range(5):
            pending.append(fire(client, "add", 1))
    testbed.run(20_000)
    replicas[1].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(40_000_000)
    assert all(len(p) == 1 for p in pending)
    assert counter_values(replicas) == [10, 10, 10]
