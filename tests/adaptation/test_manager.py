"""Tests for the automatic adaptation loop (Fig. 6 behaviour)."""

import pytest

from repro.adaptation import AdaptationManager
from repro.core import ThresholdSwitchPolicy
from repro.experiments import (
    Testbed,
    deploy_client,
    deploy_replica_group,
    run_adaptive_scenario,
)
from repro.orb import BusyServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)
from repro.workload import ConstantRate, OpenLoopClient, SpikeProfile

POLICY = ThresholdSwitchPolicy(rate_high_per_s=400, rate_low_per_s=200)


def _adaptive_rig(initial=ReplicationStyle.WARM_PASSIVE, seed=0):
    testbed = Testbed.paper_testbed(3, 1, seed=seed)
    config = ReplicationConfig(style=initial, group="svc")
    replicas = deploy_replica_group(
        testbed, ["s01", "s02", "s03"], config,
        {"bench": lambda: BusyServant(processing_us=15, reply_bytes=128,
                                      state_bytes=1024)})
    managers = [AdaptationManager(r.replicator, POLICY) for r in replicas]
    client = deploy_client(testbed, "w01", ClientReplicationConfig(
        group="svc", expected_style=initial))
    testbed.run(150_000)
    return testbed, replicas, managers, client


def test_high_rate_triggers_switch_to_active():
    testbed, replicas, managers, client = _adaptive_rig()
    loader = OpenLoopClient(client, ConstantRate(900), 3_000_000,
                            object_key="bench", payload_bytes=128)
    loader.start()
    testbed.run(2_500_000)  # inspect while the load is still offered
    live = [r for r in replicas if r.alive]
    assert all(r.replicator.style is ReplicationStyle.ACTIVE for r in live)
    assert sum(m.switches_triggered for m in managers) >= 1


def test_low_rate_stays_passive():
    testbed, replicas, managers, client = _adaptive_rig()
    loader = OpenLoopClient(client, ConstantRate(100), 3_000_000,
                            object_key="bench", payload_bytes=128)
    loader.start()
    testbed.run(4_000_000)
    assert all(r.replicator.style is ReplicationStyle.WARM_PASSIVE
               for r in replicas)
    assert sum(m.switches_triggered for m in managers) == 0


def test_spike_switches_up_then_back_down():
    testbed, replicas, managers, client = _adaptive_rig()
    profile = SpikeProfile(base_rate=100, spike_rate=900,
                           spike_start_us=2_000_000,
                           spike_end_us=5_000_000)
    loader = OpenLoopClient(client, profile, 8_000_000,
                            object_key="bench", payload_bytes=128)
    loader.start()
    testbed.run(11_000_000)
    history = replicas[0].replicator.switch_history
    assert len(history) >= 2
    assert history[0].to_style is ReplicationStyle.ACTIVE
    assert history[1].to_style is ReplicationStyle.WARM_PASSIVE
    assert replicas[0].replicator.style is ReplicationStyle.WARM_PASSIVE


def test_concurrent_managers_cause_single_switch():
    """All three managers see the same replicated state and may all
    initiate; the Fig. 5 duplicate discard must leave exactly one
    completed switch."""
    testbed, replicas, managers, client = _adaptive_rig()
    loader = OpenLoopClient(client, ConstantRate(900), 2_000_000,
                            object_key="bench", payload_bytes=128)
    loader.start()
    testbed.run(1_800_000)
    for replica in replicas:
        history = replica.replicator.switch_history
        assert len(history) == 1
        assert history[0].to_style is ReplicationStyle.ACTIVE


def test_hysteresis_prevents_thrashing():
    """A rate inside the hysteresis band (250-500 req/s) must not
    cause switching in either direction: passive stays passive at
    350 req/s, and a group that switched up at 900 req/s stays
    active when the rate falls back to 350."""
    testbed, replicas, managers, client = _adaptive_rig()
    loader = OpenLoopClient(client, ConstantRate(350), 3_000_000,
                            object_key="bench", payload_bytes=128)
    loader.start()
    testbed.run(2_500_000)
    assert sum(m.switches_triggered for m in managers) == 0
    assert replicas[0].replicator.style is ReplicationStyle.WARM_PASSIVE

    from repro.workload import StepProfile
    testbed2, replicas2, managers2, client2 = _adaptive_rig(seed=1)
    profile = StepProfile([(0.0, 900.0), (1_500_000.0, 350.0)])
    loader2 = OpenLoopClient(client2, profile, 4_000_000,
                             object_key="bench", payload_bytes=128)
    loader2.start()
    testbed2.run(4_000_000)
    live = [r for r in replicas2 if r.alive]
    # One switch up at 900 req/s; 350 req/s is inside the band, so no
    # switch back down while the load runs.
    assert all(r.replicator.style is ReplicationStyle.ACTIVE for r in live)
    assert all(len(r.replicator.switch_history) == 1 for r in live)


def test_scenario_runner_adaptive_vs_static():
    """The paper's Fig. 6 headline: adaptive replication observes a
    higher request arrival rate than static passive under the same
    offered load (4.1% in the paper)."""
    profile = SpikeProfile(base_rate=100, spike_rate=1100,
                           spike_start_us=1_000_000,
                           spike_end_us=4_000_000)
    adaptive = run_adaptive_scenario(profile, 5_000_000, policy=POLICY,
                                     n_clients=2, seed=3)
    static = run_adaptive_scenario(profile, 5_000_000, n_clients=2,
                                   static_style=ReplicationStyle.WARM_PASSIVE,
                                   seed=3)
    assert adaptive.switch_events, "no switch happened"
    assert adaptive.mean_latency_us < static.mean_latency_us


def test_manager_rejects_bad_interval():
    testbed, replicas, managers, client = _adaptive_rig()
    from repro.errors import AdaptationError
    with pytest.raises(AdaptationError):
        AdaptationManager(replicas[0].replicator, POLICY,
                          evaluation_interval_us=0.0)
