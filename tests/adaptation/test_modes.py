"""Tests for operating modes and degraded-contract negotiation."""

import pytest

from repro.adaptation import ModeManager, OperatingMode
from repro.errors import AdaptationError, ContractViolation
from repro.monitoring import Contract, ContractStatus, MetricsSnapshot
from repro.replication import ReplicationStyle

A = ReplicationStyle.ACTIVE
P = ReplicationStyle.WARM_PASSIVE


class _StubStyleKnob:
    def __init__(self):
        self.value = None
        self.sets = []

    def get(self):
        return self.value

    def set(self, value):
        self.value = value
        self.sets.append(value)


class _StubReplicasKnob:
    def __init__(self):
        self.value = 0

    def get(self):
        return self.value

    def set(self, value):
        self.value = value


def _modes():
    return [
        OperatingMode(
            name="encounter", style=A, n_replicas=3,
            contracts=(Contract("lat", "latency_mean_us", limit=2500.0),)),
        OperatingMode(
            name="cruise", style=P, n_replicas=3,
            contracts=(Contract("lat", "latency_mean_us", limit=20000.0),)),
        OperatingMode(
            name="safe", style=P, n_replicas=2,
            contracts=(Contract("lat", "latency_mean_us", limit=100000.0),)),
    ]


def _manager(tolerance=2):
    style = _StubStyleKnob()
    replicas = _StubReplicasKnob()
    manager = ModeManager(_modes(), style_knob=style,
                          replicas_knob=replicas,
                          violation_tolerance=tolerance)
    return manager, style, replicas


def _snap(t, latency):
    return MetricsSnapshot(time=t, latency_mean_us=latency)


def test_set_mode_drives_knobs():
    manager, style, replicas = _manager()
    manager.set_mode("encounter")
    assert style.value is A
    assert replicas.value == 3
    assert manager.current_mode.name == "encounter"


def test_unknown_mode_rejected():
    manager, *_ = _manager()
    with pytest.raises(AdaptationError):
        manager.set_mode("warp")


def test_evaluate_requires_mode():
    manager, *_ = _manager()
    with pytest.raises(AdaptationError):
        manager.evaluate(_snap(0, 100))


def test_honoured_contract_stays_put():
    manager, style, replicas = _manager()
    manager.set_mode("encounter")
    for t in range(10):
        status = manager.evaluate(_snap(t, 1000.0))
        assert status is ContractStatus.HONOURED
    assert manager.current_mode.name == "encounter"
    assert manager.degradations == 0


def test_sustained_violation_degrades_one_step():
    manager, style, replicas = _manager(tolerance=2)
    manager.set_mode("encounter")
    manager.evaluate(_snap(1, 9000.0))
    assert manager.current_mode.name == "encounter"  # debounced
    manager.evaluate(_snap(2, 9000.0))
    assert manager.current_mode.name == "cruise"  # degraded
    assert style.value is P
    assert manager.degradations == 1


def test_transient_spike_does_not_degrade():
    manager, *_ = _manager(tolerance=3)
    manager.set_mode("encounter")
    manager.evaluate(_snap(1, 9000.0))
    manager.evaluate(_snap(2, 9000.0))
    manager.evaluate(_snap(3, 1000.0))  # recovery resets the counter
    manager.evaluate(_snap(4, 9000.0))
    manager.evaluate(_snap(5, 9000.0))
    assert manager.current_mode.name == "encounter"


def test_degradation_cascades_to_the_end_then_raises():
    manager, *_ = _manager(tolerance=1)
    manager.set_mode("encounter")
    manager.evaluate(_snap(1, 1e6))  # -> cruise
    assert manager.current_mode.name == "cruise"
    manager.evaluate(_snap(2, 1e6))  # -> safe
    assert manager.current_mode.name == "safe"
    with pytest.raises(ContractViolation):
        manager.evaluate(_snap(3, 1e6))  # nothing left: operator call


def test_warning_is_reported_but_not_a_violation():
    manager, *_ = _manager(tolerance=1)
    manager.set_mode("encounter")
    status = manager.evaluate(_snap(1, 2200.0))  # 88 % of the limit
    assert status is ContractStatus.WARNING
    assert manager.current_mode.name == "encounter"


def test_transitions_recorded_with_reasons():
    manager, *_ = _manager(tolerance=1)
    manager.set_mode("encounter", time=10.0)
    manager.evaluate(_snap(20.0, 1e6))
    assert [t.to_mode for t in manager.transitions] == [
        "encounter", "cruise"]
    assert manager.transitions[0].reason == "operator request"
    assert manager.transitions[1].reason == "sustained contract violation"
    assert manager.transitions[1].from_mode == "encounter"


def test_transition_callback_invoked():
    seen = []
    style = _StubStyleKnob()
    manager = ModeManager(_modes(), style_knob=style,
                          on_transition=seen.append)
    manager.set_mode("cruise")
    assert len(seen) == 1 and seen[0].to_mode == "cruise"


def test_checkpoint_knob_only_driven_when_mode_specifies():
    class _StubCkptKnob:
        def __init__(self):
            self.value = None

        def set(self, value):
            self.value = value

    ckpt = _StubCkptKnob()
    modes = [OperatingMode(name="m1", style=P, n_replicas=2,
                           checkpoint_interval=5),
             OperatingMode(name="m2", style=P, n_replicas=2)]
    manager = ModeManager(modes, checkpoint_knob=ckpt)
    manager.set_mode("m1")
    assert ckpt.value == 5
    manager.set_mode("m2")
    assert ckpt.value == 5  # unchanged: m2 doesn't specify


def test_validation():
    with pytest.raises(AdaptationError):
        ModeManager([])
    with pytest.raises(AdaptationError):
        ModeManager(_modes(), violation_tolerance=0)
    with pytest.raises(AdaptationError):
        ModeManager([_modes()[0], _modes()[0]])  # duplicate names
    with pytest.raises(AdaptationError):
        OperatingMode(name="", style=A, n_replicas=1)
    with pytest.raises(AdaptationError):
        OperatingMode(name="x", style=A, n_replicas=0)
