"""Documentation gates: every public item carries a docstring, and the
promised repository artifacts exist.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parents[2]


def _walk_modules():
    prefix = repro.__name__ + "."
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=lambda m: m.__name__)
def test_every_module_has_a_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=lambda m: m.__name__)
def test_every_public_class_and_function_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    # Properties/overrides of documented bases excluded
                    # by the isfunction check above; plain public
                    # methods must be documented.
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}")


def test_every_package_declares_public_surface():
    packages = [m for m in ALL_MODULES
                if hasattr(m, "__path__")]
    missing = [p.__name__ for p in packages
               if not hasattr(p, "__all__")]
    assert not missing, f"packages without __all__: {missing}"


def test_promised_artifacts_exist():
    for artifact in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/architecture.md", "docs/calibration.md",
                     "docs/protocols.md", "docs/api.md",
                     "docs/campaigns.md", "docs/observability.md",
                     "docs/verification.md", "docs/scale.md",
                     "examples/quickstart.py",
                     "examples/adaptive_replication.py",
                     "examples/scalability_tuning.py",
                     "examples/mission_modes.py",
                     "examples/replicated_kvstore.py"):
        assert (REPO_ROOT / artifact).exists(), artifact


def test_design_md_maps_every_figure_to_a_bench():
    design = (REPO_ROOT / "DESIGN.md").read_text()
    for bench in ("test_fig3_rtt_breakdown", "test_fig4_overhead",
                  "test_fig6_adaptive_switch", "test_fig7_tradeoff",
                  "test_table2_scalability_policy",
                  "test_fig9_design_space", "test_table1_knob_mapping"):
        assert bench in design, bench
        assert (REPO_ROOT / "benchmarks" / f"{bench}.py").exists(), bench
