"""End-to-end tests for the sharded deployment and its protocols."""

import pytest

from repro.cluster import (
    ShardSpec,
    deploy_cluster,
    deploy_cluster_client,
    run_cluster_load,
    run_cluster_rebalance_check,
    run_cluster_trial,
)
from repro.errors import ClusterError
from repro.experiments.testbed import Testbed
from repro.orb import CounterServant
from repro.replication import ReplicationStyle
from repro.workload import ClosedLoopClient


class TestShardSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(ClusterError):
            ShardSpec(name="")

    def test_rejects_zero_replicas(self):
        with pytest.raises(ClusterError):
            ShardSpec(name="a", n_replicas=0)

    def test_rejects_short_placement(self):
        with pytest.raises(ClusterError):
            ShardSpec(name="a", n_replicas=3, hosts=("s01", "s02"))


class TestClusterLoad:
    def test_completes_and_rolls_up_per_shard(self):
        result = run_cluster_load(n_shards=2, n_clients=2,
                                  n_requests=8, journal=True)
        assert result.completed == result.sent == 16
        assert set(result.per_shard) == {"shard0", "shard1"}
        assert all(s["processed"] > 0
                   for s in result.per_shard.values())
        assert result.routers_agree

    def test_mixes_replication_styles(self):
        result = run_cluster_load(n_shards=3, n_clients=2,
                                  n_requests=6, journal=True)
        styles = set(result.shard_styles.values())
        assert styles == {"active", "warm_passive"}
        # The journal's deployment events agree with the specs.
        assert result.journal is not None
        deployed = {e.shard: e.attrs["style"]
                    for e in result.journal.events
                    if e.component == "cluster" and e.kind == "shard"}
        assert deployed == result.shard_styles

    def test_throughput_scales_with_shard_count(self):
        kwargs = dict(n_clients=12, n_requests=15, n_server_hosts=5)
        one = run_cluster_load(n_shards=1, **kwargs)
        four = run_cluster_load(n_shards=4, **kwargs)
        assert four.throughput_per_s >= 3.0 * one.throughput_per_s

    def test_live_rebalance_reroutes_and_completes(self):
        result = run_cluster_load(
            n_shards=2, n_clients=2, n_requests=10,
            rebalance=("obj00", "shard1", 40_000.0), journal=True)
        assert result.completed == result.sent
        assert result.migrations_committed == 1
        assert result.map_epoch == 1
        assert result.routers_agree

    def test_rejects_fewer_keys_than_shards(self):
        with pytest.raises(ClusterError):
            run_cluster_load(n_shards=4, n_keys=2)

    def test_rejects_too_few_server_hosts(self):
        with pytest.raises(ClusterError):
            run_cluster_load(n_shards=4, n_server_hosts=3)


class TestRebalanceSafety:
    def test_no_acked_update_lost_or_doubled(self):
        out = run_cluster_rebalance_check()
        assert out.ok, out.violations
        assert out.migrations_committed == 2
        assert out.giveups == 0
        # Every key's surviving replicas agree, and their value equals
        # the acked increments for that key.
        for key, values in out.survivor_values.items():
            assert len(set(values)) == 1
        assert len(set(out.map_digests)) == 1

    def test_in_flight_requests_reroute_across_migration(self):
        # One key, slow servants: requests are mid-flight when the map
        # flips, so the router must recall and re-route them.
        import repro.cluster.scenario as scenario_mod

        class SlowCounter(CounterServant):
            """Counter slow enough to straddle the migration window."""

            def __init__(self):
                super().__init__(processing_us=1500.0)

        original = scenario_mod.CounterServant
        scenario_mod.CounterServant = SlowCounter
        try:
            out = run_cluster_rebalance_check(n_keys=1, n_clients=4,
                                              n_requests=24)
        finally:
            scenario_mod.CounterServant = original
        assert out.ok, out.violations
        assert out.rerouted > 0
        assert out.survivor_values["ctr00"] == [96, 96]


class TestDeadShard:
    def test_coordinator_repins_keys_of_a_dead_shard(self):
        testbed = Testbed.paper_testbed(4, 2, seed=0)
        specs = [ShardSpec(name="shard0", n_replicas=2,
                           hosts=("s01", "s02")),
                 ShardSpec(name="shard1", n_replicas=2,
                           hosts=("s03", "s04"))]
        keys = ["k0", "k1", "k2", "k3"]
        cluster = deploy_cluster(testbed, specs, keys,
                                 servant_factory=lambda k: CounterServant())
        stack = deploy_cluster_client(cluster, "w01")
        testbed.run(150_000)

        cluster.shards["shard1"].crash()
        testbed.run(3_000_000)  # failure detection + recovery

        final = cluster.coordinator.map
        assert final.shards == ("shard0",)
        assert all(final.owner_of(k) == "shard0" for k in keys)
        # The survivor materialized servants for the adopted keys.
        primary = cluster.shards["shard0"].primary_replica
        assert primary is not None
        assert set(keys) <= set(primary.orb_server.servant_keys)
        # The router learned the shrunken map and still serves all keys.
        assert stack.router.map_digest == final.digest()
        loader = ClosedLoopClient(stack, 8, object_keys=keys,
                                  operation="add", payload=1)
        loader.start()
        testbed.run(30_000_000)
        assert loader.done
        assert loader.stats.completed == 8


class TestClusterTrial:
    def test_metrics_match_fault_trial_schema(self):
        from repro.experiments.trial import run_fault_trial

        sharded = run_cluster_trial(
            ReplicationStyle.ACTIVE, n_shards=2, n_clients=2,
            duration_us=300_000.0, rate_per_s=150.0)
        classic = run_fault_trial(
            ReplicationStyle.ACTIVE, n_replicas=2, n_clients=2,
            duration_us=300_000.0, rate_per_s=150.0)
        assert set(sharded.metrics()) == set(classic.metrics())
        assert sharded.completed == sharded.sent > 0

    def test_process_crash_fault_is_survived(self):
        result = run_cluster_trial(
            ReplicationStyle.ACTIVE, n_shards=2, n_clients=2,
            duration_us=400_000.0, rate_per_s=150.0,
            fault_load="process_crash")
        assert result.injected[0].kind == "process_crash"
        assert result.completed == result.sent  # backup takes over
        assert 0.0 < result.availability <= 1.0

    def test_check_verdict_attaches_clean(self):
        result = run_cluster_trial(
            ReplicationStyle.ACTIVE, n_shards=2, n_clients=2,
            duration_us=300_000.0, rate_per_s=150.0, check=True)
        assert result.check is not None
        assert result.check["ok"] is True
        assert result.check["violations"] == []

    def test_rejects_unsupported_fault_loads(self):
        with pytest.raises(ClusterError):
            run_cluster_trial(ReplicationStyle.ACTIVE, n_shards=2,
                              n_clients=1, duration_us=100_000.0,
                              rate_per_s=100.0, fault_load="loss_burst")
