"""Determinism regressions for the sharded deployment.

Same-seed cluster runs must be byte-identical — including the
migration protocol, which relies on totally-ordered GCS delivery to
flip the partition map at the same logical instant everywhere — and a
sharded campaign must produce the same results file serially and
across worker processes.
"""

from repro.campaign import CampaignSpec, ResultsStore, run_campaign
from repro.cluster import (
    build_map,
    run_cluster_load,
    run_cluster_rebalance_check,
)


def test_same_seed_load_runs_are_identical():
    kwargs = dict(n_shards=2, n_clients=2, n_requests=8, seed=3,
                  journal=True)
    one = run_cluster_load(**kwargs)
    two = run_cluster_load(**kwargs)
    assert one.events_dispatched == two.events_dispatched
    assert one.duration_us == two.duration_us
    assert one.per_shard == two.per_shard
    assert one.map_digests == two.map_digests
    assert [e.attrs for e in one.journal.events] \
        == [e.attrs for e in two.journal.events]


def test_same_seed_rebalance_checks_share_a_digest():
    one = run_cluster_rebalance_check(n_requests=8, seed=5)
    two = run_cluster_rebalance_check(n_requests=8, seed=5)
    assert one.ok and two.ok
    assert one.digest == two.digest
    assert one.survivor_values == two.survivor_values


def test_different_seeds_change_the_digest():
    one = run_cluster_rebalance_check(n_requests=8, seed=5)
    two = run_cluster_rebalance_check(n_requests=8, seed=6)
    assert one.digest != two.digest


def test_routers_agree_on_the_post_migration_map():
    result = run_cluster_load(n_shards=2, n_clients=3, n_requests=6,
                              rebalance=("obj00", "shard1", 40_000.0))
    assert result.migrations_committed == 1
    # Every router instance converged on the same epoch-1 digest.
    assert len(result.map_digests) == 3
    assert result.routers_agree


def test_partition_map_digest_is_instance_independent():
    keys = [f"key{i}" for i in range(32)]
    digests = {build_map(["a", "b", "c"]).digest() for _ in range(3)}
    assert len(digests) == 1
    maps = [build_map(["a", "b", "c"]) for _ in range(2)]
    assert maps[0].assignment(keys) == maps[1].assignment(keys)


def sharded_spec():
    return CampaignSpec(
        name="cluster-determinism", styles=["active"],
        replica_counts=[2], fault_loads=["none", "process_crash"],
        shard_counts=[1, 2], seeds=[0], n_clients=2,
        duration_us=200_000.0, rate_per_s=150.0, settle_us=400_000.0)


def run_to_bytes(tmp_path, tag, workers):
    store = ResultsStore(str(tmp_path / f"{tag}.jsonl"))
    summary = run_campaign(sharded_spec(), store, workers=workers)
    assert summary.failed == 0
    assert summary.ran == summary.total == 4
    return open(store.path, "rb").read()


def test_sharded_campaign_parallel_matches_serial(tmp_path):
    serial = run_to_bytes(tmp_path, "serial", 1)
    parallel = run_to_bytes(tmp_path, "parallel", 3)
    assert parallel == serial
    assert b"-sh2-" in serial  # the sharded trials actually ran
