"""Tests for the repro.cluster sharding subsystem."""
