"""Unit tests for the deterministic partition map."""

import pytest

from repro.cluster import PartitionMap, build_map
from repro.errors import ConfigurationError


def test_every_key_owned_by_a_known_shard():
    pmap = build_map(["a", "b", "c"])
    for i in range(200):
        assert pmap.owner_of(f"key{i}") in ("a", "b", "c")


def test_ownership_is_deterministic_across_instances():
    one = build_map(["a", "b", "c"])
    two = build_map(["a", "b", "c"])
    keys = [f"key{i}" for i in range(100)]
    assert [one.owner_of(k) for k in keys] == \
        [two.owner_of(k) for k in keys]
    assert one.digest() == two.digest()


def test_hashing_spreads_keys_over_all_shards():
    pmap = build_map(["a", "b", "c", "d"])
    assignment = pmap.assignment([f"key{i}" for i in range(400)])
    assert set(assignment.values()) == {"a", "b", "c", "d"}


def test_overrides_win_over_the_ring():
    pmap = build_map(["a", "b"], overrides={"pinned": "b"})
    assert pmap.owner_of("pinned") == "b"


def test_reassign_bumps_epoch_and_moves_only_that_key():
    pmap = build_map(["a", "b"])
    key = "key7"
    src = pmap.owner_of(key)
    dst = "b" if src == "a" else "a"
    moved = pmap.reassign(key, dst)
    assert moved.epoch == pmap.epoch + 1
    assert moved.owner_of(key) == dst
    others = [f"key{i}" for i in range(50) if f"key{i}" != key]
    assert [moved.owner_of(k) for k in others] == \
        [pmap.owner_of(k) for k in others]


def test_without_shard_repins_its_keys_to_survivors():
    pmap = build_map(["a", "b", "c"])
    keys = [f"key{i}" for i in range(60)]
    lost = [k for k in keys if pmap.owner_of(k) == "b"]
    shrunk = pmap.without_shard("b", keys)
    assert "b" not in shrunk.shards
    for key in keys:
        assert shrunk.owner_of(key) != "b"
    # Keys that did not live on the dead shard stay put.
    for key in keys:
        if key not in lost:
            assert shrunk.owner_of(key) == pmap.owner_of(key)


def test_rebalance_moves_lists_differences():
    pmap = build_map(["a", "b"])
    key = next(f"key{i}" for i in range(50)
               if pmap.owner_of(f"key{i}") == "a")
    moved = pmap.reassign(key, "b")
    moves = pmap.rebalance_moves(moved, [key, "stay-put-key"])
    assert moves == {("a", "b"): [key]}


def test_round_trips_through_dict():
    pmap = build_map(["a", "b"], overrides={"pinned": "a"})
    clone = PartitionMap.from_dict(pmap.to_dict())
    assert clone == pmap
    assert clone.digest() == pmap.digest()


def test_from_dict_rejects_garbage():
    with pytest.raises(ConfigurationError):
        PartitionMap.from_dict({"shards": "not-a-list"})


def test_digest_differs_after_reassign():
    pmap = build_map(["a", "b"])
    moved = pmap.reassign("key1", pmap.owner_of("key2"))
    if moved.owner_of("key1") != pmap.owner_of("key1"):
        assert moved.digest() != pmap.digest()


def test_empty_shard_list_rejected():
    with pytest.raises(ConfigurationError):
        build_map([])
