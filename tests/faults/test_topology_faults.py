"""Topology fault injection: partitions, gray failures, skipped
restarts and their journal ground truth."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultInjector
from repro.journal.events import Journal
from repro.replication import ReplicationStyle
from tests.replication.helpers import FAILOVER_US, build_rig, call


def _injector(testbed):
    return FaultInjector(testbed.sim, testbed.network)


def test_partition_records_resolved_component_cover():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    testbed.sim.journal = Journal()
    injector = _injector(testbed)
    injector.partition_at([["s03"]], testbed.now + 10_000,
                          testbed.now + 60_000)
    fault = injector.injected[0]
    assert fault.kind == "partition"
    events = [e for e in testbed.sim.journal.events
              if e.kind == "fault.inject"]
    assert len(events) == 1
    cover = events[0].attrs["components"]
    # The implicit remainder component is resolved and recorded.
    assert ["s03"] in cover
    assert sorted(h for c in cover for h in c) \
        == sorted(testbed.network.hosts)


def test_partition_filter_uninstalled_after_heal():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    injector.partition_at([["s03"]], testbed.now + 10_000,
                          testbed.now + 50_000)
    assert len(testbed.network.topology) == 1
    testbed.run(100_000)
    assert testbed.network.topology == []


def test_partition_validation():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    with pytest.raises(ConfigurationError):
        injector.partition_at([["nosuch"]], testbed.now + 1_000,
                              testbed.now + 2_000)
    all_hosts = [list(testbed.network.hosts)]
    with pytest.raises(ConfigurationError):
        # Every host in one component: nothing left to split.
        injector.partition_at(all_hosts, testbed.now + 1_000,
                              testbed.now + 2_000)


def test_active_group_survives_minority_partition():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE,
                                           seed=11)
    injector = _injector(testbed)
    injector.partition_at([["s03"]], testbed.now + 10_000,
                          testbed.now + 10_000 + FAILOVER_US)
    testbed.run(20_000)
    reply = call(testbed, clients[0], "add", 4, timeout_us=FAILOVER_US)
    assert reply.payload == 4


def test_asymmetric_partition_records_direction():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    testbed.sim.journal = Journal()
    injector = _injector(testbed)
    injector.asymmetric_partition_at(
        ["s03"], ["s01", "s02"], testbed.now + 1_000,
        testbed.now + 2_000)
    event = [e for e in testbed.sim.journal.events
             if e.kind == "fault.inject"][0]
    assert event.attrs["fault"] == "asym_partition"
    assert event.attrs["src_hosts"] == ["s03"]
    assert event.attrs["dst_hosts"] == ["s01", "s02"]


def test_flaky_link_and_slow_host_record_parameters():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    testbed.sim.journal = Journal()
    injector = _injector(testbed)
    injector.flaky_link("s01", "s02", 0.25, testbed.now + 1_000,
                        testbed.now + 2_000)
    injector.slow_host(testbed.hosts["s03"], 5_000.0,
                       testbed.now + 1_000, testbed.now + 2_000)
    kinds = {e.attrs["fault"]: e for e in testbed.sim.journal.events
             if e.kind == "fault.inject"}
    assert kinds["flaky_link"].attrs["rate"] == 0.25
    assert kinds["slow_host"].attrs["extra_us"] == 5_000.0


def test_slow_host_delays_but_does_not_kill_service():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE,
                                           seed=12)
    injector = _injector(testbed)
    injector.slow_host(testbed.hosts["s02"], 2_000.0,
                       testbed.now + 1_000,
                       testbed.now + 1_000 + FAILOVER_US)
    testbed.run(5_000)
    reply = call(testbed, clients[0], "add", 3, timeout_us=FAILOVER_US)
    assert reply.payload == 3
    for replica in replicas:
        assert replica.alive


def test_restart_skipped_event_when_host_down_at_restart_time():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    testbed.sim.journal = Journal()
    injector = _injector(testbed)
    target = replicas[1]
    injector.crash_and_restart_at(
        target.process, testbed.now + 10_000, 100_000,
        restart=lambda: pytest.fail("restart must be skipped"))
    # The host dies before the promised restart instant.
    injector.crash_host_at(target.process.host, testbed.now + 50_000)
    testbed.run(300_000)
    skips = [e for e in testbed.sim.journal.events
             if e.kind == "fault.restart_skipped"]
    assert len(skips) == 1
    assert skips[0].attrs["target"] == target.process.name


def test_restart_not_skipped_on_live_host():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    testbed.sim.journal = Journal()
    injector = _injector(testbed)
    restarted = []
    injector.crash_and_restart_at(
        replicas[1].process, testbed.now + 10_000, 100_000,
        restart=lambda: restarted.append(True))
    testbed.run(300_000)
    assert restarted == [True]
    assert not any(e.kind == "fault.restart_skipped"
                   for e in testbed.sim.journal.events)
