"""Tests for the fault injector (the paper's fault model)."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultInjector
from repro.replication import ReplicationStyle
from tests.replication.helpers import (
    FAILOVER_US,
    build_rig,
    call,
    counter_values,
    fire,
)


def _injector(testbed):
    return FaultInjector(testbed.sim, testbed.network)


def test_scheduled_process_crash():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    injector.crash_process_at(replicas[1].process,
                              at_us=testbed.now + 100_000)
    testbed.run(200_000)
    assert not replicas[1].alive
    assert injector.injected[0].kind == "process_crash"


def test_scheduled_host_crash():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    injector.crash_host_at(testbed.hosts["s02"], at_us=testbed.now + 50_000)
    testbed.run(100_000)
    assert not testbed.hosts["s02"].alive


def test_service_survives_scheduled_crash():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE, seed=8)
    injector = _injector(testbed)
    injector.crash_process_at(replicas[0].process,
                              at_us=testbed.now + 30_000)
    reply = call(testbed, clients[0], "add", 6, timeout_us=FAILOVER_US)
    assert reply.payload == 6


def test_loss_burst_injected_and_recovered():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE, seed=9)
    injector = _injector(testbed)
    injector.loss_burst(testbed.now, testbed.now + 200_000, rate=1.0)
    replies = fire(clients[0], "add", 2)
    testbed.run(5_000_000)
    assert len(replies) == 1
    assert counter_values(replicas) == [2, 2, 2]


def test_delay_spike_slows_but_preserves():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    fast = call(testbed, clients[0], "add", 1)
    fast_latency = fast.timeline.completed_at - fast.timeline.started_at
    injector = _injector(testbed)
    injector.delay_spike(testbed.now, testbed.now + 3_000_000,
                         extra_us=5_000.0)
    slow = call(testbed, clients[0], "add", 1)
    slow_latency = slow.timeline.completed_at - slow.timeline.started_at
    assert slow_latency > fast_latency + 5_000.0


def test_cpu_hog_delays_processing():
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    baseline = call(testbed, clients[0], "add", 1)
    base_latency = baseline.timeline.completed_at - baseline.timeline.started_at
    injector = _injector(testbed)
    # Hog the primary's CPU for 20 ms right now.
    injector.cpu_hog_at(testbed.hosts["s01"], testbed.now + 1,
                        busy_us=20_000.0)
    testbed.run(10)
    slow = call(testbed, clients[0], "add", 1, timeout_us=3_000_000)
    slow_latency = slow.timeline.completed_at - slow.timeline.started_at
    assert slow_latency > base_latency + 5_000.0


def test_past_injection_rejected():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    with pytest.raises(ConfigurationError):
        injector.crash_host_at(testbed.hosts["s01"], at_us=testbed.now - 1)


def test_past_process_crash_rejected():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    with pytest.raises(ConfigurationError):
        injector.crash_process_at(replicas[0].process,
                                  at_us=testbed.now - 1)


def test_past_loss_burst_rejected():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    with pytest.raises(ConfigurationError):
        injector.loss_burst(testbed.now - 10_000, testbed.now + 10_000)


def test_past_delay_spike_rejected():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    with pytest.raises(ConfigurationError):
        injector.delay_spike(testbed.now - 10_000, testbed.now + 10_000,
                             extra_us=500.0)


def test_inverted_window_rejected():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    with pytest.raises(ConfigurationError):
        injector.loss_burst(testbed.now + 20_000, testbed.now + 10_000)
    with pytest.raises(ConfigurationError):
        injector.delay_spike(testbed.now + 20_000, testbed.now + 10_000,
                             extra_us=500.0)
    assert injector.injected == []


def test_past_cpu_hog_rejected():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    with pytest.raises(ConfigurationError):
        injector.cpu_hog_at(testbed.hosts["s01"], testbed.now - 1,
                            busy_us=1_000.0)


def test_crash_and_restart_recovers_service():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE, seed=4)
    injector = _injector(testbed)
    restarted = []
    injector.crash_and_restart_at(replicas[1].process,
                                  at_us=testbed.now + 50_000,
                                  restart_after_us=100_000,
                                  restart=lambda: restarted.append(True))
    testbed.run(100_000)
    assert not replicas[1].alive
    assert not restarted
    testbed.run(100_000)
    assert restarted == [True]
    fault = injector.injected[0]
    assert fault.kind == "crash_restart"
    assert fault.until_us == fault.at_us + 100_000


def test_crash_and_restart_validates():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    with pytest.raises(ConfigurationError):
        injector.crash_and_restart_at(replicas[0].process,
                                      at_us=testbed.now - 1,
                                      restart_after_us=100)
    with pytest.raises(ConfigurationError):
        injector.crash_and_restart_at(replicas[0].process,
                                      at_us=testbed.now + 100,
                                      restart_after_us=0)


def test_crash_and_restart_skips_restart_on_dead_host():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    restarted = []
    injector.crash_and_restart_at(replicas[1].process,
                                  at_us=testbed.now + 10_000,
                                  restart_after_us=100_000,
                                  restart=lambda: restarted.append(True))
    # The host dies before the restart point: recovery must not fire.
    injector.crash_host_at(replicas[1].process.host,
                           at_us=testbed.now + 50_000)
    testbed.run(300_000)
    assert not restarted


def test_invalid_cpu_hog():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    with pytest.raises(ConfigurationError):
        injector.cpu_hog_at(testbed.hosts["s01"], testbed.now + 1,
                            busy_us=0.0)


def test_injection_log_records_everything():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    injector = _injector(testbed)
    injector.crash_process_at(replicas[0].process, testbed.now + 1000)
    injector.loss_burst(testbed.now, testbed.now + 100)
    injector.delay_spike(testbed.now, testbed.now + 100, 50.0)
    injector.cpu_hog_at(testbed.hosts["s02"], testbed.now + 1, 500.0)
    injector.crash_and_restart_at(replicas[1].process, testbed.now + 2000,
                                  restart_after_us=1000)
    injector.crash_host_at(testbed.hosts["s03"], testbed.now + 3000)
    assert [f.kind for f in injector.injected] == [
        "process_crash", "loss_burst", "delay_spike", "cpu_hog",
        "crash_restart", "host_crash"]
    assert all(f.target for f in injector.injected)
