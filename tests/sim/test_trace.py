"""Unit tests for the trace log."""

from repro.sim import TraceLog


def test_record_and_query():
    log = TraceLog()
    log.record(1.0, "gcs.view", "view installed", view=1)
    log.record(2.0, "repl.switch", "switched")
    assert log.count() == 2
    assert log.count("gcs") == 1
    assert log.count("repl.switch") == 1


def test_prefix_matching_is_hierarchical():
    log = TraceLog()
    log.record(1.0, "gcs.view", "a")
    log.record(2.0, "gcs.deliver", "b")
    log.record(3.0, "gcsx.other", "c")
    assert log.count("gcs") == 2  # "gcsx" must not match prefix "gcs"


def test_since_filter():
    log = TraceLog()
    log.record(1.0, "a", "early")
    log.record(10.0, "a", "late")
    assert [r.message for r in log.query("a", since=5.0)] == ["late"]


def test_last_returns_most_recent():
    log = TraceLog()
    assert log.last() is None
    log.record(1.0, "a", "first")
    log.record(2.0, "a", "second")
    assert log.last("a").message == "second"


def test_disabled_log_records_nothing():
    log = TraceLog()
    log.enabled = False
    log.record(1.0, "a", "x")
    assert len(log) == 0


def test_capacity_evicts_oldest():
    log = TraceLog(capacity=3)
    for i in range(5):
        log.record(float(i), "a", str(i))
    assert [r.message for r in log] == ["2", "3", "4"]


def test_subscribe_listener_sees_records():
    log = TraceLog()
    seen = []
    log.subscribe(seen.append)
    log.record(1.0, "a", "x")
    assert len(seen) == 1 and seen[0].message == "x"


def test_clear_drops_records_keeps_listeners():
    log = TraceLog()
    seen = []
    log.subscribe(seen.append)
    log.record(1.0, "a", "x")
    log.clear()
    assert len(log) == 0
    log.record(2.0, "a", "y")
    assert len(seen) == 2


def test_data_payload_preserved():
    log = TraceLog()
    log.record(1.0, "a", "x", key="value", n=42)
    rec = log.last()
    assert rec.data == {"key": "value", "n": 42}
