"""Snapshot/fork round-trip edge cases (:mod:`repro.sim.snapshot`).

The golden byte-identity of forked *runs* (explorer and campaign
shapes) is pinned in ``tests/bench/test_golden_determinism.py`` and
``tests/check``; here we exercise the copier itself on the states
that historically break naive deep copies: mid-stream RNGs, heaps
holding cancelled entries, pre-bound closures, and journal rings
whose truncation markers are mutated in place.
"""

import pytest

from repro.journal import Journal
from repro.journal.events import RING_TRUNCATED
from repro.sim import SimSnapshot, Simulator, snapshot_deepcopy
from repro.sim.kernel import COMPACT_MIN_CANCELLED, SimulationError


def test_fork_continues_rng_stream_identically():
    sim = Simulator(seed=42)
    sim.schedule(10.0, lambda: sim.rng.random())
    sim.run(until=50.0)
    snap = SimSnapshot.capture(sim, sim=sim)
    fork = snap.fork()
    assert fork is not sim
    assert fork.rng is not sim.rng
    assert fork.now == sim.now
    # Both continue the identical stream from the capture point...
    fork_draws = [fork.rng.random() for _ in range(16)]
    orig_draws = [sim.rng.random() for _ in range(16)]
    assert fork_draws == orig_draws
    # ...independently: a second fork is unaffected by the draws above.
    fork2 = snap.fork()
    assert [fork2.rng.random() for _ in range(16)] == fork_draws


def test_capture_mid_run_is_rejected():
    sim = Simulator(seed=1)
    errors = []

    def try_capture():
        try:
            SimSnapshot.capture(sim, sim=sim)
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, try_capture)
    sim.run(until=2.0)
    assert len(errors) == 1
    # Outside run() the same capture succeeds.
    SimSnapshot.capture(sim, sim=sim)


def test_cancelled_events_survive_fork_and_fire_identically():
    state = {"sim": Simulator(seed=3), "fired": []}
    sim = state["sim"]

    def record(tag):
        state["fired"].append((tag, state["sim"].now))

    handles = [sim.schedule(100.0 + i, record, i) for i in range(40)]
    for handle in handles[::2]:
        handle.cancel()

    snap = SimSnapshot.capture(state, sim=sim)
    fork_state = snap.fork()
    fork_sim = fork_state["sim"]
    # The heap (including the still-enqueued cancelled entries) and
    # the live counters round-trip exactly.
    assert len(fork_sim._heap) == len(sim._heap)
    assert fork_sim._cancelled == sim._cancelled
    assert fork_sim._pending == sim._pending

    sim.run()
    fork_sim.run()
    expected = [(i, 100.0 + i) for i in range(40) if i % 2 == 1]
    assert state["fired"] == expected
    assert fork_state["fired"] == expected
    # The fork appended to its own list, not the original's.
    assert fork_state["fired"] is not state["fired"]


def test_heap_compaction_counters_round_trip_through_fork():
    sim = Simulator(seed=7)
    keep = sim.schedule(10_000.0, lambda: None)
    doomed = [sim.schedule(5_000.0 + i, lambda: None)
              for i in range(COMPACT_MIN_CANCELLED + 50)]
    for handle in doomed[:100]:
        handle.cancel()

    snap = SimSnapshot.capture(sim, sim=sim)
    fork = snap.fork()
    assert fork._cancelled == sim._cancelled == 100

    # Cancelling the rest in the fork crosses the compaction threshold
    # (cancelled >= COMPACT_MIN_CANCELLED and a cancelled-dominated
    # heap): the fork's heap compacts exactly like a fresh kernel's.
    fork_heap_handles = [h for h in fork._heap
                         if not h.cancelled and h.time != 10_000.0]
    for handle in fork_heap_handles:
        handle.cancel()
    # A compaction ran somewhere in that loop: the counter was reset
    # and the fork's heap was rebuilt live-only, while the original's
    # heap still carries every entry.
    assert fork._cancelled < COMPACT_MIN_CANCELLED
    assert len(fork._heap) < len(sim._heap)
    # The original is untouched by the fork's cancellations.
    assert sim._cancelled == 100
    assert fork.run() == 10_000.0


def test_reliable_link_send_cache_rebinds_to_fork():
    check = pytest.importorskip("repro.check")
    prepared = check.prepare_schedule(check.canonical_scenario())
    snap = SimSnapshot.capture(prepared, sim=prepared.testbed.sim)
    fork = snap.fork()

    fork_links = [(daemon, peer, link)
                  for daemon in fork.testbed.daemons.values()
                  for peer, link in daemon._links.items()]
    assert fork_links, "warmed group must have reliable links"
    for daemon, peer, link in fork_links:
        # The copied link is wired to the fork's kernel/network...
        assert link.sim is fork.testbed.sim
        assert link.network is fork.testbed.network
        assert link.sim is not prepared.testbed.sim
        # ...and the daemon's pre-bound send cache points at the
        # copied link, not the original's.
        send = daemon._sends.get(peer)
        if send is not None:
            assert send.__self__ is link

    # Running the fork advances only the fork.
    t_orig = prepared.testbed.sim.now
    fork.testbed.run(50_000.0)
    assert fork.testbed.sim.now > t_orig
    assert prepared.testbed.sim.now == t_orig


def test_journal_ring_truncation_markers_survive_fork():
    journal = Journal(ring_size=2)
    for i in range(5):
        journal.record(float(i), "h1", "comp", "kind", n=i)
    assert journal.truncated_rings() == {"h1": 3}

    clone = snapshot_deepcopy(journal)
    # The marker must keep its identity inside the copy: the event in
    # the global stream IS the object updated in place on eviction.
    marker = clone._ring_markers["h1"]
    assert marker.kind == RING_TRUNCATED
    assert any(event is marker for event in clone.events)

    clone.record(9.0, "h1", "comp", "kind", n=9)
    assert clone.truncated_rings() == {"h1": 4}
    assert journal.truncated_rings() == {"h1": 3}
    assert clone.flight_recorder("h1")[0] is marker


def test_snapshot_repr_counts_forks():
    sim = Simulator(seed=0)
    snap = SimSnapshot.capture(sim, sim=sim, label="unit")
    snap.fork()
    snap.fork()
    assert snap.forks == 2
    assert "unit" in repr(snap)
