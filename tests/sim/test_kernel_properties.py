"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator

delays = st.lists(st.floats(min_value=0.0, max_value=1e6,
                            allow_nan=False), min_size=1, max_size=60)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(delay_list):
    sim = Simulator()
    fired = []
    for delay in delay_list:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)


@given(delays)
def test_clock_never_goes_backwards(delay_list):
    sim = Simulator()
    observed = []
    for delay in delay_list:
        sim.schedule(delay, lambda: observed.append(sim.now))
    last = [0.0]

    def check():
        assert sim.now >= last[0]
        last[0] = sim.now

    for delay in delay_list:
        sim.schedule(delay, check)
    sim.run()


@given(delays, st.integers(min_value=0, max_value=59))
def test_cancel_removes_exactly_one_event(delay_list, cancel_index):
    sim = Simulator()
    handles = []
    fired = []
    for i, delay in enumerate(delay_list):
        handles.append(sim.schedule(delay, fired.append, i))
    victim = cancel_index % len(handles)
    handles[victim].cancel()
    sim.run()
    assert len(fired) == len(delay_list) - 1
    assert victim not in fired


@given(delays)
def test_same_delays_fire_in_submission_order(delay_list):
    """Ties break deterministically by scheduling order."""
    sim = Simulator()
    fired = []
    for i in range(len(delay_list)):
        sim.schedule(5.0, fired.append, i)
    sim.run()
    assert fired == list(range(len(delay_list)))


@given(st.lists(st.floats(min_value=0.1, max_value=1000.0),
                min_size=1, max_size=30))
@settings(max_examples=50)
def test_cpu_serialization_preserves_submission_order(demands):
    """Jobs on one CPU complete in submission order regardless of
    individual demands (FIFO, no preemption)."""
    from repro.sim import Host
    sim = Simulator()
    host = Host(sim, "h")
    completed = []
    for i, demand in enumerate(demands):
        host.cpu.execute(demand, completed.append, ) if False else \
            host.cpu.execute(demand, lambda i=i: completed.append(i))
    sim.run()
    assert completed == list(range(len(demands)))


@given(st.lists(st.floats(min_value=0.1, max_value=1000.0),
                min_size=1, max_size=30))
@settings(max_examples=50)
def test_cpu_busy_time_at_least_total_demand(demands):
    from repro.sim import Host
    sim = Simulator()
    host = Host(sim, "h")
    for demand in demands:
        host.cpu.execute(demand, lambda: None)
    sim.run()
    assert host.cpu.busy_us >= sum(demands) - 1e-6
