"""Unit tests for the Actor timer/lifecycle base class."""

import pytest

from repro.sim import Actor, Host, Process, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=0)


@pytest.fixture
def process(sim):
    return Process(Host(sim, "h1"), "proc")


def test_one_shot_timer_fires(sim, process):
    actor = Actor(process)
    fired = []
    actor.set_timer("t", 10.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]


def test_rearming_timer_cancels_previous(sim, process):
    actor = Actor(process)
    fired = []
    actor.set_timer("t", 10.0, fired.append, "old")
    actor.set_timer("t", 20.0, fired.append, "new")
    sim.run()
    assert fired == ["new"]


def test_cancel_timer(sim, process):
    actor = Actor(process)
    fired = []
    actor.set_timer("t", 10.0, fired.append, "x")
    actor.cancel_timer("t")
    sim.run()
    assert fired == []


def test_cancel_unknown_timer_is_noop(sim, process):
    Actor(process).cancel_timer("nothing")


def test_timer_pending(sim, process):
    actor = Actor(process)
    actor.set_timer("t", 10.0, lambda: None)
    assert actor.timer_pending("t")
    sim.run()
    assert not actor.timer_pending("t")


def test_periodic_timer_refires(sim, process):
    actor = Actor(process)
    ticks = []
    actor.set_periodic_timer("hb", 100.0, lambda: ticks.append(sim.now))
    sim.run(until=450.0)
    assert ticks == [100.0, 200.0, 300.0, 400.0]


def test_periodic_timer_stops_on_cancel(sim, process):
    actor = Actor(process)
    ticks = []
    actor.set_periodic_timer("hb", 100.0, lambda: ticks.append(sim.now))
    sim.schedule(250.0, lambda: actor.cancel_timer("hb"))
    sim.run(until=1000.0)
    assert ticks == [100.0, 200.0]


def test_timers_die_with_process(sim, process):
    actor = Actor(process)
    fired = []
    actor.set_timer("t", 100.0, fired.append, "x")
    actor.set_periodic_timer("hb", 50.0, lambda: fired.append("hb"))
    sim.schedule(10.0, process.kill)
    sim.run(until=1000.0)
    assert fired == []


def test_on_stop_hook_called_once(sim, process):
    stops = []

    class Stoppable(Actor):
        def on_stop(self):
            stops.append(1)

    Stoppable(process)
    process.kill()
    process.kill()
    assert stops == [1]


def test_set_timer_on_dead_actor_is_noop(sim, process):
    actor = Actor(process)
    process.kill()
    actor.set_timer("t", 1.0, lambda: None)
    actor.set_periodic_timer("p", 1.0, lambda: None)
    sim.run()
    assert not actor.timer_pending("t")


def test_trace_records_actor_name(sim, process):
    actor = Actor(process, name="my-actor")
    actor.trace("test.cat", "hello", value=1)
    rec = sim.trace.last("test.cat")
    assert rec is not None
    assert rec.data["actor"] == "my-actor"
    assert rec.data["value"] == 1


def test_alive_tracks_process(sim, process):
    actor = Actor(process)
    assert actor.alive
    process.kill()
    assert not actor.alive
