"""Unit tests for hosts, CPUs and processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Host, Process, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def host(sim):
    return Host(sim, "node1")


class TestCpu:
    def test_single_job_completes_after_demand(self, sim, host):
        done = []
        host.cpu.execute(100.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [100.0]

    def test_jobs_serialize_fifo(self, sim, host):
        done = []
        host.cpu.execute(100.0, lambda: done.append(("a", sim.now)))
        host.cpu.execute(50.0, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done[0][0] == "a"
        assert done[1][0] == "b"
        # Second job starts only after the first finishes.
        assert done[1][1] >= 150.0

    def test_queued_job_pays_context_switch(self, sim, host):
        host.cpu.execute(100.0, lambda: None)
        host.cpu.execute(50.0, lambda: None)
        done = []
        sim.schedule(0.0, lambda: None)
        sim.run()
        # 100 + 50 + one context switch (5 us default).
        assert host.cpu.busy_us == pytest.approx(155.0)

    def test_faster_cpu_finishes_sooner(self, sim):
        from repro.sim import HostCalibration
        fast = Host(sim, "fast", calibration=HostCalibration(speed=2.0))
        done = []
        fast.cpu.execute(100.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [50.0]

    def test_negative_demand_rejected(self, sim, host):
        with pytest.raises(SimulationError):
            host.cpu.execute(-1.0, lambda: None)

    def test_queue_delay_reflects_backlog(self, sim, host):
        host.cpu.execute(200.0, lambda: None)
        assert host.cpu.queue_delay_us == pytest.approx(200.0)

    def test_utilization_bounded(self, sim, host):
        host.cpu.execute(100.0, lambda: None)
        sim.run(until=200.0)
        util = host.cpu.utilization(window_start=0.0)
        assert 0.0 < util <= 1.0

    def test_jobs_run_counter(self, sim, host):
        for _ in range(3):
            host.cpu.execute(1.0, lambda: None)
        sim.run()
        assert host.cpu.jobs_run == 3


class TestHostPorts:
    def test_bind_and_deliver(self, sim, host):
        got = []
        host.bind(5000, got.append)
        host.deliver(5000, "hello")
        assert got == ["hello"]

    def test_deliver_to_unbound_port_dropped(self, sim, host):
        host.deliver(9999, "lost")  # must not raise

    def test_double_bind_rejected(self, sim, host):
        host.bind(5000, lambda p: None)
        with pytest.raises(SimulationError):
            host.bind(5000, lambda p: None)

    def test_unbind_then_rebind(self, sim, host):
        host.bind(5000, lambda p: None)
        host.unbind(5000)
        host.bind(5000, lambda p: None)

    def test_ephemeral_ports_unique(self, sim, host):
        ports = {host.allocate_port() for _ in range(100)}
        assert len(ports) == 100

    def test_dead_host_drops_frames(self, sim, host):
        got = []
        host.bind(5000, got.append)
        host.crash()
        host.deliver(5000, "late")
        assert got == []


class TestCrashSemantics:
    def test_crash_kills_all_processes(self, sim, host):
        p1 = Process(host, "server")
        p2 = Process(host, "client")
        host.crash()
        assert not host.alive and not p1.alive and not p2.alive

    def test_crash_is_idempotent(self, sim, host):
        host.crash()
        host.crash()
        assert not host.alive

    def test_process_crash_leaves_host_alive(self, sim, host):
        proc = Process(host, "server")
        proc.kill()
        assert host.alive and not proc.alive

    def test_on_kill_callbacks_fire_once(self, sim, host):
        proc = Process(host, "server")
        calls = []
        proc.on_kill(lambda: calls.append(1))
        proc.kill()
        proc.kill()
        assert calls == [1]

    def test_cannot_start_process_on_dead_host(self, sim, host):
        host.crash()
        with pytest.raises(SimulationError):
            Process(host, "zombie")

    def test_restart_gives_fresh_cpu(self, sim, host):
        host.cpu.execute(100.0, lambda: None)
        sim.run()
        host.crash()
        host.restart()
        assert host.alive
        assert host.cpu.busy_us == 0.0

    def test_crash_recorded_in_trace(self, sim, host):
        host.crash()
        assert sim.trace.count("host.crash") == 1

    def test_pids_unique(self, sim, host):
        p1 = Process(host, "a")
        p2 = Process(host, "b")
        assert p1.pid != p2.pid
