"""Unit tests for the discrete-event kernel."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_and_run_fires_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30.0, fired.append, "c")
    sim.schedule(10.0, fired.append, "a")
    sim.schedule(20.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(5.0, fired.append, label)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42.5]
    assert sim.now == 42.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "early")
    sim.schedule(100.0, fired.append, "late")
    sim.run(until=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=1000.0)
    assert sim.now == 1000.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_non_callable_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(1.0, "not a function")


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(10.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.run()
    handle.cancel()
    assert fired == ["x"]


def test_pending_property():
    sim = Simulator()
    handle = sim.schedule(10.0, lambda: None)
    assert handle.pending
    handle.cancel()
    assert not handle.pending


def test_events_scheduled_during_run_are_dispatched():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 1)
    sim.run()
    assert fired == [1, 2, 3, 4, 5]
    assert sim.now == 4.0


def test_zero_delay_event_fires_at_same_time():
    sim = Simulator()
    times = []
    sim.schedule(10.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [10.0]


def test_max_events_limits_dispatch():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_when_drained():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_pending_events_counts_uncancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    h1.cancel()
    assert sim.pending_events == 1


def test_events_dispatched_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_dispatched == 4


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_determinism_same_seed_same_trace():
    def run(seed):
        sim = Simulator(seed=seed)
        values = []

        def tick(n):
            values.append((sim.now, sim.rng.random()))
            if n > 0:
                sim.schedule(sim.rng.uniform(1, 10), tick, n - 1)

        sim.schedule(0.0, tick, 20)
        sim.run()
        return values

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_run_until_idle_returns_final_time():
    sim = Simulator()
    sim.schedule(123.0, lambda: None)
    assert sim.run_until_idle() == 123.0


def test_repr_mentions_time_and_pending():
    sim = Simulator(seed=3)
    sim.schedule(1.0, lambda: None)
    text = repr(sim)
    assert "pending=1" in text and "seed=3" in text


def test_pending_counter_tracks_dispatch_and_cancel():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(6)]
    assert sim.pending_events == 6
    handles[0].cancel()
    handles[1].cancel()
    handles[1].cancel()  # double cancel must not double-decrement
    assert sim.pending_events == 4
    sim.run(until=4.0)   # dispatches events at t=3 and t=4
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0


def test_cancel_after_fire_does_not_corrupt_counter():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.0)
    handle.cancel()  # already fired: must be a true no-op
    assert sim.pending_events == 1


def test_max_events_not_consumed_by_cancelled_head():
    """A cancelled head popped by run() must not count toward
    max_events, and the budget is re-checked before every pop."""
    sim = Simulator()
    fired = []
    doomed = sim.schedule(1.0, fired.append, "doomed")
    sim.schedule(2.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "b")
    doomed.cancel()
    sim.run(max_events=2)
    assert fired == ["a", "b"]


def test_max_events_zero_dispatches_nothing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.schedule(2.0, fired.append, "y")
    sim.run(max_events=0)
    assert fired == []
    assert sim.now == 0.0


def test_schedule_fast_matches_schedule_semantics():
    def drive(fast):
        sim = Simulator(seed=11)
        out = []

        def tick(n):
            out.append((sim.now, n, sim.rng.random()))
            if n:
                delay = sim.rng.uniform(0.5, 4.0)
                if fast:
                    sim.schedule_fast(delay, tick, n - 1)
                else:
                    sim.schedule(delay, tick, n - 1)

        (sim.schedule_fast if fast else sim.schedule)(1.0, tick, 30)
        sim.run()
        return out

    assert drive(fast=True) == drive(fast=False)


def test_schedule_at_fast_matches_schedule_at():
    sim_a, sim_b = Simulator(), Simulator()
    out_a, out_b = [], []
    for t in (5.0, 1.0, 3.0, 1.0):
        sim_a.schedule_at(t, lambda t=t: out_a.append((sim_a.now, t)))
        sim_b.schedule_at_fast(t, lambda t=t: out_b.append((sim_b.now, t)))
    sim_a.run()
    sim_b.run()
    assert out_a == out_b


def test_heap_compaction_preserves_dispatch_order():
    from repro.sim.kernel import COMPACT_MIN_CANCELLED

    sim = Simulator()
    fired = []
    survivors = []
    doomed = []
    for i in range(2 * COMPACT_MIN_CANCELLED):
        handle = sim.schedule(float(i + 1), fired.append, i)
        (survivors if i % 8 == 0 else doomed).append((i, handle))
    for _, handle in doomed:
        handle.cancel()
    # Compaction has kicked in at least once: the heap is strictly
    # smaller than the number of events ever scheduled.
    assert len(sim._heap) < 2 * COMPACT_MIN_CANCELLED
    assert sim.pending_events == len(survivors)
    sim.run()
    assert fired == [i for i, _ in survivors]


def test_compaction_during_run_is_safe():
    """Mass-cancelling from inside a callback triggers compaction
    while run() iterates; dispatch must continue correctly."""
    from repro.sim.kernel import COMPACT_MIN_CANCELLED

    sim = Simulator()
    fired = []
    handles = [sim.schedule(float(i + 10), fired.append, i)
               for i in range(2 * COMPACT_MIN_CANCELLED)]

    def massacre():
        for handle in handles[:-1]:
            handle.cancel()

    sim.schedule(1.0, massacre)
    sim.schedule(5.0, fired.append, "mid")
    sim.run()
    assert fired == ["mid", len(handles) - 1]
    assert sim.pending_events == 0
