"""Tests for the substrate calibration configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    GcsCalibration,
    HostCalibration,
    InterposeCalibration,
    NetworkCalibration,
    OrbCalibration,
    PAPER_FIG3_BREAKDOWN,
    ReplicationCalibration,
    SubstrateCalibration,
    default_calibration,
)


def test_default_calibration_validates():
    cal = default_calibration()
    cal.validate()


def test_paper_anchor_constants():
    assert PAPER_FIG3_BREAKDOWN["application"] == 15.0
    assert PAPER_FIG3_BREAKDOWN["orb"] == 398.0
    assert PAPER_FIG3_BREAKDOWN["group_communication"] == 620.0
    assert PAPER_FIG3_BREAKDOWN["replicator"] == 154.0


def test_network_validation():
    with pytest.raises(ConfigurationError):
        NetworkCalibration(propagation_us=-1.0).validate()
    with pytest.raises(ConfigurationError):
        NetworkCalibration(bandwidth_bytes_per_us=0.0).validate()


def test_orb_validation():
    with pytest.raises(ConfigurationError):
        OrbCalibration(marshal_fixed_us=-1.0).validate()


def test_gcs_validation():
    with pytest.raises(ConfigurationError):
        GcsCalibration(heartbeat_interval_us=100.0,
                       failure_timeout_us=50.0).validate()
    with pytest.raises(ConfigurationError):
        GcsCalibration(history_limit=2).validate()


def test_interpose_validation():
    with pytest.raises(ConfigurationError):
        InterposeCalibration(intercept_us=-1.0).validate()


def test_replication_validation():
    with pytest.raises(ConfigurationError):
        ReplicationCalibration(checkpoint_per_byte_us=-0.1).validate()


def test_host_validation():
    with pytest.raises(ConfigurationError):
        HostCalibration(speed=0.0).validate()


def test_with_overrides_replaces_sections():
    cal = default_calibration()
    fast = cal.with_overrides(
        network=NetworkCalibration(bandwidth_bytes_per_us=125.0))
    assert fast.network.bandwidth_bytes_per_us == 125.0
    # Untouched sections are preserved, original unmodified.
    assert fast.orb == cal.orb
    assert cal.network.bandwidth_bytes_per_us == 12.5


def test_calibration_is_immutable():
    cal = default_calibration()
    with pytest.raises(Exception):
        cal.network.propagation_us = 1.0  # frozen dataclass


def test_substrate_validate_covers_all_sections():
    broken = SubstrateCalibration(
        host=HostCalibration(speed=-1.0))
    with pytest.raises(ConfigurationError):
        broken.validate()
