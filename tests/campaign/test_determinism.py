"""Regression: a campaign must be reproducible bit-for-bit.

The same `CampaignSpec` with the same base seed has to produce an
identical JSONL results file whether it runs serially or across
worker processes — otherwise stored campaigns could never be
resumed or compared across machines.
"""

from repro.campaign import (
    CampaignSpec,
    ResultsStore,
    derive_trial_seed,
    run_campaign,
)


def spec():
    return CampaignSpec(
        name="determinism", styles=["active", "warm_passive"],
        replica_counts=[2], fault_loads=["none", "process_crash"],
        seeds=[0], n_clients=1, duration_us=200_000.0,
        rate_per_s=100.0, settle_us=400_000.0)


def run_to_bytes(tmp_path, tag, workers):
    store = ResultsStore(str(tmp_path / f"{tag}.jsonl"))
    summary = run_campaign(spec(), store, workers=workers)
    assert summary.failed == 0
    assert summary.ran == summary.total == 4
    return open(store.path, "rb").read()


def test_serial_reruns_are_identical(tmp_path):
    assert run_to_bytes(tmp_path, "one", 1) \
        == run_to_bytes(tmp_path, "two", 1)


def test_parallel_matches_serial_byte_for_byte(tmp_path):
    serial = run_to_bytes(tmp_path, "serial", 1)
    parallel = run_to_bytes(tmp_path, "parallel", 4)
    assert parallel == serial


def test_trial_seed_depends_only_on_spec():
    for trial in spec().expand():
        assert trial.seed == derive_trial_seed(0, trial.trial_id)


def test_base_seed_changes_trial_seeds(tmp_path):
    base = spec()
    shifted = CampaignSpec(
        name=base.name, styles=base.styles,
        replica_counts=base.replica_counts,
        fault_loads=base.fault_loads, seeds=base.seeds,
        n_clients=base.n_clients, duration_us=base.duration_us,
        rate_per_s=base.rate_per_s, settle_us=base.settle_us,
        base_seed=99)
    seeds_a = [t.seed for t in base.expand()]
    seeds_b = [t.seed for t in shifted.expand()]
    assert seeds_a != seeds_b
