"""Campaign runner tests: serial/parallel execution, resume, crash
isolation, progress reporting."""

import multiprocessing
import os

import pytest

from repro.campaign import (
    CampaignSpec,
    ProcessCrash,
    ResultsStore,
    register_load,
    run_campaign,
)
from repro.campaign.dictionary import _LOADS, FaultEntry
from repro.errors import ConfigurationError

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def tiny_spec(**overrides):
    defaults = dict(name="runner-test", styles=["active"],
                    replica_counts=[2], fault_loads=["none",
                                                     "process_crash"],
                    seeds=[0], n_clients=1, duration_us=200_000.0,
                    rate_per_s=100.0, settle_us=400_000.0)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def test_serial_campaign_records_every_trial(tmp_path):
    store = ResultsStore(str(tmp_path / "r.jsonl"))
    spec = tiny_spec()
    summary = run_campaign(spec, store, workers=1)
    assert summary.total == 2
    assert summary.ran == 2
    assert summary.skipped == 0
    assert summary.failed == 0
    records = store.records()
    assert [r.trial_id for r in records] \
        == [t.trial_id for t in spec.expand()]
    for record in records:
        assert record.ok
        assert record.metrics["sent"] > 0
        assert 0.0 <= record.metrics["availability"] <= 1.0


def test_resume_skips_recorded_trials(tmp_path):
    store = ResultsStore(str(tmp_path / "r.jsonl"))
    spec = tiny_spec()
    run_campaign(spec, store, workers=1)
    full = open(store.path, "rb").read()

    # Simulate an interruption: keep only the first trial's record.
    lines = full.splitlines(keepends=True)
    with open(store.path, "wb") as handle:
        handle.write(lines[0])
    summary = run_campaign(spec, store, workers=1)
    assert summary.skipped == 1
    assert summary.ran == 1
    # The resumed store is byte-identical to the uninterrupted one.
    assert open(store.path, "rb").read() == full


def test_rerun_of_complete_campaign_is_a_noop(tmp_path):
    store = ResultsStore(str(tmp_path / "r.jsonl"))
    spec = tiny_spec()
    run_campaign(spec, store, workers=1)
    before = open(store.path, "rb").read()
    summary = run_campaign(spec, store, workers=1)
    assert summary.ran == 0
    assert summary.skipped == 2
    assert open(store.path, "rb").read() == before


def test_progress_callback_sees_every_trial(tmp_path):
    store = ResultsStore(str(tmp_path / "r.jsonl"))
    seen = []
    run_campaign(tiny_spec(), store, workers=1,
                 progress=lambda done, total, record:
                 seen.append((done, total, record.trial_id)))
    assert [s[0] for s in seen] == [1, 2]
    assert all(s[1] == 2 for s in seen)


class _ExplodingFault(FaultEntry):
    def schedule(self, ctx):
        raise RuntimeError("deliberate trial explosion")


class _WorkerKillingFault(FaultEntry):
    def schedule(self, ctx):
        os._exit(13)  # simulates a segfaulting worker


def test_serial_crash_isolation(tmp_path):
    register_load("exploding", (_ExplodingFault(),), replace=True)
    try:
        store = ResultsStore(str(tmp_path / "r.jsonl"))
        spec = tiny_spec(fault_loads=["none", "exploding"])
        summary = run_campaign(spec, store, workers=1)
        assert summary.failed == 1
        by_id = {r.trial_id: r for r in store.records()}
        failed = [r for r in by_id.values() if not r.ok]
        assert len(failed) == 1
        assert "deliberate trial explosion" in failed[0].error
        # The healthy trial still completed.
        assert sum(1 for r in by_id.values() if r.ok) == 1
    finally:
        _LOADS.pop("exploding", None)


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_parallel_worker_exception_isolated(tmp_path):
    register_load("exploding", (_ExplodingFault(),), replace=True)
    try:
        store = ResultsStore(str(tmp_path / "r.jsonl"))
        spec = tiny_spec(fault_loads=["exploding", "none"])
        summary = run_campaign(spec, store, workers=2)
        assert summary.failed == 1
        assert summary.ran == 2
        statuses = {r.trial_id: r.status for r in store.records()}
        assert sorted(statuses.values()) == ["failed", "ok"]
    finally:
        _LOADS.pop("exploding", None)


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_parallel_worker_death_isolated(tmp_path):
    register_load("worker_killer", (_WorkerKillingFault(),),
                  replace=True)
    try:
        store = ResultsStore(str(tmp_path / "r.jsonl"))
        spec = tiny_spec(fault_loads=["worker_killer", "none"])
        summary = run_campaign(spec, store, workers=2)
        assert summary.failed == 1
        failed = [r for r in store.records() if not r.ok]
        assert len(failed) == 1
        # EOF and process death race; either way the error is recorded.
        assert failed[0].error
    finally:
        _LOADS.pop("worker_killer", None)


def test_runner_validates_arguments(tmp_path):
    store = ResultsStore(str(tmp_path / "r.jsonl"))
    with pytest.raises(ConfigurationError):
        run_campaign(tiny_spec(), store, workers=0)
    with pytest.raises(ConfigurationError):
        run_campaign(tiny_spec(), store, workers=1, trial_timeout_s=0)


def test_custom_entry_requires_schedule():
    entry = FaultEntry()
    with pytest.raises(NotImplementedError):
        entry.schedule(None)


def test_process_crash_entry_defaults():
    assert ProcessCrash().replica_index == 0


def test_serial_campaign_journal_capture(tmp_path):
    from repro.journal import read_jsonl

    store = ResultsStore(str(tmp_path / "r.jsonl"))
    spec = tiny_spec()
    journal_dir = str(tmp_path / "journals")
    summary = run_campaign(spec, store, workers=1,
                           journal_dir=journal_dir)
    assert summary.failed == 0
    for record in store.records():
        assert record.ok
        digest = record.metrics["journal"]
        path = os.path.join(journal_dir,
                            f"{record.trial_id}.journal.jsonl")
        assert len(read_jsonl(path)) == digest["events"]
        assert digest["faults_injected"] == \
            digest["faults_matched"] + digest["faults_missed"]


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_parallel_campaign_journal_matches_serial(tmp_path):
    serial_store = ResultsStore(str(tmp_path / "serial.jsonl"))
    parallel_store = ResultsStore(str(tmp_path / "parallel.jsonl"))
    serial_dir = tmp_path / "serial-j"
    parallel_dir = tmp_path / "parallel-j"
    spec = tiny_spec()
    run_campaign(spec, serial_store, workers=1,
                 journal_dir=str(serial_dir))
    run_campaign(spec, parallel_store, workers=2,
                 journal_dir=str(parallel_dir))
    for trial in spec.expand():
        name = f"{trial.trial_id}.journal.jsonl"
        assert (serial_dir / name).read_bytes() == \
            (parallel_dir / name).read_bytes()
