"""Fault-dictionary tests: every entry compiles onto a live trial."""

import pytest

from repro.campaign import (
    LossBurst,
    ProcessCrash,
    available_loads,
    compile_load,
    fault_load,
    register_load,
)
from repro.campaign.dictionary import _LOADS
from repro.errors import ConfigurationError
from repro.experiments import run_fault_trial
from repro.replication import ReplicationStyle


def run_with_load(name, **kwargs):
    defaults = dict(style=ReplicationStyle.ACTIVE, n_replicas=2,
                    n_clients=1, duration_us=300_000.0, rate_per_s=100.0,
                    seed=3, settle_us=400_000.0,
                    inject=lambda ctx: compile_load(name, ctx))
    defaults.update(kwargs)
    return run_fault_trial(**defaults)


def test_every_builtin_load_compiles_and_runs():
    for name in available_loads():
        result = run_with_load(name)
        assert len(result.injected) == len(fault_load(name)), name
        assert result.sent > 0, name


def test_none_load_injects_nothing():
    result = run_with_load("none")
    assert result.injected == []
    assert result.availability == 1.0


def test_process_crash_targets_primary_by_default():
    result = run_with_load("process_crash")
    assert result.injected[0].kind == "process_crash"
    assert result.injected[0].target.endswith("r1")


def test_crash_and_restart_records_recovery_window():
    result = run_with_load("crash_and_restart", duration_us=400_000.0,
                           settle_us=1_500_000.0)
    fault = result.injected[0]
    assert fault.kind == "crash_restart"
    assert fault.until_us > fault.at_us


def test_composite_load_schedules_all_entries():
    result = run_with_load("crash_under_loss")
    assert sorted(f.kind for f in result.injected) \
        == ["loss_burst", "process_crash"]


def test_unknown_load_rejected():
    with pytest.raises(ConfigurationError):
        fault_load("nope")


def test_register_load_and_replace_guard():
    try:
        register_load("custom_test_load",
                      (ProcessCrash(at_fraction=0.5),
                       LossBurst(rate=0.5)))
        assert "custom_test_load" in available_loads()
        with pytest.raises(ConfigurationError):
            register_load("custom_test_load", ())
        register_load("custom_test_load", (), replace=True)
        assert fault_load("custom_test_load") == ()
    finally:
        _LOADS.pop("custom_test_load", None)


def test_bad_fraction_rejected_at_schedule_time():
    with pytest.raises(ConfigurationError):
        run_with_load("bad_fraction_load_missing")
    try:
        register_load("bad_fraction", (ProcessCrash(at_fraction=1.5),))
        with pytest.raises(ConfigurationError):
            run_with_load("bad_fraction")
    finally:
        _LOADS.pop("bad_fraction", None)


def test_topology_loads_registered():
    assert {"partition", "asym_partition", "flaky_link", "slow_host",
            "partition_under_load"} <= set(available_loads())


def test_partition_load_schedules_split_and_heal():
    result = run_with_load("partition", n_replicas=3)
    (fault,) = result.injected
    assert fault.kind == "partition"
    assert fault.until_us > fault.at_us


def test_gray_failure_loads_record_their_kind():
    for name, kind in (("asym_partition", "asym_partition"),
                       ("flaky_link", "flaky_link"),
                       ("slow_host", "slow_host")):
        result = run_with_load(name, n_replicas=3)
        assert [f.kind for f in result.injected] == [kind], name


def test_partition_under_load_is_a_composite():
    result = run_with_load("partition_under_load", n_replicas=3)
    assert sorted(f.kind for f in result.injected) \
        == ["partition", "slow_host"]
