"""Campaign/trial specification tests: validation, expansion, JSON."""

import pytest

from repro.campaign import CampaignSpec, TrialSpec, derive_trial_seed
from repro.errors import ConfigurationError


def small_spec(**overrides):
    defaults = dict(name="t", styles=["active"], replica_counts=[2],
                    fault_loads=["none"], seeds=[0],
                    duration_us=100_000.0, rate_per_s=100.0)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def test_grid_expansion_is_full_product():
    spec = small_spec(styles=["active", "warm_passive"],
                      replica_counts=[2, 3],
                      checkpoint_intervals=[1, 5],
                      fault_loads=["none", "process_crash"],
                      seeds=[0, 1, 2])
    trials = spec.expand()
    assert len(trials) == 2 * 2 * 2 * 2 * 3
    assert len({t.trial_id for t in trials}) == len(trials)


def test_expansion_is_deterministic():
    a = [t.trial_id for t in small_spec(seeds=[0, 1]).expand()]
    b = [t.trial_id for t in small_spec(seeds=[0, 1]).expand()]
    assert a == b
    seeds_a = [t.seed for t in small_spec(seeds=[0, 1]).expand()]
    seeds_b = [t.seed for t in small_spec(seeds=[0, 1]).expand()]
    assert seeds_a == seeds_b


def test_trial_seeds_differ_per_trial_and_base_seed():
    spec = small_spec(styles=["active", "warm_passive"], seeds=[0, 1])
    seeds = [t.seed for t in spec.expand()]
    assert len(set(seeds)) == len(seeds)
    reseeded = [t.seed for t in small_spec(
        styles=["active", "warm_passive"], seeds=[0, 1],
        base_seed=7).expand()]
    assert seeds != reseeded


def test_derive_trial_seed_stable():
    # Pinned: a changed derivation silently invalidates stored results.
    assert derive_trial_seed(0, "a") == derive_trial_seed(0, "a")
    assert derive_trial_seed(0, "a") != derive_trial_seed(1, "a")
    assert derive_trial_seed(0, "a") >= 0


def test_random_sample_is_seeded_subset():
    spec = small_spec(styles=["active", "warm_passive"],
                      replica_counts=[2, 3], seeds=[0, 1, 2], sample=5)
    sampled = spec.expand()
    assert len(sampled) == 5
    assert [t.trial_id for t in sampled] \
        == [t.trial_id for t in spec.expand()]
    grid_ids = {t.trial_id
                for t in small_spec(styles=["active", "warm_passive"],
                                    replica_counts=[2, 3],
                                    seeds=[0, 1, 2]).expand()}
    assert all(t.trial_id in grid_ids for t in sampled)


def test_json_round_trip():
    spec = small_spec(styles=["active", "warm_passive"], sample=1)
    clone = CampaignSpec.from_json(spec.to_json())
    assert clone == spec
    assert [t.trial_id for t in clone.expand()] \
        == [t.trial_id for t in spec.expand()]


def test_from_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(small_spec().to_json())
    assert CampaignSpec.from_file(str(path)).name == "t"


@pytest.mark.parametrize("overrides", [
    dict(name=""),
    dict(styles=[]),
    dict(styles=["imaginary"]),
    dict(styles=["active", "active"]),
    dict(replica_counts=[0]),
    dict(fault_loads=["not-a-load"]),
    dict(seeds=[]),
    dict(duration_us=0.0),
    dict(rate_per_s=-1.0),
    dict(sample=0),
    dict(version=99),
])
def test_bad_specs_rejected(overrides):
    with pytest.raises(ConfigurationError):
        small_spec(**overrides).validate()


def test_bad_json_rejected():
    with pytest.raises(ConfigurationError):
        CampaignSpec.from_json("not json{")
    with pytest.raises(ConfigurationError):
        CampaignSpec.from_json("[1, 2]")
    with pytest.raises(ConfigurationError):
        CampaignSpec.from_json('{"name": "x", "unknown_field": 1}')


def test_trial_spec_round_trip_and_config_key():
    trial = small_spec().expand()[0]
    clone = TrialSpec.from_dict(trial.to_dict())
    assert clone == trial
    assert clone.config_key == "A(2)/k1"
    assert clone.replication_style.value == "active"


def test_trial_spec_validation():
    trial = small_spec().expand()[0].to_dict()
    trial["fault_load"] = "bogus"
    with pytest.raises(ConfigurationError):
        TrialSpec.from_dict(trial)
