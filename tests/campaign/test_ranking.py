"""Ranking tests: Pareto extraction, weighted rank, design-space glue."""

import pytest

from repro.campaign import (
    DependabilityScore,
    RankWeights,
    dominates,
    pareto_front,
    rank,
    to_design_space,
)
from repro.errors import ConfigurationError, PolicyError
from repro.replication import ReplicationStyle


def score(key, dep, lat, cost, style="active", n_replicas=2):
    # dependability is derived; pick availability to hit `dep` exactly.
    return DependabilityScore(
        config_key=key, style=style, n_replicas=n_replicas,
        checkpoint_interval=1, n_clients=2, n_trials=3,
        availability=dep, failed_fraction=0.0, late_fraction=0.0,
        mean_recovery_us=0.0, latency_us=lat, bandwidth_mbps=0.5,
        resource_cost=cost)


def test_dominates():
    good = score("a", 0.9, 1000.0, 0.2)
    bad = score("b", 0.8, 2000.0, 0.4)
    tied = score("c", 0.9, 1000.0, 0.2)
    assert dominates(good, bad)
    assert not dominates(bad, good)
    assert not dominates(good, tied)  # equal on all axes: no strict edge


def test_pareto_front_extraction():
    scores = [
        score("best-dep", 0.95, 3000.0, 0.5),
        score("best-lat", 0.80, 800.0, 0.4),
        score("best-cost", 0.70, 2500.0, 0.1),
        score("dominated", 0.70, 3500.0, 0.6),
    ]
    front = pareto_front(scores)
    assert [s.config_key for s in front] \
        == ["best-dep", "best-lat", "best-cost"]


def test_pareto_front_single_point():
    only = score("a", 0.9, 1000.0, 0.2)
    assert pareto_front([only]) == [only]
    assert pareto_front([]) == []


def test_weighted_rank_orders_best_first():
    scores = [
        score("balanced", 0.9, 1000.0, 0.2),
        score("slow", 0.9, 4000.0, 0.2),
        score("fragile", 0.5, 1000.0, 0.2),
    ]
    ranked = rank(scores)
    assert ranked[0][0].config_key == "balanced"
    values = [v for _, v in ranked]
    assert values == sorted(values, reverse=True)
    assert all(0.0 <= v <= 1.0 for v in values)


def test_rank_respects_weights():
    scores = [
        score("dependable-but-slow", 0.99, 5000.0, 0.5),
        score("fast-but-fragile", 0.60, 500.0, 0.5),
    ]
    by_dep = rank(scores, RankWeights(1.0, 0.0, 0.0))
    assert by_dep[0][0].config_key == "dependable-but-slow"
    by_lat = rank(scores, RankWeights(0.0, 1.0, 0.0))
    assert by_lat[0][0].config_key == "fast-but-fragile"


def test_rank_validates():
    with pytest.raises(PolicyError):
        rank([])
    with pytest.raises(ConfigurationError):
        RankWeights(-1.0, 0.5, 0.5)
    with pytest.raises(ConfigurationError):
        RankWeights(0.0, 0.0, 0.0)


def test_to_design_space_reuses_core_machinery():
    scores = [
        score("a2", 0.9, 1000.0, 0.2, style="active"),
        score("a3", 0.95, 1200.0, 0.3, style="active", n_replicas=3),
        score("p2", 0.7, 2000.0, 0.1, style="warm_passive"),
    ]
    space = to_design_space(scores)
    assert len(space.points) == 3
    active = space.region(ReplicationStyle.ACTIVE)
    assert len(active) == 2
    assert all(0.0 <= p.fault_tolerance <= 1.0 for p in space.points)
    assert all(0.0 <= p.resources <= 1.0 for p in space.points)
    # the worst-latency point scores zero performance
    worst = min(space.points, key=lambda p: p.performance)
    assert worst.performance == pytest.approx(0.0)
    assert 0.0 <= space.coverage_volume() <= 1.0
    with pytest.raises(PolicyError):
        to_design_space([])
