"""Results-store tests: persistence, resume, schema, aggregation."""

import json

import pytest

from repro.campaign import (
    SCHEMA_VERSION,
    CampaignSpec,
    DependabilityScore,
    ResultsStore,
    TrialRecord,
    aggregate_scores,
)
from repro.errors import ConfigurationError


def make_trial(fault="none", seed=0, style="active", n_replicas=2):
    spec = CampaignSpec(name="t", styles=[style],
                        replica_counts=[n_replicas],
                        fault_loads=[fault], seeds=[seed],
                        duration_us=100_000.0, rate_per_s=100.0)
    return spec.expand()[0]


def ok_record(trial, **metrics):
    base = dict(sent=100, completed=100, failed=0, late=0,
                failed_fraction=0.0, late_fraction=0.0,
                availability=1.0, mean_recovery_us=0.0,
                latency_mean_us=1500.0, jitter_us=10.0,
                bandwidth_mbps=0.5, wire_bytes=1e6,
                duration_us=100_000.0, faults=[])
    base.update(metrics)
    return TrialRecord(trial_id=trial.trial_id, status="ok",
                       spec=trial.to_dict(), metrics=base)


def test_append_and_reload(tmp_path):
    store = ResultsStore(str(tmp_path / "r.jsonl"))
    assert store.records() == []
    record = ok_record(make_trial())
    store.append(record)
    store.append(TrialRecord(trial_id="x", status="failed",
                             spec=make_trial(seed=0).to_dict(),
                             error="boom"))
    loaded = store.records()
    assert len(loaded) == 2
    assert loaded[0] == record
    assert loaded[1].error == "boom"
    assert not loaded[1].ok


def test_completed_ids_resume_semantics(tmp_path):
    store = ResultsStore(str(tmp_path / "r.jsonl"))
    trial = make_trial()
    store.append(ok_record(trial))
    store.append(TrialRecord(trial_id="failed-one", status="timeout",
                             spec=trial.to_dict(), error="slow"))
    assert store.completed_ids() == {trial.trial_id}
    assert store.completed_ids(include_failed=True) \
        == {trial.trial_id, "failed-one"}


def test_torn_final_line_is_dropped(tmp_path):
    path = tmp_path / "r.jsonl"
    store = ResultsStore(str(path))
    store.append(ok_record(make_trial()))
    with open(path, "a") as handle:
        handle.write('{"schema": 1, "trial_id": "half')  # killed mid-write
    assert len(store.records()) == 1


def test_mid_file_corruption_raises(tmp_path):
    path = tmp_path / "r.jsonl"
    store = ResultsStore(str(path))
    store.append(ok_record(make_trial()))
    with open(path, "a") as handle:
        handle.write("garbage\n")
        handle.write(ok_record(make_trial(seed=0)).to_line() + "\n")
    with pytest.raises(ConfigurationError):
        store.records()


def test_newer_schema_rejected(tmp_path):
    path = tmp_path / "r.jsonl"
    line = ok_record(make_trial()).to_line()
    data = json.loads(line)
    data["schema"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(data) + "\n" + line + "\n")
    with pytest.raises(ConfigurationError):
        ResultsStore(str(path)).records()


def test_record_line_is_canonical():
    record = ok_record(make_trial())
    line = record.to_line()
    assert "\n" not in line
    assert TrialRecord.from_line(line).to_line() == line


def test_bad_status_rejected():
    with pytest.raises(ConfigurationError):
        TrialRecord(trial_id="x", status="exploded", spec={})


def test_clear(tmp_path):
    store = ResultsStore(str(tmp_path / "r.jsonl"))
    store.append(ok_record(make_trial()))
    store.clear()
    assert not store.exists()
    store.clear()  # idempotent


def test_aggregation_groups_by_configuration():
    records = [
        ok_record(make_trial(fault="none"), availability=1.0,
                  latency_mean_us=1000.0),
        ok_record(make_trial(fault="process_crash"), availability=0.8,
                  latency_mean_us=3000.0, failed_fraction=0.1),
        ok_record(make_trial(style="warm_passive"), availability=0.9,
                  latency_mean_us=2000.0),
    ]
    scores = aggregate_scores(records)
    assert [s.config_key for s in scores] == ["A(2)/k1", "P(2)/k1"]
    active = scores[0]
    assert active.n_trials == 2
    assert active.availability == pytest.approx(0.9)
    assert active.latency_us == pytest.approx(2000.0)
    assert active.failed_fraction == pytest.approx(0.05)
    assert 0.0 < active.dependability <= 1.0
    assert active.resource_cost > 0


def test_failed_trials_score_as_total_outage():
    trial = make_trial()
    perfect = aggregate_scores([ok_record(trial)])[0]
    with_failure = aggregate_scores([
        ok_record(trial),
        TrialRecord(trial_id="other", status="failed",
                    spec=make_trial(fault="process_crash").to_dict(),
                    error="worker died"),
    ])[0]
    assert with_failure.availability == pytest.approx(0.5)
    assert with_failure.failed_fraction == pytest.approx(0.5)
    assert with_failure.dependability < perfect.dependability


def test_dependability_score_properties():
    score = DependabilityScore(
        config_key="A(3)/k1", style="active", n_replicas=3,
        checkpoint_interval=1, n_clients=2, n_trials=4,
        availability=0.9, failed_fraction=0.1, late_fraction=0.2,
        mean_recovery_us=100.0, latency_us=1000.0,
        bandwidth_mbps=0.4, resource_cost=0.2)
    assert score.dependability == pytest.approx(0.9 * 0.9 * 0.8)
    assert score.faults_tolerated == 2
