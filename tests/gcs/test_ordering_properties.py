"""Property-based tests of the GCS ordering guarantees."""

from hypothesis import given, settings, strategies as st

from repro.gcs import Grade
from tests.support import Cluster, RecordingListener

# Small alphabet of (sender_index, round) send operations.
send_plans = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),
              st.integers(min_value=0, max_value=9)),
    min_size=1, max_size=25)


def _three_member_rig(seed):
    cluster = Cluster(["h1", "h2", "h3"], seed=seed)
    clients, listeners = [], []
    for i, host in enumerate(["h1", "h2", "h3"]):
        _, c = cluster.client(host, f"m{i}")
        listener = RecordingListener()
        c.join("grp", listener)
        clients.append(c)
        listeners.append(listener)
    cluster.run(80_000)
    return cluster, clients, listeners


@given(send_plans, st.integers(min_value=0, max_value=5))
@settings(max_examples=15, deadline=None)
def test_agreed_total_order_property(plan, seed):
    """Whatever the interleaving of senders, AGREED delivery order is
    identical at every member and loses nothing."""
    cluster, clients, listeners = _three_member_rig(seed)
    for sender, tag in plan:
        clients[sender].multicast("grp", (sender, tag), nbytes=20,
                                  grade=Grade.AGREED)
    cluster.run(2_000_000)
    sequences = [listener.payloads for listener in listeners]
    assert sequences[0] == sequences[1] == sequences[2]
    assert len(sequences[0]) == len(plan)


@given(send_plans, st.integers(min_value=0, max_value=5))
@settings(max_examples=15, deadline=None)
def test_fifo_per_sender_order_property(plan, seed):
    """FIFO grade: each receiver sees every sender's messages in that
    sender's send order (cross-sender interleaving is free)."""
    cluster, clients, listeners = _three_member_rig(seed)
    per_sender_sent = {0: [], 1: [], 2: []}
    for sequence_number, (sender, tag) in enumerate(plan):
        payload = (sender, sequence_number)
        per_sender_sent[sender].append(payload)
        clients[sender].multicast("grp", payload, nbytes=20,
                                  grade=Grade.FIFO)
    cluster.run(2_000_000)
    for listener in listeners:
        for sender in (0, 1, 2):
            received = [p for p in listener.payloads if p[0] == sender]
            assert received == per_sender_sent[sender]


@given(send_plans, st.integers(min_value=0, max_value=5))
@settings(max_examples=10, deadline=None)
def test_causal_delivery_respects_local_send_order(plan, seed):
    """CAUSAL grade: messages from one daemon are causally ordered, so
    per-sender order is preserved and everything is delivered."""
    cluster, clients, listeners = _three_member_rig(seed)
    for sequence_number, (sender, tag) in enumerate(plan):
        clients[sender].multicast("grp", (sender, sequence_number),
                                  nbytes=20, grade=Grade.CAUSAL)
    cluster.run(2_000_000)
    for listener in listeners:
        assert len(listener.payloads) == len(plan)
        for sender in (0, 1, 2):
            received = [p[1] for p in listener.payloads if p[0] == sender]
            assert received == sorted(received)


@given(send_plans, st.integers(min_value=0, max_value=5))
@settings(max_examples=10, deadline=None)
def test_safe_total_order_property(plan, seed):
    """SAFE delivery is totally ordered and complete, like AGREED."""
    cluster, clients, listeners = _three_member_rig(seed)
    for sender, tag in plan:
        clients[sender].multicast("grp", (sender, tag), nbytes=20,
                                  grade=Grade.SAFE)
    cluster.run(3_000_000)
    sequences = [listener.payloads for listener in listeners]
    assert sequences[0] == sequences[1] == sequences[2]
    assert len(sequences[0]) == len(plan)
