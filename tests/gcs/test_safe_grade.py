"""Tests for the SAFE delivery grade (Spread's strongest guarantee)."""

import pytest

from repro.gcs import Grade
from repro.net import BurstLoss
from tests.support import Cluster, RecordingListener

FAILOVER_US = 1_500_000


def _rig(hosts=("h1", "h2", "h3"), seed=0):
    cluster = Cluster(list(hosts), seed=seed)
    clients, listeners = [], []
    for i, host in enumerate(hosts):
        _, c = cluster.client(host, f"m{i}")
        listener = RecordingListener()
        c.join("grp", listener)
        clients.append(c)
        listeners.append(listener)
    cluster.run(80_000)
    return cluster, clients, listeners


def test_safe_message_delivered_to_all():
    cluster, clients, listeners = _rig()
    clients[0].multicast("grp", "precious", nbytes=64, grade=Grade.SAFE)
    cluster.run(200_000)
    for listener in listeners:
        assert listener.payloads == ["precious"]


def test_safe_slower_than_agreed():
    """SAFE pays an extra ack round before delivery."""
    def first_delivery_time(grade):
        cluster, clients, listeners = _rig()
        start = cluster.sim.now
        clients[0].multicast("grp", "probe", nbytes=64, grade=grade)
        while not listeners[2].payloads:
            cluster.run(100)
        return cluster.sim.now - start

    agreed = first_delivery_time(Grade.AGREED)
    safe = first_delivery_time(Grade.SAFE)
    # At least one extra network round trip (ack to sequencer +
    # release back).
    assert safe > agreed + 200.0


def test_safe_total_order_with_agreed_interleaving():
    """SAFE and AGREED messages to the same group are delivered in
    one consistent total order at every member."""
    cluster, clients, listeners = _rig()
    for i in range(6):
        grade = Grade.SAFE if i % 2 == 0 else Grade.AGREED
        clients[i % 3].multicast("grp", f"m{i}", nbytes=32, grade=grade)
    cluster.run(2_000_000)
    sequences = [listener.payloads for listener in listeners]
    assert len(sequences[0]) == 6
    assert sequences[0] == sequences[1] == sequences[2]


def test_safe_survives_loss():
    cluster, clients, listeners = _rig(seed=5)
    start = cluster.sim.now
    cluster.network.add_loss_model(BurstLoss(start, start + 100_000,
                                             rate=0.5))
    for i in range(5):
        clients[0].multicast("grp", i, nbytes=32, grade=Grade.SAFE)
    cluster.run(5_000_000)
    for listener in listeners:
        assert listener.payloads == [0, 1, 2, 3, 4]


def test_safe_held_messages_released_on_view_change():
    """A member daemon crashing mid-protocol must not strand held
    SAFE messages: survivors deliver them at the view change."""
    cluster, clients, listeners = _rig(hosts=("h1", "h2", "h3", "h4"),
                                       seed=7)
    # Crash h4 and immediately send SAFE traffic: acks from h4 will
    # never arrive, so release only happens via the view change.
    cluster.hosts["h4"].crash()
    for i in range(3):
        clients[0].multicast("grp", f"s{i}", nbytes=32, grade=Grade.SAFE)
    cluster.run(3 * FAILOVER_US)
    for listener in listeners[:3]:
        assert listener.payloads == ["s0", "s1", "s2"]


def test_safe_sequencer_crash_mid_protocol():
    cluster, clients, listeners = _rig(seed=9)
    clients[1].multicast("grp", "survives", nbytes=32, grade=Grade.SAFE)
    cluster.hosts["h1"].crash()  # sequencer dies
    cluster.run(3 * FAILOVER_US)
    # The survivors deliver the message exactly once.
    assert listeners[1].payloads.count("survives") == 1
    assert listeners[2].payloads.count("survives") == 1


def test_safe_from_non_member():
    cluster = Cluster(["h1", "h2"])
    _, server = cluster.client("h1", "server")
    _, outsider = cluster.client("h2", "client")
    listener = RecordingListener()
    server.join("grp", listener)
    cluster.run(80_000)
    outsider.multicast("grp", "open-safe", nbytes=32, grade=Grade.SAFE)
    cluster.run(300_000)
    assert listener.payloads == ["open-safe"]
