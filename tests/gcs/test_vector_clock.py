"""Unit and property-based tests for vector clocks."""

import pytest
from hypothesis import given, strategies as st

from repro.gcs import VectorClock

keys = st.sampled_from(["a", "b", "c", "d"])
clocks = st.dictionaries(keys, st.integers(min_value=0, max_value=10))


def test_empty_clock_reads_zero():
    vc = VectorClock()
    assert vc.get("anything") == 0


def test_tick_increments():
    vc = VectorClock()
    vc.tick("a").tick("a").tick("b")
    assert vc.get("a") == 2 and vc.get("b") == 1


def test_negative_entries_rejected():
    with pytest.raises(ValueError):
        VectorClock({"a": -1})


def test_merge_is_pointwise_max():
    vc = VectorClock({"a": 1, "b": 5})
    vc.merge({"a": 3, "c": 2})
    assert vc.snapshot() == {"a": 3, "b": 5, "c": 2}


def test_happened_before():
    earlier = VectorClock({"a": 1})
    later = VectorClock({"a": 2, "b": 1})
    assert earlier.happened_before(later)
    assert not later.happened_before(earlier)


def test_concurrent():
    x = VectorClock({"a": 1})
    y = VectorClock({"b": 1})
    assert x.concurrent_with(y)
    assert y.concurrent_with(x)


def test_equal_clocks_not_concurrent_not_before():
    x = VectorClock({"a": 1})
    y = VectorClock({"a": 1})
    assert not x.happened_before(y)
    assert not x.concurrent_with(y)
    assert x == y


def test_can_deliver_next_from_sender():
    local = VectorClock({"a": 1})
    assert local.can_deliver({"a": 2}, sender="a")
    assert not local.can_deliver({"a": 3}, sender="a")


def test_cannot_deliver_with_missing_dependency():
    local = VectorClock()
    # Message from b that has seen a:1 we have not seen.
    assert not local.can_deliver({"b": 1, "a": 1}, sender="b")


def test_deliver_advances_only_sender_entry():
    local = VectorClock({"a": 1, "b": 2})
    local.deliver({"a": 2, "b": 2}, sender="a")
    assert local.snapshot() == {"a": 2, "b": 2}


def test_deliver_undeliverable_raises():
    local = VectorClock()
    with pytest.raises(ValueError):
        local.deliver({"a": 5}, sender="a")


def test_repr_is_sorted_and_stable():
    assert repr(VectorClock({"b": 2, "a": 1})) == "<VC a:1, b:2>"


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

@given(clocks)
def test_merge_idempotent(counters):
    vc = VectorClock(counters)
    before = vc.snapshot()
    vc.merge(counters)
    assert vc.snapshot() == before


@given(clocks, clocks)
def test_merge_commutative(x, y):
    a = VectorClock(x).merge(y).snapshot()
    b = VectorClock(y).merge(x).snapshot()
    assert VectorClock(a).same_as(b)


@given(clocks, clocks, clocks)
def test_merge_associative(x, y, z):
    a = VectorClock(x).merge(VectorClock(y).merge(z).snapshot())
    b = VectorClock(VectorClock(x).merge(y).snapshot()).merge(z)
    assert a.same_as(b.snapshot())


@given(clocks, clocks)
def test_merge_dominates_both(x, y):
    merged = VectorClock(x).merge(y)
    assert merged.dominates(x)
    assert merged.dominates(y)


@given(clocks, clocks)
def test_order_trichotomy(x, y):
    a, b = VectorClock(x), VectorClock(y)
    relations = [a.happened_before(b), b.happened_before(a),
                 a.concurrent_with(b), a.same_as(y)]
    assert sum(relations) == 1


@given(clocks, keys)
def test_tick_strictly_advances(counters, key):
    before = VectorClock(counters)
    after = VectorClock(counters).tick(key)
    assert before.happened_before(after)


@given(clocks, keys)
def test_sender_sequence_delivery(counters, sender):
    """A sender's (n+1)-th message is deliverable at a receiver that
    has exactly the sender's previous messages and all dependencies."""
    local = VectorClock(counters)
    stamp = dict(counters)
    stamp[sender] = local.get(sender) + 1
    assert local.can_deliver(stamp, sender)
    local.deliver(stamp, sender)
    assert not local.can_deliver(stamp, sender)  # no double delivery
