"""Unit tests for the GcsClient surface not covered elsewhere."""

import pytest

from repro.errors import GroupCommunicationError
from repro.gcs import CallbackListener, Grade
from tests.support import Cluster, RecordingListener


@pytest.fixture
def cluster():
    return Cluster(["h1", "h2"])


def test_joined_groups_property(cluster):
    _, client = cluster.client("h1", "app")
    assert client.joined_groups == []
    client.join("alpha", RecordingListener())
    client.join("beta", RecordingListener())
    cluster.run(80_000)
    assert client.joined_groups == ["alpha", "beta"]
    client.leave("alpha")
    cluster.run(80_000)
    assert client.joined_groups == ["beta"]


def test_member_identity_fields(cluster):
    proc, client = cluster.client("h1", "app")
    assert client.member.host == "h1"
    assert client.member.name == "app"
    assert client.member.pid == proc.pid
    assert str(client.member) == f"app#{proc.pid}@h1"


def test_callback_listener_adapter(cluster):
    _, sender = cluster.client("h1", "s")
    _, receiver = cluster.client("h2", "r")
    messages, views = [], []
    receiver.join("grp", CallbackListener(
        on_message=lambda group, snd, payload, n: messages.append(payload),
        on_view=lambda view, joined, left, crashed: views.append(view)))
    cluster.run(80_000)
    sender.multicast("grp", "x", nbytes=8)
    cluster.run(80_000)
    assert messages == ["x"]
    assert views


def test_callback_listener_partial(cluster):
    """Omitting callbacks is fine (events silently dropped)."""
    _, client = cluster.client("h1", "app")
    client.join("grp", CallbackListener())
    cluster.run(80_000)
    client.multicast("grp", "x", nbytes=8)
    cluster.run(80_000)  # no exception


def test_direct_handler_replacement(cluster):
    _, a = cluster.client("h1", "a")
    _, b = cluster.client("h2", "b")
    first, second = [], []
    b.on_direct(lambda s, p, n: first.append(p))
    a.send_direct(b.member, "one", nbytes=8)
    cluster.run(80_000)
    b.on_direct(lambda s, p, n: second.append(p))
    a.send_direct(b.member, "two", nbytes=8)
    cluster.run(80_000)
    assert first == ["one"]
    assert second == ["two"]


def test_direct_to_dead_member_is_dropped(cluster):
    _, a = cluster.client("h1", "a")
    proc_b, b = cluster.client("h2", "b")
    inbox = []
    b.on_direct(lambda s, p, n: inbox.append(p))
    proc_b.kill()
    a.send_direct(b.member, "late", nbytes=8)
    cluster.run(80_000)
    assert inbox == []


def test_multiple_groups_independent_delivery(cluster):
    _, a = cluster.client("h1", "a")
    _, b = cluster.client("h2", "b")
    la, lb = RecordingListener(), RecordingListener()
    a.join("alpha", la)
    b.join("beta", lb)
    cluster.run(80_000)
    a.multicast("alpha", "for-alpha", nbytes=8)
    a.multicast("beta", "for-beta", nbytes=8)
    cluster.run(80_000)
    assert la.payloads == ["for-alpha"]
    assert lb.payloads == ["for-beta"]


def test_rejoin_after_leave(cluster):
    _, client = cluster.client("h1", "app")
    listener1 = RecordingListener()
    client.join("grp", listener1)
    cluster.run(80_000)
    client.leave("grp")
    cluster.run(80_000)
    listener2 = RecordingListener()
    client.join("grp", listener2)
    cluster.run(80_000)
    client.multicast("grp", "second-life", nbytes=8)
    cluster.run(80_000)
    assert "second-life" in listener2.payloads
    assert "second-life" not in listener1.payloads


def test_watch_then_join_same_group(cluster):
    _, server = cluster.client("h1", "server")
    _, other = cluster.client("h2", "other")
    watch_listener = RecordingListener()
    member_listener = RecordingListener()
    server.watch("grp", watch_listener)
    server.join("grp", member_listener)
    other.join("grp", RecordingListener())
    cluster.run(80_000)
    # Both the watcher view stream and the member view stream flow.
    assert watch_listener.views
    assert member_listener.views
    other.multicast("grp", "data", nbytes=8)
    cluster.run(80_000)
    assert member_listener.payloads == ["data"]
    assert watch_listener.payloads == []  # watchers get no data


def test_grade_enum_reliability_flags():
    assert Grade.AGREED.reliable
    assert Grade.FIFO.reliable
    assert Grade.CAUSAL.reliable
    assert not Grade.UNRELIABLE.reliable
