"""Property-based membership tests: random crash schedules.

Whatever the timing and choice of (a minority of) daemon crashes, the
survivors must converge to the same daemon view, agree on the group
membership, and deliver identical message sequences.
"""

from hypothesis import given, settings, strategies as st

from repro.gcs import Grade
from tests.support import Cluster, RecordingListener

HOSTS = ["h1", "h2", "h3", "h4"]
FAILOVER_US = 1_500_000

crash_plans = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.floats(min_value=10_000.0, max_value=1_200_000.0)),
    min_size=0, max_size=2, unique_by=lambda t: t[0])


@given(crash_plans, st.integers(min_value=0, max_value=30))
@settings(max_examples=12, deadline=None)
def test_survivors_converge_on_views_and_deliveries(plan, seed):
    cluster = Cluster(HOSTS, seed=seed)
    clients, listeners = [], []
    for i, host in enumerate(HOSTS):
        _, c = cluster.client(host, f"m{i}")
        listener = RecordingListener()
        c.join("grp", listener)
        clients.append(c)
        listeners.append(listener)
    cluster.run(80_000)

    crashed = {index for index, _ in plan}
    start = cluster.sim.now
    for index, at_us in plan:
        cluster.sim.schedule_at(start + at_us,
                                cluster.hosts[HOSTS[index]].crash)
    # Continuous traffic from every (eventually surviving) sender.
    for i, client in enumerate(clients):
        if i in crashed:
            continue
        for k in range(8):
            cluster.sim.schedule(k * 150_000.0 + i * 1_000.0,
                                 client.multicast, "grp",
                                 (i, k), 24, Grade.AGREED)
    cluster.run(start + 4 * FAILOVER_US)

    survivors = [i for i in range(4) if i not in crashed]
    expected_members = tuple(HOSTS[i] for i in sorted(survivors))

    # 1. Daemon views converge.
    views = {cluster.daemons[HOSTS[i]].view.members for i in survivors}
    assert views == {expected_members}

    # 2. Group membership agrees (same final member set everywhere).
    finals = {listeners[i].member_sets[-1] for i in survivors}
    assert len(finals) == 1
    assert len(next(iter(finals))) == len(survivors)

    # 3. Identical delivered suffix: survivors see the same sequence
    #    of surviving-sender messages.
    sequences = []
    for i in survivors:
        sequences.append([p for p in listeners[i].payloads
                          if p[0] in survivors])
    assert all(seq == sequences[0] for seq in sequences)
    # 4. Completeness: every surviving sender's messages all arrive.
    for sender in survivors:
        got = [p for p in sequences[0] if p[0] == sender]
        assert got == [(sender, k) for k in range(8)]
