"""Memory-layout regression: high-churn message objects stay slotted.

The GCS creates one wrapper object per multicast hop and one Frame per
wire transmission; a stray ``__dict__`` on any of them (easily
reintroduced by a slotless base class or a dataclass edit) costs ~100
bytes and a dict allocation per message.  These tests pin the layout.
"""

from repro.gcs.messages import (
    CausalData,
    DaemonView,
    Direct,
    FifoData,
    FlushAck,
    FlushRequest,
    Forward,
    GroupView,
    Heartbeat,
    JoinRequest,
    LeaveRequest,
    LinkAck,
    LinkData,
    MemberId,
    RawData,
    SafeAck,
    SafeRelease,
    Stamped,
    StampKind,
    ViewInstall,
)
from repro.net.frame import Endpoint, Frame
from repro.sim.kernel import EventHandle, Simulator

MEMBER = MemberId("s01", 1, "svc")

INSTANCES = [
    MemberId("s01", 1, "svc"),
    GroupView("g", 1, (MEMBER,)),
    DaemonView(1, ("s01", "s02")),
    Heartbeat(sender="s01", view_id=1),
    LinkData(link_seq=1, inner="x", inner_bytes=8),
    LinkAck(cum_seq=3),
    Forward(group="g", origin=MEMBER, payload="p", payload_bytes=4,
            msg_id="s01:1"),
    Stamped(group="g", seq=1, kind=StampKind.DATA, origin=MEMBER),
    SafeAck(group="g", seq=1, sender="s01"),
    SafeRelease(group="g", seq=1),
    JoinRequest(group="g", member=MEMBER, msg_id="s01:2"),
    LeaveRequest(group="g", member=MEMBER, msg_id="s01:3"),
    Direct(dst=MEMBER, src=MEMBER, payload="p", payload_bytes=4),
    FifoData(group="g", origin=MEMBER, payload="p", payload_bytes=4),
    CausalData(group="g", origin=MEMBER, clock={"s01": 1}, payload="p",
               payload_bytes=4),
    RawData(group="g", origin=MEMBER, payload="p", payload_bytes=4),
    FlushRequest(epoch=1, proposer="s01", members=("s01",)),
    FlushAck(epoch=1, sender="s01", histories={}, next_seqs={}),
    ViewInstall(epoch=1, view=DaemonView(1, ("s01",)), recovery={},
                next_seqs={}),
    Endpoint("s01", 4803),
    Frame(src=Endpoint("s01", 1), dst=Endpoint("s02", 2), payload="p"),
]


def test_no_message_instance_grows_a_dict():
    creeps = [type(obj).__name__ for obj in INSTANCES
              if hasattr(obj, "__dict__")]
    assert not creeps, f"__dict__ creep on: {creeps}"


def test_slots_declared_throughout_the_mro():
    """Every class (bar object) on a message's MRO must declare
    __slots__ — one slotless base resurrects the instance dict."""
    for obj in INSTANCES:
        for klass in type(obj).__mro__[:-1]:
            assert "__slots__" in vars(klass), (
                f"{type(obj).__name__}: {klass.__name__} lacks __slots__")


def test_event_handle_stays_slotted():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert isinstance(handle, EventHandle)
    assert not hasattr(handle, "__dict__")


def test_messages_still_behave_as_values():
    assert SafeAck("g", 1, "s01") == SafeAck("g", 1, "s01")
    assert MemberId("a", 1, "x") < MemberId("b", 1, "x")
    assert hash(Endpoint("h", 1)) == hash(Endpoint("h", 1))
