"""GCS behaviour under crash faults and message loss."""

import pytest

from repro.gcs import Grade
from repro.net import BurstLoss, RandomLoss
from tests.support import Cluster, RecordingListener

#: Long enough for heartbeat timeout (350 ms) + flush to complete.
FAILOVER_US = 1_500_000


@pytest.fixture
def cluster():
    return Cluster(["h1", "h2", "h3", "h4"])


def _joined(cluster, specs):
    """Join one client per (host, name) spec; returns (clients, listeners)."""
    clients, listeners = [], []
    for host, name in specs:
        _, c = cluster.client(host, name)
        listener = RecordingListener()
        c.join("grp", listener)
        clients.append(c)
        listeners.append(listener)
    cluster.run(80_000)
    return clients, listeners


class TestProcessCrash:
    def test_local_process_death_removes_member_fast(self, cluster):
        clients, listeners = _joined(
            cluster, [("h1", "a"), ("h2", "b")])
        clients[0].process.kill()
        # Local disconnect detection: no heartbeat timeout needed.
        cluster.run(100_000)
        assert len(listeners[1].member_sets[-1]) == 1
        assert "a" not in str(listeners[1].member_sets[-1])

    def test_dead_member_receives_nothing(self, cluster):
        clients, listeners = _joined(
            cluster, [("h1", "a"), ("h2", "b")])
        clients[0].process.kill()
        cluster.run(100_000)
        clients[1].multicast("grp", "after-death", nbytes=10)
        cluster.run(100_000)
        assert "after-death" not in listeners[0].payloads
        assert "after-death" in listeners[1].payloads

    def test_view_change_marked_crashed_for_local_death(self, cluster):
        clients, listeners = _joined(cluster, [("h1", "a"), ("h2", "b")])
        clients[0].process.kill()
        cluster.run(100_000)
        # A dead local connection is a detected failure (Spread's
        # caused-by-disconnect membership), not a voluntary leave.
        assert listeners[1].views[-1][2] is True

    def test_voluntary_leave_not_marked_crashed(self, cluster):
        clients, listeners = _joined(cluster, [("h1", "a"), ("h2", "b")])
        clients[0].leave("grp")
        cluster.run(100_000)
        assert len(listeners[1].member_sets[-1]) == 1
        assert listeners[1].views[-1][2] is False


class TestHostCrash:
    def test_host_crash_triggers_daemon_view_change(self, cluster):
        _joined(cluster, [("h1", "a"), ("h2", "b")])
        cluster.hosts["h2"].crash()
        cluster.run(FAILOVER_US)
        for name in ("h1", "h3", "h4"):
            assert "h2" not in cluster.daemons[name].view.members
            assert cluster.daemons[name].view.view_id > 0

    def test_members_on_crashed_host_removed_as_crashed(self, cluster):
        clients, listeners = _joined(
            cluster, [("h1", "a"), ("h2", "b"), ("h3", "c")])
        cluster.hosts["h2"].crash()
        cluster.run(FAILOVER_US)
        final = listeners[0].views[-1]
        assert len(final[1]) == 2
        assert "b" not in str(final[1])
        assert final[2] is True  # crashed flag set
        # Survivors agree on the final view.
        assert listeners[0].views[-1][1] == listeners[2].views[-1][1]

    def test_multicast_works_after_view_change(self, cluster):
        clients, listeners = _joined(
            cluster, [("h1", "a"), ("h2", "b"), ("h3", "c")])
        cluster.hosts["h2"].crash()
        cluster.run(FAILOVER_US)
        clients[0].multicast("grp", "post-crash", nbytes=10)
        cluster.run(100_000)
        assert "post-crash" in listeners[0].payloads
        assert "post-crash" in listeners[2].payloads

    def test_sequencer_crash_elects_new_sequencer(self, cluster):
        clients, listeners = _joined(
            cluster, [("h2", "b"), ("h3", "c")])
        assert cluster.daemons["h2"].sequencer == "h1"
        cluster.hosts["h1"].crash()
        cluster.run(FAILOVER_US)
        assert cluster.daemons["h2"].sequencer == "h2"
        assert cluster.daemons["h2"].is_sequencer
        clients[0].multicast("grp", "new-seq", nbytes=10)
        cluster.run(100_000)
        assert "new-seq" in listeners[1].payloads

    def test_messages_in_flight_at_sequencer_crash_not_lost(self, cluster):
        """AGREED messages forwarded but unstamped when the sequencer
        dies are re-forwarded to the new sequencer after the view change."""
        clients, listeners = _joined(
            cluster, [("h2", "b"), ("h3", "c")])
        # Crash the sequencer, then immediately multicast: the forward
        # races with failure detection and must survive it.
        cluster.hosts["h1"].crash()
        clients[0].multicast("grp", "racing", nbytes=10)
        cluster.run(FAILOVER_US)
        assert listeners[0].payloads.count("racing") == 1
        assert listeners[1].payloads.count("racing") == 1

    def test_virtual_synchrony_same_set_before_view(self, cluster):
        """All survivors deliver the same multicast set before the
        crash view change (flush reconciliation)."""
        clients, listeners = _joined(
            cluster, [("h2", "b"), ("h3", "c"), ("h4", "d")])
        for i in range(10):
            clients[0].multicast("grp", f"m{i}", nbytes=10)
        cluster.hosts["h1"].crash()  # sequencer dies mid-stream
        cluster.run(FAILOVER_US)
        assert listeners[0].payloads == listeners[1].payloads
        assert listeners[0].payloads == listeners[2].payloads

    def test_double_crash_sequential(self, cluster):
        clients, listeners = _joined(
            cluster, [("h3", "c"), ("h4", "d")])
        cluster.hosts["h1"].crash()
        cluster.run(FAILOVER_US)
        cluster.hosts["h2"].crash()
        cluster.run(FAILOVER_US)
        assert cluster.daemons["h3"].view.members == ("h3", "h4")
        clients[0].multicast("grp", "still-works", nbytes=10)
        cluster.run(100_000)
        assert "still-works" in listeners[1].payloads

    def test_simultaneous_double_crash(self, cluster):
        clients, listeners = _joined(
            cluster, [("h3", "c"), ("h4", "d")])
        cluster.hosts["h1"].crash()
        cluster.hosts["h2"].crash()
        cluster.run(2 * FAILOVER_US)
        assert cluster.daemons["h3"].view.members == ("h3", "h4")
        clients[0].multicast("grp", "survivors", nbytes=10)
        cluster.run(100_000)
        assert "survivors" in listeners[0].payloads
        assert "survivors" in listeners[1].payloads

    def test_crash_of_non_sequencer_member(self, cluster):
        clients, listeners = _joined(
            cluster, [("h1", "a"), ("h4", "d")])
        cluster.hosts["h4"].crash()
        cluster.run(FAILOVER_US)
        assert "d" not in str(listeners[0].member_sets[-1])
        clients[0].multicast("grp", "onward", nbytes=10)
        cluster.run(100_000)
        assert "onward" in listeners[0].payloads


class TestMessageLoss:
    def test_reliable_multicast_survives_heavy_loss(self):
        cluster = Cluster(["h1", "h2"], seed=3)
        _, sender = cluster.client("h1", "s")
        _, receiver = cluster.client("h2", "r")
        listener = RecordingListener()
        receiver.join("grp", listener)
        cluster.run(80_000)
        cluster.network.add_loss_model(RandomLoss(0.3))
        for i in range(20):
            sender.multicast("grp", i, nbytes=10)
        cluster.run(2_000_000)
        assert listener.payloads == list(range(20))

    def test_unreliable_grade_loses_under_burst(self):
        cluster = Cluster(["h1", "h2"], seed=5)
        _, sender = cluster.client("h1", "s")
        _, receiver = cluster.client("h2", "r")
        listener = RecordingListener()
        receiver.join("grp", listener)
        cluster.run(80_000)
        start = cluster.sim.now
        cluster.network.add_loss_model(
            BurstLoss(start, start + 1_000_000, rate=1.0))
        for i in range(5):
            sender.multicast("grp", i, nbytes=10, grade=Grade.UNRELIABLE)
        cluster.run(2_000_000)
        assert listener.payloads == []

    def test_fifo_order_preserved_under_loss(self):
        cluster = Cluster(["h1", "h2"], seed=11)
        _, sender = cluster.client("h1", "s")
        _, receiver = cluster.client("h2", "r")
        listener = RecordingListener()
        receiver.join("grp", listener)
        cluster.run(80_000)
        cluster.network.add_loss_model(RandomLoss(0.25))
        for i in range(15):
            sender.multicast("grp", i, nbytes=10, grade=Grade.FIFO)
        cluster.run(2_000_000)
        assert listener.payloads == list(range(15))

    def test_short_loss_burst_does_not_break_membership(self):
        cluster = Cluster(["h1", "h2", "h3"], seed=7)
        clients, listeners = [], []
        for host, name in [("h1", "a"), ("h2", "b")]:
            _, c = cluster.client(host, name)
            listener = RecordingListener()
            c.join("grp", listener)
            clients.append(c)
            listeners.append(listener)
        cluster.run(80_000)
        start = cluster.sim.now
        # 150 ms of total loss: under the 350 ms failure timeout.
        cluster.network.add_loss_model(
            BurstLoss(start, start + 150_000, rate=1.0))
        cluster.run(2_000_000)
        for daemon in cluster.daemons.values():
            assert daemon.view.members == ("h1", "h2", "h3")
        clients[0].multicast("grp", "alive", nbytes=10)
        cluster.run(100_000)
        assert "alive" in listeners[1].payloads


class TestDeterminism:
    def test_identical_seed_identical_outcome(self):
        def run(seed):
            cluster = Cluster(["h1", "h2", "h3"], seed=seed,
                              deterministic_network=False)
            clients, listeners = [], []
            for host, name in [("h1", "a"), ("h2", "b"), ("h3", "c")]:
                _, c = cluster.client(host, name)
                listener = RecordingListener()
                c.join("grp", listener)
                clients.append(c)
                listeners.append(listener)
            cluster.run(80_000)
            for i, c in enumerate(clients):
                c.multicast("grp", f"s{i}", nbytes=20)
            cluster.hosts["h1"].crash()
            cluster.run(FAILOVER_US)
            return [listener.payloads for listener in listeners]

        assert run(42) == run(42)
