"""Primary-partition membership: wedge, heal, merge."""

from repro.faults import FaultInjector
from repro.journal.events import Journal
from repro.sim import GcsCalibration, default_calibration
from tests.support import Cluster


def _cluster(seed=5, primary_partition=True):
    calibration = default_calibration().with_overrides(
        gcs=GcsCalibration(primary_partition=primary_partition))
    cluster = Cluster(["h1", "h2", "h3"], seed=seed,
                      calibration=calibration)
    cluster.sim.journal = Journal()
    cluster.run(500_000)  # let the full view stabilize
    return cluster


def _partition_h3(cluster, duration_us=2_500_000.0):
    injector = FaultInjector(cluster.sim, cluster.network)
    start = cluster.sim.now + 10_000
    injector.partition_at([["h3"]], start, start + duration_us)
    return start, start + duration_us


class TestMinorityWedge:
    def test_minority_wedges_and_majority_reconfigures(self):
        cluster = _cluster()
        start, heal = _partition_h3(cluster)
        cluster.run(1_500_000)  # inside the partition
        assert cluster.daemons["h1"].view.members == ("h1", "h2")
        assert cluster.daemons["h2"].view.members == ("h1", "h2")
        minority = cluster.daemons["h3"]
        assert minority._wedged
        # The wedged side never installs a minority view: its last
        # installed view is still the stale pre-partition one.
        assert minority.view.members == ("h1", "h2", "h3")
        wedges = [e for e in cluster.sim.journal.events
                  if e.kind == "partition.wedged"]
        assert [e.host for e in wedges] == ["h3"]

    def test_no_concurrent_serving_views_in_journal(self):
        cluster = _cluster()
        start, heal = _partition_h3(cluster)
        cluster.run(1_500_000)
        installs = [e for e in cluster.sim.journal.events
                    if e.kind == "daemon.install"
                    and start < e.time_us and e.host == "h3"]
        assert installs == []  # nothing installed on the minority side

    def test_legacy_mode_still_splits(self):
        """With primary_partition off (the pre-partition calibration),
        both sides install views — the behaviour every earlier
        experiment calibrated against must be untouched."""
        cluster = _cluster(primary_partition=False)
        _partition_h3(cluster)
        cluster.run(1_500_000)
        assert cluster.daemons["h1"].view.members == ("h1", "h2")
        minority = cluster.daemons["h3"]
        assert not getattr(minority, "_wedged", False)
        assert minority.view.members == ("h3",)


class TestHealAndMerge:
    def test_views_merge_after_heal(self):
        cluster = _cluster()
        _partition_h3(cluster)
        cluster.run(6_000_000)  # through the heal + rejoin probes
        views = {name: d.view for name, d in cluster.daemons.items()}
        assert all(v.members == ("h1", "h2", "h3")
                   for v in views.values())
        assert len({v.view_id for v in views.values()}) == 1
        assert not cluster.daemons["h3"]._wedged

    def test_heal_journaled_on_the_rejoiner(self):
        cluster = _cluster()
        _partition_h3(cluster)
        cluster.run(6_000_000)
        healed = [e for e in cluster.sim.journal.events
                  if e.kind == "partition.healed"]
        assert [e.host for e in healed] == ["h3"]
        wedged_at = [e.time_us for e in cluster.sim.journal.events
                     if e.kind == "partition.wedged"][0]
        assert healed[0].time_us > wedged_at
