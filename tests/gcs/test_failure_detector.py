"""Failure detectors: fixed timeout vs adaptive (timing faults)."""

import pytest

from repro.gcs import AdaptiveDetector, FixedTimeoutDetector
from repro.sim import GcsCalibration
from tests.support import Cluster, RecordingListener

FAILOVER_US = 1_500_000


class TestFixedDetector:
    def test_suspects_after_timeout(self):
        fd = FixedTimeoutDetector(timeout_us=1000.0)
        fd.heard_from("a", 0.0)
        assert fd.suspects(["a"], 500.0) == set()
        assert fd.suspects(["a"], 1500.0) == {"a"}

    def test_hearing_resets(self):
        fd = FixedTimeoutDetector(timeout_us=1000.0)
        fd.heard_from("a", 0.0)
        fd.heard_from("a", 900.0)
        assert fd.suspects(["a"], 1800.0) == set()

    def test_forget(self):
        fd = FixedTimeoutDetector(timeout_us=1000.0)
        fd.heard_from("a", 0.0)
        fd.forget("a")
        assert fd.silence("a", 500.0) == 500.0  # back to epoch default

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedTimeoutDetector(timeout_us=0.0)


class TestAdaptiveDetector:
    def _trained(self, gap_us=100.0, n=20):
        fd = AdaptiveDetector(floor_us=500.0, margin_us=50.0)
        t = 0.0
        for _ in range(n):
            fd.heard_from("a", t)
            t += gap_us
        return fd, t - gap_us

    def test_untrained_uses_floor(self):
        fd = AdaptiveDetector(floor_us=500.0)
        fd.heard_from("a", 0.0)
        assert fd.threshold_us("a") == 500.0

    def test_threshold_tracks_interarrival_mean(self):
        fd, last = self._trained(gap_us=100.0)
        # Regular 100 us heartbeats: threshold ~ 100 + margin, clamped
        # up to the floor.
        assert fd.threshold_us("a") == 500.0  # floor dominates here

        slow_fd, last = self._trained(gap_us=1000.0)
        threshold = slow_fd.threshold_us("a")
        assert 1000.0 < threshold < 2000.0

    def test_adapts_to_gradual_slowdown(self):
        """Heartbeat gaps that creep upward raise the threshold, so a
        live-but-slow peer is not suspected (the timing-fault case)."""
        fd = AdaptiveDetector(floor_us=500.0, margin_us=100.0)
        t = 0.0
        gap = 100.0
        fd.heard_from("a", t)
        for _ in range(40):
            gap *= 1.15  # gradual degradation
            t += gap
            fd.heard_from("a", t)
        # The peer is slow (next gap ~ 1.15x the last) but alive: at
        # 90 % of the expected next gap it must not be suspect.
        assert fd.suspects(["a"], t + gap * 1.15 * 0.9) == set()

    def test_detects_true_silence(self):
        fd, last = self._trained(gap_us=1000.0)
        # Dead silence far beyond the adapted threshold.
        assert fd.suspects(["a"], last + 50_000.0) == {"a"}

    def test_ceiling_clamps(self):
        fd = AdaptiveDetector(floor_us=500.0, ceiling_us=2_000.0)
        t = 0.0
        for _ in range(10):
            fd.heard_from("a", t)
            t += 10_000.0  # huge gaps
        assert fd.threshold_us("a") == 2_000.0

    def test_forget_clears_history(self):
        fd, _ = self._trained(gap_us=1000.0)
        fd.forget("a")
        assert fd.threshold_us("a") == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveDetector(safety_factor=0.0)
        with pytest.raises(ValueError):
            AdaptiveDetector(floor_us=100.0, ceiling_us=50.0)


class TestAdaptiveUnderDelaySpike:
    """Regression coverage for the timing-fault contract: a delay
    spike that keeps inter-arrivals below the adapted threshold must
    cause no false suspicion, and the threshold must re-tighten once
    the spike window ends (the window slides the spiked samples out).
    """

    BASE_GAP = 10_000.0

    def _train(self, fd, t, n=32, jitter=(0.0, 400.0, -300.0, 200.0)):
        for i in range(n):
            fd.heard_from("a", t)
            t += self.BASE_GAP + jitter[i % len(jitter)]
        return t

    def test_spike_below_adapted_threshold_no_false_suspicion(self):
        fd = AdaptiveDetector(safety_factor=4.0, margin_us=1_000.0,
                              window=32, floor_us=2_000.0)
        t = self._train(fd, 0.0)
        threshold = fd.threshold_us("a")
        # A spike that stretches gaps to 90 % of the adapted
        # threshold: late, but inside mean + safety_factor * std.
        spiked_gap = threshold * 0.9
        assert spiked_gap > self.BASE_GAP  # it *is* a degradation
        for _ in range(16):
            assert fd.suspects(["a"], t) == set()
            fd.heard_from("a", t)
            t += spiked_gap
        assert fd.suspects(["a"], t - spiked_gap * 0.05) == set()

    def test_threshold_retightens_after_spike_window(self):
        fd = AdaptiveDetector(safety_factor=4.0, margin_us=1_000.0,
                              window=32, floor_us=2_000.0)
        t = self._train(fd, 0.0)
        calm = fd.threshold_us("a")
        spiked_gap = calm * 0.9
        for _ in range(16):
            fd.heard_from("a", t)
            t += spiked_gap
        inflated = fd.threshold_us("a")
        assert inflated > calm  # the spike loosened the threshold
        # Spike over: regular heartbeats slide every spiked sample
        # out of the window and the threshold converges back down.
        t = self._train(fd, t)
        recovered = fd.threshold_us("a")
        assert recovered < inflated
        assert recovered < calm * 1.5

    def test_injected_delay_spike_does_not_collapse_membership(self):
        """End to end: an injector ``delay_spike`` below the adapted
        slack leaves the membership intact, and the detector's
        thresholds come back down after the window."""
        from repro.faults import FaultInjector
        from repro.sim import default_calibration
        calibration = default_calibration().with_overrides(
            gcs=GcsCalibration(adaptive_failure_detection=True))
        cluster = Cluster(["h1", "h2", "h3"], seed=7,
                          calibration=calibration,
                          deterministic_network=False)
        cluster.run(2_000_000)  # train on calm heartbeats
        injector = FaultInjector(cluster.sim, cluster.network)
        injector.delay_spike(cluster.sim.now,
                             cluster.sim.now + 3_000_000.0,
                             extra_us=150_000.0)
        cluster.run(3_000_000)
        for daemon in cluster.daemons.values():
            assert daemon.view.members == ("h1", "h2", "h3")
        inflated = max(
            d._detector.threshold_us(peer)
            for d in cluster.daemons.values()
            for peer in ("h1", "h2", "h3") if peer != d.host.name)
        cluster.run(8_000_000)  # calm again: window slides spike out
        for daemon in cluster.daemons.values():
            assert daemon.view.members == ("h1", "h2", "h3")
            for peer in ("h1", "h2", "h3"):
                if peer == daemon.host.name:
                    continue
                assert daemon._detector.threshold_us(peer) <= inflated


class TestDetectorsInTheDaemon:
    def _timing_fault(self, cluster, duration_us=8_000_000.0,
                      peak_us=900_000.0):
        """A gradually intensifying network-delay storm."""
        from repro.net import RampJitter
        cluster.network.add_loss_model(RampJitter(
            cluster.sim.now, cluster.sim.now + duration_us, peak_us))

    def test_fixed_detector_false_suspects_under_timing_fault(self):
        cluster = Cluster(["h1", "h2", "h3"], seed=41,
                          deterministic_network=False)
        cluster.run(100_000)
        self._timing_fault(cluster)
        cluster.run(10_000_000)
        # Delay variation exceeded the 350 ms fixed timeout: live
        # daemons were (falsely) removed from the membership.
        views = {d.view.members for d in cluster.daemons.values()}
        assert any(len(v) < 3 for v in views)

    def test_adaptive_detector_rides_out_timing_fault(self):
        calibration = None
        from repro.sim import default_calibration
        base = default_calibration()
        calibration = base.with_overrides(gcs=GcsCalibration(
            adaptive_failure_detection=True))
        cluster = Cluster(["h1", "h2", "h3"], seed=41,
                          calibration=calibration,
                          deterministic_network=False)
        cluster.run(100_000)
        self._timing_fault(cluster)
        cluster.run(10_000_000)
        for daemon in cluster.daemons.values():
            assert daemon.view.members == ("h1", "h2", "h3")

    def test_adaptive_detector_still_catches_real_crashes(self):
        from repro.sim import default_calibration
        calibration = default_calibration().with_overrides(
            gcs=GcsCalibration(adaptive_failure_detection=True))
        cluster = Cluster(["h1", "h2", "h3"], seed=42,
                          calibration=calibration)
        clients, listeners = [], []
        for host, name in (("h2", "b"), ("h3", "c")):
            _, c = cluster.client(host, name)
            listener = RecordingListener()
            c.join("grp", listener)
            clients.append(c)
            listeners.append(listener)
        cluster.run(100_000)
        cluster.hosts["h1"].crash()
        cluster.run(3 * FAILOVER_US)
        assert cluster.daemons["h2"].view.members == ("h2", "h3")
        clients[0].multicast("grp", "post-crash", nbytes=16)
        cluster.run(300_000)
        assert "post-crash" in listeners[1].payloads
