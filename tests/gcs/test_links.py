"""Unit tests for the reliable FIFO link layer."""

import pytest

from repro.gcs.links import ReliableLink
from repro.gcs.messages import LinkAck, LinkData
from repro.net import Endpoint, Network, RandomLoss
from repro.sim import GcsCalibration, NetworkCalibration, Simulator


@pytest.fixture
def rig():
    """Two hosts with raw links wired to each other's frame handlers."""
    sim = Simulator(seed=2)
    net = Network(sim, NetworkCalibration(jitter_us=0.0))
    a = net.add_host("a")
    b = net.add_host("b")
    cal = GcsCalibration()
    delivered = {"a": [], "b": []}

    links = {}
    links["a"] = ReliableLink(sim, net, cal, Endpoint("a", 1), Endpoint("b", 1),
                              lambda inner, n: delivered["a"].append(inner))
    links["b"] = ReliableLink(sim, net, cal, Endpoint("b", 1), Endpoint("a", 1),
                              lambda inner, n: delivered["b"].append(inner))

    def handler_for(name):
        def handle(frame):
            payload = frame.payload
            if isinstance(payload, LinkData):
                links[name].on_link_data(payload.link_seq, payload.inner,
                                         payload.inner_bytes)
            elif isinstance(payload, LinkAck):
                links[name].on_ack(payload.cum_seq)
        return handle

    a.bind(1, handler_for("a"))
    b.bind(1, handler_for("b"))
    return sim, net, links, delivered


def test_in_order_delivery(rig):
    sim, net, links, delivered = rig
    for i in range(5):
        links["a"].send(i, 10)
    sim.run(until=100_000)
    assert delivered["b"] == [0, 1, 2, 3, 4]


def test_acks_clear_sender_buffer(rig):
    sim, net, links, delivered = rig
    links["a"].send("x", 10)
    assert links["a"].unacked_count == 1
    sim.run(until=100_000)
    assert links["a"].unacked_count == 0


def test_retransmission_recovers_from_loss(rig):
    sim, net, links, delivered = rig
    net.add_loss_model(RandomLoss(0.4))
    for i in range(30):
        links["a"].send(i, 10)
    sim.run(until=5_000_000)
    assert delivered["b"] == list(range(30))


def test_duplicate_frames_ignored(rig):
    sim, net, links, delivered = rig
    links["b"].on_link_data(1, "m", 10)
    links["b"].on_link_data(1, "m", 10)
    sim.run(until=100_000)
    assert delivered["b"] == ["m"]


def test_out_of_order_frames_reordered(rig):
    sim, net, links, delivered = rig
    links["b"].on_link_data(2, "second", 10)
    assert delivered["b"] == []
    links["b"].on_link_data(1, "first", 10)
    assert delivered["b"] == ["first", "second"]


def test_closed_link_sends_nothing(rig):
    sim, net, links, delivered = rig
    links["a"].close()
    links["a"].send("x", 10)
    sim.run(until=100_000)
    assert delivered["b"] == []
    assert links["a"].closed


def test_closed_link_ignores_incoming(rig):
    sim, net, links, delivered = rig
    links["b"].close()
    links["b"].on_link_data(1, "m", 10)
    assert delivered["b"] == []


def test_both_directions_independent(rig):
    sim, net, links, delivered = rig
    links["a"].send("to-b", 10)
    links["b"].send("to-a", 10)
    sim.run(until=100_000)
    assert delivered["b"] == ["to-b"]
    assert delivered["a"] == ["to-a"]


def test_gives_up_after_max_retransmits(rig):
    sim, net, links, delivered = rig
    net.add_loss_model(RandomLoss(1.0))  # peer unreachable
    links["a"].send("doomed", 10)
    sim.run(until=60_000_000)
    assert links["a"].closed
