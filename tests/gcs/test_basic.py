"""GCS behaviour on a healthy cluster: joins, grades, ordering."""

import pytest

from repro.errors import GroupCommunicationError
from repro.gcs import Grade
from tests.support import Cluster, RecordingListener


@pytest.fixture
def cluster():
    return Cluster(["h1", "h2", "h3"])


def test_join_delivers_view_with_self(cluster):
    _, client = cluster.client("h1", "app")
    listener = RecordingListener()
    client.join("grp", listener)
    cluster.run(50_000)
    assert listener.views, "no view delivered"
    assert any("app" in m for m in listener.views[-1][1])


def test_two_members_see_each_other(cluster):
    _, c1 = cluster.client("h1", "a")
    _, c2 = cluster.client("h2", "b")
    l1, l2 = RecordingListener(), RecordingListener()
    c1.join("grp", l1)
    c2.join("grp", l2)
    cluster.run(50_000)
    assert len(l1.member_sets[-1]) == 2
    assert l1.member_sets[-1] == l2.member_sets[-1]


def test_double_join_rejected(cluster):
    _, client = cluster.client("h1", "app")
    client.join("grp", RecordingListener())
    with pytest.raises(GroupCommunicationError):
        client.join("grp", RecordingListener())


def test_leave_removes_member(cluster):
    _, c1 = cluster.client("h1", "a")
    _, c2 = cluster.client("h2", "b")
    l1, l2 = RecordingListener(), RecordingListener()
    c1.join("grp", l1)
    c2.join("grp", l2)
    cluster.run(50_000)
    c1.leave("grp")
    cluster.run(50_000)
    assert len(l2.member_sets[-1]) == 1
    assert "a" not in str(l2.member_sets[-1])


def test_leave_without_join_rejected(cluster):
    _, client = cluster.client("h1", "app")
    with pytest.raises(GroupCommunicationError):
        client.leave("grp")


def test_agreed_multicast_reaches_all_members(cluster):
    listeners = []
    clients = []
    for i, host in enumerate(["h1", "h2", "h3"]):
        _, c = cluster.client(host, f"m{i}")
        listener = RecordingListener()
        c.join("grp", listener)
        listeners.append(listener)
        clients.append(c)
    cluster.run(50_000)
    clients[0].multicast("grp", "hello", nbytes=100)
    cluster.run(50_000)
    for listener in listeners:
        assert listener.payloads == ["hello"]


def test_sender_receives_own_multicast(cluster):
    _, c = cluster.client("h1", "solo")
    listener = RecordingListener()
    c.join("grp", listener)
    cluster.run(50_000)
    c.multicast("grp", "echo", nbytes=10)
    cluster.run(50_000)
    assert listener.payloads == ["echo"]


def test_total_order_identical_at_all_members(cluster):
    """Concurrent AGREED multicasts from different senders are
    delivered in the same order everywhere (the property the paper's
    switch protocol depends on)."""
    listeners = []
    clients = []
    for i, host in enumerate(["h1", "h2", "h3"]):
        _, c = cluster.client(host, f"m{i}")
        listener = RecordingListener()
        c.join("grp", listener)
        listeners.append(listener)
        clients.append(c)
    cluster.run(50_000)
    for round_no in range(10):
        for i, client in enumerate(clients):
            client.multicast("grp", f"r{round_no}-s{i}", nbytes=50)
    cluster.run(300_000)
    sequences = [listener.payloads for listener in listeners]
    assert len(sequences[0]) == 30
    assert sequences[0] == sequences[1] == sequences[2]


def test_open_group_send_from_non_member(cluster):
    _, server = cluster.client("h1", "server")
    _, outsider = cluster.client("h2", "client")
    listener = RecordingListener()
    server.join("grp", listener)
    cluster.run(50_000)
    outsider.multicast("grp", "request", nbytes=64)
    cluster.run(50_000)
    assert listener.payloads == ["request"]
    # The outsider never appears in the membership.
    assert all("client" not in str(ms) for ms in listener.member_sets)


def test_fifo_grade_preserves_sender_order(cluster):
    _, sender = cluster.client("h1", "sender")
    _, receiver = cluster.client("h2", "receiver")
    listener = RecordingListener()
    receiver.join("grp", listener)
    cluster.run(50_000)
    for i in range(20):
        sender.multicast("grp", i, nbytes=10, grade=Grade.FIFO)
    cluster.run(100_000)
    assert listener.payloads == list(range(20))


def test_causal_grade_delivers_all(cluster):
    _, a = cluster.client("h1", "a")
    _, b = cluster.client("h2", "b")
    la, lb = RecordingListener(), RecordingListener()
    a.join("grp", la)
    b.join("grp", lb)
    cluster.run(50_000)
    a.multicast("grp", "x", nbytes=10, grade=Grade.CAUSAL)
    b.multicast("grp", "y", nbytes=10, grade=Grade.CAUSAL)
    cluster.run(100_000)
    assert sorted(la.payloads) == ["x", "y"]
    assert sorted(lb.payloads) == ["x", "y"]


def test_unreliable_grade_delivers_on_clean_network(cluster):
    _, a = cluster.client("h1", "a")
    _, b = cluster.client("h2", "b")
    lb = RecordingListener()
    b.join("grp", lb)
    cluster.run(50_000)
    a.multicast("grp", "besteffort", nbytes=10, grade=Grade.UNRELIABLE)
    cluster.run(50_000)
    assert lb.payloads == ["besteffort"]


def test_direct_message_between_processes(cluster):
    _, a = cluster.client("h1", "a")
    _, b = cluster.client("h2", "b")
    inbox = []
    b.on_direct(lambda sender, payload, nbytes: inbox.append(payload))
    a.send_direct(b.member, "ping", nbytes=32)
    cluster.run(50_000)
    assert inbox == ["ping"]


def test_direct_message_same_host(cluster):
    _, a = cluster.client("h1", "a")
    _, b = cluster.client("h1", "b")
    inbox = []
    b.on_direct(lambda sender, payload, nbytes: inbox.append(payload))
    a.send_direct(b.member, "local", nbytes=32)
    cluster.run(10_000)
    assert inbox == ["local"]


def test_watch_sees_views_without_membership(cluster):
    _, server = cluster.client("h1", "server")
    _, watcher = cluster.client("h2", "watcher")
    wlistener = RecordingListener()
    watcher.watch("grp", wlistener)
    server.join("grp", RecordingListener())
    cluster.run(50_000)
    assert wlistener.views, "watcher saw no view"
    assert "server" in str(wlistener.member_sets[-1])
    # Watcher receives no data.
    server.multicast("grp", "data", nbytes=10)
    cluster.run(50_000)
    assert wlistener.payloads == []


def test_watch_existing_group_delivers_current_view(cluster):
    _, server = cluster.client("h1", "server")
    server.join("grp", RecordingListener())
    cluster.run(50_000)
    _, watcher = cluster.client("h2", "watcher")
    wlistener = RecordingListener()
    watcher.watch("grp", wlistener)
    cluster.run(10_000)
    assert wlistener.views


def test_messages_before_join_not_delivered(cluster):
    _, sender = cluster.client("h1", "sender")
    slistener = RecordingListener()
    sender.join("grp", slistener)
    cluster.run(50_000)
    sender.multicast("grp", "early", nbytes=10)
    cluster.run(50_000)
    _, late = cluster.client("h2", "late")
    llistener = RecordingListener()
    late.join("grp", llistener)
    cluster.run(50_000)
    assert "early" not in llistener.payloads


def test_client_must_connect_to_local_daemon(cluster):
    proc = cluster.spawn("h1", "app")
    from repro.gcs import GcsClient
    with pytest.raises(GroupCommunicationError):
        GcsClient(proc, cluster.daemons["h2"])


def test_negative_multicast_size_rejected(cluster):
    _, client = cluster.client("h1", "app")
    with pytest.raises(GroupCommunicationError):
        client.multicast("grp", "x", nbytes=-1)


def test_current_view_tracks_latest(cluster):
    _, c1 = cluster.client("h1", "a")
    _, c2 = cluster.client("h2", "b")
    c1.join("grp", RecordingListener())
    cluster.run(50_000)
    c2.join("grp", RecordingListener())
    cluster.run(50_000)
    view = c1.current_view("grp")
    assert view is not None and len(view) == 2


def test_multicast_generates_network_traffic(cluster):
    _, a = cluster.client("h1", "a")
    _, b = cluster.client("h2", "b")
    b.join("grp", RecordingListener())
    cluster.run(50_000)
    before = cluster.network.stats.total_bytes
    a.multicast("grp", "payload", nbytes=1000)
    cluster.run(50_000)
    assert cluster.network.stats.total_bytes - before >= 1000
