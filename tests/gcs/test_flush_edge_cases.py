"""View-change (flush) protocol edge cases.

The paper's switch protocol leans on the GCS surviving arbitrary
single/dual crashes, including crashes of the flush coordinator
itself mid-protocol.  These tests target those windows directly.
"""

import pytest

from repro.gcs import Grade
from tests.support import Cluster, RecordingListener

FAILOVER_US = 1_500_000


def _joined(cluster, specs):
    clients, listeners = [], []
    for host, name in specs:
        _, c = cluster.client(host, name)
        listener = RecordingListener()
        c.join("grp", listener)
        clients.append(c)
        listeners.append(listener)
    cluster.run(80_000)
    return clients, listeners


def test_coordinator_crashes_during_its_own_flush():
    """h1 (coordinator) starts a flush for h4's death, then dies
    before installing: h2 must take over and finish the view change."""
    cluster = Cluster(["h1", "h2", "h3", "h4"], seed=21)
    clients, listeners = _joined(cluster, [("h2", "b"), ("h3", "c")])
    cluster.hosts["h4"].crash()
    # Let failure detection begin, then kill the coordinator while the
    # flush is (likely) in progress.
    cluster.run(400_000)
    cluster.hosts["h1"].crash()
    cluster.run(4 * FAILOVER_US)
    for name in ("h2", "h3"):
        assert cluster.daemons[name].view.members == ("h2", "h3")
    clients[0].multicast("grp", "works", nbytes=10)
    cluster.run(200_000)
    assert "works" in listeners[1].payloads


def test_member_crashes_while_acking_flush():
    """A proposed member dies mid-flush: the coordinator must restart
    the flush without it."""
    cluster = Cluster(["h1", "h2", "h3", "h4"], seed=22)
    clients, listeners = _joined(cluster, [("h1", "a"), ("h2", "b")])
    cluster.hosts["h4"].crash()
    cluster.run(380_000)  # failure detection window for h4
    cluster.hosts["h3"].crash()  # dies around flush time
    cluster.run(4 * FAILOVER_US)
    assert cluster.daemons["h1"].view.members == ("h1", "h2")
    clients[0].multicast("grp", "still-alive", nbytes=10)
    cluster.run(200_000)
    assert "still-alive" in listeners[1].payloads


def test_cascading_crashes_down_to_one_daemon():
    cluster = Cluster(["h1", "h2", "h3", "h4"], seed=23)
    clients, listeners = _joined(cluster, [("h4", "d")])
    for victim in ("h1", "h2", "h3"):
        cluster.hosts[victim].crash()
        cluster.run(2 * FAILOVER_US)
    assert cluster.daemons["h4"].view.members == ("h4",)
    assert cluster.daemons["h4"].is_sequencer
    clients[0].multicast("grp", "alone", nbytes=10)
    cluster.run(200_000)
    assert "alone" in listeners[0].payloads


def test_traffic_during_flush_is_buffered_not_lost():
    """Sends issued while a view change is in progress are suspended
    and drained after the install (no message loss, no duplication)."""
    cluster = Cluster(["h1", "h2", "h3"], seed=24)
    clients, listeners = _joined(cluster, [("h2", "b"), ("h3", "c")])
    cluster.hosts["h1"].crash()
    # Pump messages through the whole detection+flush window.
    for i in range(30):
        cluster.sim.schedule(i * 40_000.0, clients[0].multicast,
                             "grp", f"m{i}", 10, Grade.AGREED)
    cluster.run(4 * FAILOVER_US)
    expected = [f"m{i}" for i in range(30)]
    assert listeners[0].payloads == expected
    assert listeners[1].payloads == expected


def test_view_ids_strictly_increase():
    cluster = Cluster(["h1", "h2", "h3", "h4"], seed=25)
    _joined(cluster, [("h4", "d")])
    seen_ids = [cluster.daemons["h4"].view.view_id]
    cluster.hosts["h1"].crash()
    cluster.run(2 * FAILOVER_US)
    seen_ids.append(cluster.daemons["h4"].view.view_id)
    cluster.hosts["h2"].crash()
    cluster.run(2 * FAILOVER_US)
    seen_ids.append(cluster.daemons["h4"].view.view_id)
    assert seen_ids == sorted(set(seen_ids))
    assert len(set(seen_ids)) == 3


def test_stale_frames_from_removed_daemon_ignored():
    """After a (falsely suspected or restarted) daemon is removed,
    survivors keep functioning; a message from the removed host must
    not corrupt the installed view."""
    cluster = Cluster(["h1", "h2", "h3"], seed=26)
    clients, listeners = _joined(cluster, [("h2", "b"), ("h3", "c")])
    cluster.hosts["h1"].crash()
    cluster.run(3 * FAILOVER_US)
    assert cluster.daemons["h2"].view.members == ("h2", "h3")
    clients[0].multicast("grp", "post", nbytes=10)
    cluster.run(200_000)
    assert "post" in listeners[1].payloads
    assert cluster.daemons["h2"].view.members == ("h2", "h3")


def test_group_joins_during_view_change_complete_after():
    cluster = Cluster(["h1", "h2", "h3"], seed=27)
    clients, listeners = _joined(cluster, [("h2", "b")])
    cluster.hosts["h1"].crash()
    cluster.run(100_000)  # crash detected soon; join races the flush
    _, late = cluster.client("h3", "late")
    late_listener = RecordingListener()
    late.join("grp", late_listener)
    cluster.run(4 * FAILOVER_US)
    final = listeners[0].member_sets[-1]
    assert any("late" in m for m in final)
    clients[0].multicast("grp", "hello-late", nbytes=10)
    cluster.run(200_000)
    assert "hello-late" in late_listener.payloads
