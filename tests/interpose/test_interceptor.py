"""Tests for the pass-through interposition layer (Fig. 4 modes)."""

import pytest

from repro.interpose import (
    InterceptedClientTransport,
    InterceptedServerTransport,
)
from repro.net import Network
from repro.orb import (
    COMPONENT_REPLICATOR,
    EchoServant,
    OrbClient,
    OrbServer,
    TcpClientTransport,
    TcpServerTransport,
)
from repro.sim import NetworkCalibration, Process, Simulator


def _build(intercept_client: bool, intercept_server: bool, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, NetworkCalibration(jitter_us=0.0))
    server_host = net.add_host("server")
    client_host = net.add_host("client")
    server_proc = Process(server_host, "srv")
    client_proc = Process(client_host, "cli")

    server_transport = TcpServerTransport(server_proc, net, 9000)
    if intercept_server:
        server_transport = InterceptedServerTransport(server_proc,
                                                      server_transport)
    server = OrbServer(server_proc, server_transport)
    server.register("echo", EchoServant())
    address = server.start()

    client_transport = TcpClientTransport(client_proc, net, address)
    if intercept_client:
        client_transport = InterceptedClientTransport(client_proc,
                                                      client_transport)
    client = OrbClient(client_proc, client_transport)
    return sim, client, client_transport, server_transport


def _round_trip(sim, client):
    replies = []
    client.invoke("echo", "ping", None, 64, replies.append)
    sim.run(until=sim.now + 1_000_000)
    assert replies
    return replies[0]


def test_pass_through_preserves_semantics():
    sim, client, *_ = _build(True, True)
    reply = _round_trip(sim, client)
    assert reply.payload is None or reply.payload == reply.payload


def test_client_interception_adds_replicator_component():
    sim, client, *_ = _build(True, False)
    reply = _round_trip(sim, client)
    assert reply.timeline.get(COMPONENT_REPLICATOR) > 0


def test_no_interception_has_no_replicator_component():
    sim, client, *_ = _build(False, False)
    reply = _round_trip(sim, client)
    assert reply.timeline.get(COMPONENT_REPLICATOR) == 0


def test_both_sides_cost_more_than_one_side():
    def replicator_cost(intercept_client, intercept_server):
        sim, client, *_ = _build(intercept_client, intercept_server)
        return _round_trip(sim, client).timeline.get(COMPONENT_REPLICATOR)

    client_only = replicator_cost(True, False)
    server_only = replicator_cost(False, True)
    both = replicator_cost(True, True)
    assert both == pytest.approx(client_only + server_only)


def test_latency_ordering_matches_fig4():
    """Fig. 4: baseline < one side intercepted < both intercepted."""
    def latency(ic, is_):
        sim, client, *_ = _build(ic, is_)
        reply = _round_trip(sim, client)
        return reply.timeline.completed_at - reply.timeline.started_at

    baseline = latency(False, False)
    client_only = latency(True, False)
    both = latency(True, True)
    assert baseline < client_only < both


def test_interception_counters():
    sim, client, client_transport, server_transport = _build(True, True)
    _round_trip(sim, client)
    # Request + reply on each side.
    assert client_transport.calls_intercepted == 2
    assert server_transport.calls_intercepted == 2


def test_interception_overhead_is_small():
    """The paper reports ~154 us of replicator overhead against ~1200
    us round trips; interception alone (no redirection) is cheaper
    still.  Against the bare-TCP baseline it must stay a small
    fraction of the round trip."""
    sim, client, *_ = _build(True, True)
    reply = _round_trip(sim, client)
    total = reply.timeline.completed_at - reply.timeline.started_at
    assert reply.timeline.get(COMPONENT_REPLICATOR) < 0.2 * total
