"""Unit tests for declarative SLO specs."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.slo import ALL_SHARDS, SloSpec, default_slo_specs, load_slo_specs


class TestSloSpec:
    def test_defaults_and_budget(self):
        spec = SloSpec(name="avail")
        assert spec.shard == ALL_SHARDS
        assert spec.availability_target == 0.999
        assert spec.budget_us(1_000_000.0) == pytest.approx(1_000.0)
        assert spec.budget_us(-5.0) == 0.0

    def test_round_trips_through_dict(self):
        spec = SloSpec(name="lat", shard="shard0",
                       availability_target=0.99,
                       latency_p=0.99, latency_target_us=5_000.0,
                       fast_window_us=100_000.0,
                       slow_window_us=1_000_000.0, burn_threshold=3.0)
        assert SloSpec.from_dict(spec.to_dict()) == spec

    def test_latency_fields_omitted_when_unset(self):
        rendered = SloSpec(name="avail").to_dict()
        assert "latency_p" not in rendered
        assert "latency_target_us" not in rendered

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SloSpec(name="")
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", availability_target=1.0)
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", availability_target=0.0)
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", latency_p=0.99)  # target missing
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", latency_p=1.5, latency_target_us=1.0)
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", fast_window_us=0.0)
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", fast_window_us=2.0, slow_window_us=1.0)
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", burn_threshold=0.0)

    def test_default_set_is_availability_only(self):
        (spec,) = default_slo_specs()
        assert spec.shard == ALL_SHARDS
        assert spec.latency_p is None


class TestLoadSloSpecs:
    def test_loads_a_list(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps([
            {"name": "a", "shard": "shard0"},
            {"name": "b", "availability_target": 0.99},
        ]))
        specs = load_slo_specs(str(path))
        assert [s.name for s in specs] == ["a", "b"]
        assert specs[0].shard == "shard0"

    def test_loads_a_single_object(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"name": "only"}))
        (spec,) = load_slo_specs(str(path))
        assert spec.name == "only"

    def test_rejects_scalars(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("42")
        with pytest.raises(ConfigurationError):
            load_slo_specs(str(path))
