"""Error-budget ledgers and burn-rate alerts over synthetic journals."""

import pytest

from repro.journal import Journal
from repro.slo import (
    AlertMatch,
    SloSpec,
    evaluate_slos,
    match_fault_alerts,
    unmatched_alerts,
)

#: One evaluation window for every synthetic stream here: 10 s, so a
#: three-nines objective grants a 10 ms error budget.
WINDOW_US = 10_000_000.0


def outage_events(at_us, recover_us, shard="shard0", seq_base=None):
    """A crash on ``shard`` plus the membership view that closes it."""
    journal = Journal()
    journal.record(5.0, "s01", "gcs", "membership.view",
                   group=shard, view_id=1, left=[])
    journal.record(5.0, "s02", "gcs", "membership.view",
                   group="shard9", view_id=1, left=[])
    journal.record(at_us, "net", "injector", "fault.inject",
                   fault="process_crash", target=f"{shard}-r1",
                   at_us=at_us)
    journal.record(recover_us, "s01", "gcs", "membership.view",
                   group=shard, view_id=2,
                   left=[f"{shard}-r1#1@s01"], crashed=True)
    return journal.events


def evaluate(events, **kwargs):
    kwargs.setdefault("window_start_us", 0.0)
    kwargs.setdefault("window_end_us", WINDOW_US)
    return evaluate_slos(events, **kwargs)


class TestErrorBudget:
    def test_ledger_accounts_downtime_per_shard(self):
        outcome = evaluate(outage_events(1_000_000.0, 1_600_000.0))
        by_shard = {b.shard: b for b in outcome.budgets}
        assert set(by_shard) == {"shard0", "shard9"}
        assert by_shard["shard0"].budget_us == pytest.approx(10_000.0)
        assert by_shard["shard0"].consumed_us == pytest.approx(600_000.0)
        assert by_shard["shard0"].exhausted
        assert by_shard["shard9"].consumed_us == 0.0
        assert by_shard["shard9"].ok
        assert not outcome.ok
        assert [b.shard for b in outcome.breached] == ["shard0"]

    def test_exhausted_at_is_the_budget_crossing_instant(self):
        outcome = evaluate(outage_events(1_000_000.0, 1_600_000.0))
        budget = {b.shard: b for b in outcome.budgets}["shard0"]
        # 10 ms of budget burns dry 10 ms into the outage.
        assert budget.exhausted_at_us == pytest.approx(1_010_000.0)

    def test_within_budget_outage_stays_ok(self):
        outcome = evaluate(outage_events(1_000_000.0, 1_005_000.0))
        budget = {b.shard: b for b in outcome.budgets}["shard0"]
        assert budget.consumed_us == pytest.approx(5_000.0)
        assert not budget.exhausted
        assert budget.remaining_us == pytest.approx(5_000.0)
        assert outcome.ok


class TestBurnRateAlerts:
    def test_contiguous_outage_fires_exactly_one_alert(self):
        outcome = evaluate(outage_events(1_000_000.0, 1_600_000.0))
        assert len(outcome.alerts) == 1
        (alert,) = outcome.alerts
        assert alert.shard == "shard0"
        assert alert.fired_at_us >= 1_000_000.0
        assert alert.cleared_at_us is not None
        assert alert.cleared_at_us > 1_600_000.0
        assert not alert.active
        assert alert.fast_burn >= alert.threshold
        assert alert.slow_burn >= alert.threshold

    def test_short_blip_fires_no_alert(self):
        # 5 ms of downtime burns the fast window hard but never moves
        # the slow one past the threshold — the multi-window pair is
        # exactly what keeps blips off the pager.
        outcome = evaluate(outage_events(1_000_000.0, 1_005_000.0))
        assert outcome.alerts == ()

    def test_separate_outages_fire_separate_alerts(self):
        journal = Journal()
        for at, recover, view in ((1_000_000.0, 1_600_000.0, 2),
                                  (6_000_000.0, 6_600_000.0, 3)):
            journal.record(at, "net", "injector", "fault.inject",
                           fault="process_crash", target="shard0-r1",
                           at_us=at)
            journal.record(recover, "s01", "gcs", "membership.view",
                           group="shard0", view_id=view,
                           left=["shard0-r1#1@s01"], crashed=True)
        outcome = evaluate(journal.events)
        assert len(outcome.alerts) == 2
        first, second = outcome.alerts
        assert first.cleared_at_us is not None
        assert first.cleared_at_us <= second.fired_at_us

    def test_unrecovered_outage_leaves_alert_active(self):
        journal = Journal()
        journal.record(5.0, "s01", "gcs", "membership.view",
                       group="shard0", view_id=1, left=[])
        journal.record(9_000_000.0, "net", "injector", "fault.inject",
                       fault="process_crash", target="shard0-r1",
                       at_us=9_000_000.0)
        outcome = evaluate(journal.events)
        (alert,) = outcome.alerts
        assert alert.active
        assert alert.to_dict()["cleared_at_us"] is None


class TestDeterminism:
    def test_ledger_is_byte_identical_across_reruns(self):
        events = outage_events(1_000_000.0, 1_600_000.0)
        first = evaluate(events).ledger_jsonl()
        second = evaluate(events).ledger_jsonl()
        assert first == second

    def test_event_order_does_not_matter(self):
        events = outage_events(1_000_000.0, 1_600_000.0)
        shuffled = list(reversed(events))
        assert evaluate(events).ledger_jsonl() \
            == evaluate(shuffled).ledger_jsonl()

    def test_outcome_as_journal_events(self):
        outcome = evaluate(outage_events(1_000_000.0, 1_600_000.0))
        emitted = outcome.journal_events(host="fleet", seq_start=100)
        kinds = {e.kind for e in emitted}
        assert kinds == {"slo.budget", "slo.alert"}
        assert [e.seq for e in emitted] == list(
            range(100, 100 + len(emitted)))
        assert all(e.shard is not None for e in emitted)


class TestLatencyObjectives:
    def latency_spec(self, target_us):
        return SloSpec(name="lat", shard="shard0",
                       latency_p=1.0, latency_target_us=target_us)

    def registry(self, value):
        from repro.telemetry import MetricsRegistry
        registry = MetricsRegistry()
        registry.histogram("request_latency_us", bounds=(1_000.0,),
                           host="s01", shard="shard0").observe(value)
        return registry

    def test_latency_breach_fails_the_budget(self):
        outcome = evaluate(outage_events(1_000_000.0, 1_001_000.0),
                           specs=[self.latency_spec(100.0)],
                           registry=self.registry(137.0))
        budget = {b.shard: b for b in outcome.budgets}["shard0"]
        assert budget.latency_actual_us == pytest.approx(137.0)
        assert not budget.latency_ok
        assert not budget.ok

    def test_latency_within_target_is_ok(self):
        outcome = evaluate(outage_events(1_000_000.0, 1_001_000.0),
                           specs=[self.latency_spec(500.0)],
                           registry=self.registry(137.0))
        budget = {b.shard: b for b in outcome.budgets}["shard0"]
        assert budget.latency_ok

    def test_no_registry_skips_latency(self):
        outcome = evaluate(outage_events(1_000_000.0, 1_001_000.0),
                           specs=[self.latency_spec(100.0)])
        budget = {b.shard: b for b in outcome.budgets}["shard0"]
        assert budget.latency_actual_us is None
        assert budget.latency_ok


class TestFaultAlertCrossCheck:
    def test_exhausting_fault_needs_exactly_one_alert(self):
        events = outage_events(1_000_000.0, 1_600_000.0)
        outcome = evaluate(events)
        (match,) = match_fault_alerts(events, outcome)
        assert match.shard == "shard0"
        assert match.budget_exhausted
        assert match.n_alerts == 1
        assert match.ok
        total, spurious = unmatched_alerts(events, outcome)
        assert (total, spurious) == (1, 0)

    def test_within_budget_fault_needs_zero_alerts(self):
        events = outage_events(1_000_000.0, 1_005_000.0)
        outcome = evaluate(events)
        (match,) = match_fault_alerts(events, outcome)
        assert not match.budget_exhausted
        assert match.n_alerts == 0
        assert match.ok

    def test_silent_pager_through_exhaustion_is_inconsistent(self):
        match = AlertMatch(fault_kind="process_crash",
                           target="shard0-r1", at_us=1.0,
                           shard="shard0", budget_exhausted=True,
                           n_alerts=0)
        assert not match.ok
        double = AlertMatch(fault_kind="process_crash",
                            target="shard0-r1", at_us=1.0,
                            shard="shard0", budget_exhausted=True,
                            n_alerts=2)
        assert not double.ok

    def test_unattributable_fault_is_not_checked(self):
        match = AlertMatch(fault_kind="process_crash", target="net",
                           at_us=1.0, shard=None,
                           budget_exhausted=False, n_alerts=0)
        assert match.ok
