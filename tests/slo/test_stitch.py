"""Cross-shard trace stitching, synthetic and end-to-end."""

import pytest

from repro.slo import cross_shard_traces, stitch_summary, stitch_traces
from repro.telemetry.spans import Span


def route_span(span_id, trace_id, name, start_us, shard, **attrs):
    return Span(span_id=span_id, trace_id=trace_id, parent_id=0,
                name=name, component="router", host="w01",
                process="client-0", start_us=start_us, end_us=start_us,
                attrs={"shard": shard, **attrs})


def work_span(span_id, trace_id, start_us, end_us):
    return Span(span_id=span_id, trace_id=trace_id, parent_id=0,
                name="replica.apply", component="replicator",
                host="s01", process="shard0-r1",
                start_us=start_us, end_us=end_us)


class TestStitchTraces:
    def test_single_shard_trace(self):
        spans = [route_span(1, "t1", "router.route", 10.0, "shard0"),
                 work_span(2, "t1", 10.0, 40.0)]
        (trace,) = stitch_traces(spans)
        assert trace.trace_id == "t1"
        assert trace.shards == ("shard0",)
        assert trace.reroutes == 0
        assert not trace.cross_shard
        assert trace.n_spans == 2
        assert trace.duration_us == pytest.approx(30.0)

    def test_reroute_orders_shards_by_hop(self):
        spans = [
            route_span(1, "t1", "router.route", 10.0, "shard0"),
            route_span(2, "t1", "router.reroute", 50.0, "shard1",
                       from_shard="shard0"),
        ]
        (trace,) = stitch_traces(spans)
        assert trace.shards == ("shard0", "shard1")
        assert trace.reroutes == 1
        assert trace.cross_shard

    def test_consecutive_duplicate_shards_collapse(self):
        # A retry routed back to the same shard is one hop, not two.
        spans = [
            route_span(1, "t1", "router.route", 10.0, "shard0"),
            route_span(2, "t1", "router.route", 20.0, "shard0"),
            route_span(3, "t1", "router.reroute", 30.0, "shard1"),
        ]
        (trace,) = stitch_traces(spans)
        assert trace.shards == ("shard0", "shard1")

    def test_non_route_spans_do_not_carry_shards(self):
        spans = [work_span(1, "t1", 0.0, 5.0)]
        (trace,) = stitch_traces(spans)
        assert trace.shards == ()
        assert not trace.cross_shard

    def test_unfinished_span_ends_at_its_start(self):
        span = Span(span_id=1, trace_id="t1", parent_id=0,
                    name="client.request", component="client",
                    host="w01", process="client-0", start_us=7.0)
        (trace,) = stitch_traces([span])
        assert trace.end_us == 7.0

    def test_traces_sorted_by_id(self):
        spans = [route_span(1, "t2", "router.route", 0.0, "shard0"),
                 route_span(2, "t1", "router.route", 0.0, "shard1")]
        assert [t.trace_id for t in stitch_traces(spans)] == [
            "t1", "t2"]

    def test_cross_shard_filter_and_summary(self):
        spans = [
            route_span(1, "t1", "router.route", 0.0, "shard0"),
            route_span(2, "t1", "router.reroute", 5.0, "shard1"),
            route_span(3, "t2", "router.route", 0.0, "shard0"),
        ]
        crossing = cross_shard_traces(spans)
        assert [t.trace_id for t in crossing] == ["t1"]
        assert stitch_summary(spans) == {
            "traces": 2, "cross_shard": 1, "reroutes": 1}


class TestStitchEndToEnd:
    def test_rebalance_produces_stitched_cross_shard_traces(self):
        from repro.cluster import run_cluster_load
        result = run_cluster_load(
            n_shards=2, n_clients=4, n_requests=20, n_keys=2,
            processing_us=2_000.0,
            rebalance=("obj00", "shard1", 30_000.0), telemetry=True)
        assert result.rerouted >= 1
        spans = result.telemetry.spans
        crossing = cross_shard_traces(spans)
        # Every re-routed request shows up as ONE stitched trace that
        # walked from the old owner to the new one — not two traces.
        assert crossing
        for trace in crossing:
            assert trace.reroutes >= 1
            assert trace.shards[-1] == "shard1"
        summary = stitch_summary(spans)
        assert summary["cross_shard"] == len(crossing)
        assert summary["reroutes"] >= result.rerouted
