"""End-to-end acceptance: the observability plane over real journals.

The canonical crash scenario drives all three promises at once: a
budget-exhausting fault yields exactly one burn-rate alert, the
``repro slo`` CLI renders the per-shard ledger from the captured
journal, and SLO-annotated campaigns stay byte-identical whether they
run serially or across worker processes.
"""

import json

import pytest

from repro.check import canonical_scenario, run_schedule
from repro.cli import main
from repro.journal.io import write_jsonl
from repro.slo import (
    SloSpec,
    evaluate_slos,
    match_fault_alerts,
    unmatched_alerts,
)

#: Seven nines over a ~330 ms horizon tolerates well under a
#: microsecond of downtime, so the canonical crash (a few hundred us
#: of outage) always exhausts the budget.
TIGHT = SloSpec(name="tight", availability_target=0.9999999)


@pytest.fixture(scope="module")
def crash_journal():
    return run_schedule(canonical_scenario()).journal_events


class TestCanonicalScenarioAcceptance:
    def test_exhausting_fault_produces_exactly_one_alert(
            self, crash_journal):
        outcome = evaluate_slos(crash_journal, specs=[TIGHT])
        (budget,) = outcome.budgets
        assert budget.shard == "svc"
        assert budget.exhausted
        assert len(outcome.alerts) == 1

    def test_cross_check_is_consistent(self, crash_journal):
        outcome = evaluate_slos(crash_journal, specs=[TIGHT])
        matches = match_fault_alerts(crash_journal, outcome)
        assert matches
        assert all(m.ok for m in matches)
        exhausted = [m for m in matches if m.budget_exhausted]
        assert exhausted and all(m.n_alerts == 1 for m in exhausted)
        _, spurious = unmatched_alerts(crash_journal, outcome)
        assert spurious == 0

    def test_default_objective_absorbs_the_crash(self, crash_journal):
        # Three nines over the same horizon grants ~330 us of budget;
        # the canonical crash spends less, so no breach and no page.
        outcome = evaluate_slos(crash_journal)
        assert outcome.ok
        assert outcome.alerts == ()


class TestSloCli:
    @pytest.fixture()
    def journal_path(self, tmp_path, crash_journal):
        path = tmp_path / "journal.jsonl"
        write_jsonl(crash_journal, str(path))
        return str(path)

    @pytest.fixture()
    def tight_spec_path(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps([TIGHT.to_dict()]))
        return str(path)

    def test_status_renders_budget_table(self, journal_path, capsys):
        assert main(["slo", "status", journal_path]) == 0
        out = capsys.readouterr().out
        assert "SLO status" in out
        assert "svc" in out
        assert "availability-3n" in out

    def test_status_exits_1_on_breach(self, journal_path,
                                      tight_spec_path, capsys):
        assert main(["slo", "status", journal_path,
                     "--spec", tight_spec_path]) == 1
        assert "BREACH" in capsys.readouterr().out

    def test_alerts_lists_episodes(self, journal_path,
                                   tight_spec_path, capsys):
        main(["slo", "alerts", journal_path, "--spec", tight_spec_path])
        out = capsys.readouterr().out
        assert "1 burn-rate alert(s)" in out
        assert "tight" in out

    def test_report_includes_cross_check(self, journal_path,
                                         tight_spec_path, capsys):
        main(["slo", "report", journal_path, "--spec", tight_spec_path])
        out = capsys.readouterr().out
        assert "fault/alert cross-check" in out
        assert "INCONSISTENT" not in out

    def test_status_writes_html_panel(self, journal_path, tmp_path,
                                      capsys):
        html = tmp_path / "panel.html"
        assert main(["slo", "status", journal_path,
                     "--html", str(html)]) == 0
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_missing_journal_is_a_usage_error(self, tmp_path, capsys):
        assert main(["slo", "status", str(tmp_path / "nope.jsonl")]) == 2

    def test_empty_journal_exits_1(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["slo", "status", str(path)]) == 1


class TestCampaignSloDeterminism:
    def spec(self):
        from repro.campaign import CampaignSpec
        return CampaignSpec(
            name="slo-determinism", styles=["warm_passive"],
            replica_counts=[2], fault_loads=["none", "process_crash"],
            seeds=[0], n_clients=1, duration_us=200_000.0,
            rate_per_s=100.0, settle_us=400_000.0)

    def run_to_bytes(self, tmp_path, tag, workers):
        from repro.campaign import ResultsStore, run_campaign
        store = ResultsStore(str(tmp_path / f"{tag}.jsonl"))
        summary = run_campaign(self.spec(), store, workers=workers,
                               slo=True)
        assert summary.failed == 0
        return open(store.path, "rb").read()

    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        serial = self.run_to_bytes(tmp_path, "serial", 1)
        parallel = self.run_to_bytes(tmp_path, "parallel", 2)
        assert parallel == serial

    def test_records_carry_slo_verdicts(self, tmp_path):
        from repro.campaign import ResultsStore, run_campaign
        store = ResultsStore(str(tmp_path / "verdicts.jsonl"))
        run_campaign(self.spec(), store, workers=1, slo=True)
        records = [json.loads(line) for line in
                   open(store.path).read().splitlines()]
        assert records
        for record in records:
            verdict = record["metrics"]["slo"]
            assert verdict["cross_check"]["ok"]
            assert {"slos", "breached", "alerts", "ok"} \
                <= set(verdict)

    def test_campaign_cli_slo_flag(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(self.spec().to_json())
        out_path = tmp_path / "results.jsonl"
        assert main(["campaign", str(spec_path),
                     "--results", str(out_path), "--slo"]) == 0
        out = capsys.readouterr().out
        assert "slo:" in out
        assert "cross-check failure(s)" in out
