"""Tests for the CTMC availability model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.markov import (
    RepairableGroupModel,
    failover_window_for_style,
    plan_redundancy,
)
from repro.errors import PolicyError
from repro.replication import ReplicationStyle


class TestSteadyState:
    def test_distribution_sums_to_one(self):
        model = RepairableGroupModel(n_replicas=3)
        pi = model.steady_state()
        assert len(pi) == 4
        assert sum(pi) == pytest.approx(1.0)
        assert all(p >= 0 for p in pi)

    def test_full_service_dominates_with_fast_repair(self):
        model = RepairableGroupModel(n_replicas=3, mttf_us=3.6e9,
                                     mttr_us=5e6)
        pi = model.steady_state()
        assert pi[3] > 0.99
        assert pi[0] < 1e-6

    def test_single_replica_matches_mttf_mttr_formula(self):
        """For n=1 the chain is the textbook two-state model:
        availability = MTTF / (MTTF + MTTR)."""
        mttf, mttr = 1e9, 1e7
        model = RepairableGroupModel(n_replicas=1, mttf_us=mttf,
                                     mttr_us=mttr, failover_us=0.0)
        pi = model.steady_state()
        assert pi[1] == pytest.approx(mttf / (mttf + mttr))
        assert model.availability() == pytest.approx(
            mttf / (mttf + mttr))

    @given(st.integers(min_value=1, max_value=6),
           st.floats(min_value=1e6, max_value=1e10),
           st.floats(min_value=1e3, max_value=1e8))
    @settings(max_examples=50)
    def test_valid_distribution_for_any_parameters(self, n, mttf, mttr):
        model = RepairableGroupModel(n_replicas=n, mttf_us=mttf,
                                     mttr_us=mttr)
        pi = model.steady_state()
        assert sum(pi) == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 for p in pi)


class TestAvailability:
    def test_more_replicas_higher_availability(self):
        values = [RepairableGroupModel(n_replicas=n).availability()
                  for n in (1, 2, 3)]
        assert values[0] < values[1] <= values[2] <= 1.0

    def test_smaller_failover_window_higher_availability(self):
        fast = RepairableGroupModel(n_replicas=2, failover_us=1_000.0)
        slow = RepairableGroupModel(n_replicas=2, failover_us=5e6)
        assert fast.availability() > slow.availability()

    def test_expected_live_replicas_near_n(self):
        model = RepairableGroupModel(n_replicas=3)
        expected = model.expected_live_replicas()
        assert 2.99 < expected <= 3.0


class TestMeanTimeToTotalFailure:
    def test_grows_explosively_with_redundancy(self):
        """Adding a replica multiplies the time to total failure by
        roughly MTTF/MTTR — the whole point of redundancy."""
        times = [RepairableGroupModel(
            n_replicas=n).mean_time_to_total_failure_us()
            for n in (1, 2, 3)]
        assert times[0] < times[1] < times[2]
        assert times[1] / times[0] > 100.0
        assert times[2] / times[1] > 100.0

    def test_single_replica_is_mttf(self):
        model = RepairableGroupModel(n_replicas=1, mttf_us=7e8)
        assert model.mean_time_to_total_failure_us() == pytest.approx(7e8)

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=20)
    def test_positive_for_any_size(self, n):
        model = RepairableGroupModel(n_replicas=n)
        assert model.mean_time_to_total_failure_us() > 0


class TestPlanning:
    def test_style_windows_ordered(self):
        active = failover_window_for_style(ReplicationStyle.ACTIVE)
        warm = failover_window_for_style(ReplicationStyle.WARM_PASSIVE)
        cold = failover_window_for_style(ReplicationStyle.COLD_PASSIVE)
        assert active < warm < cold

    def test_semi_active_fast_like_active(self):
        assert failover_window_for_style(ReplicationStyle.SEMI_ACTIVE) \
            == failover_window_for_style(ReplicationStyle.ACTIVE)

    def test_plan_lax_target_one_replica(self):
        assert plan_redundancy(0.9, ReplicationStyle.ACTIVE) == 1

    def test_plan_strict_target_needs_more_replicas_for_cold(self):
        cold_n = plan_redundancy(0.998, ReplicationStyle.COLD_PASSIVE)
        active_n = plan_redundancy(0.998, ReplicationStyle.ACTIVE)
        assert cold_n >= active_n

    def test_plan_unreachable_raises(self):
        with pytest.raises(PolicyError):
            plan_redundancy(0.999999999, ReplicationStyle.COLD_PASSIVE,
                            mttf_us=1e7, mttr_us=1e7, max_replicas=2)

    def test_plan_validates_target(self):
        with pytest.raises(PolicyError):
            plan_redundancy(1.5, ReplicationStyle.ACTIVE)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(PolicyError):
            RepairableGroupModel(n_replicas=0)
        with pytest.raises(PolicyError):
            RepairableGroupModel(n_replicas=1, mttf_us=0.0)
        with pytest.raises(PolicyError):
            RepairableGroupModel(n_replicas=1, failover_us=-1.0)
