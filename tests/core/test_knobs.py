"""Tests for the low-level and high-level knobs against a live system."""

import pytest

from repro.core import (
    AvailabilityKnob,
    AvailabilityModel,
    CheckpointIntervalKnob,
    NumReplicasKnob,
    ReplicationStyleKnob,
    ScalabilityKnob,
    ScalabilityPolicy,
)
from repro.errors import PolicyError
from repro.experiments import Testbed, deploy_client, deploy_replica
from repro.orb import CounterServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicaFactory,
    ReplicationConfig,
    ReplicationStyle,
)
from tests.core.test_policies import paper_profile
from tests.replication.helpers import build_rig, call


def _knob_rig(target=3, style=ReplicationStyle.ACTIVE, n_hosts=4, seed=0):
    testbed = Testbed.paper_testbed(n_hosts, 1, seed=seed)
    config = ReplicationConfig(style=style, group="svc")
    spawned = []

    def spawn(host):
        replica = deploy_replica(testbed, host.name, config,
                                 {"counter": CounterServant},
                                 process_name=f"svc@{host.name}")
        spawned.append(replica)
        style_knob.add_replica(replica.replicator)
        ckpt_knob.add_replica(replica.replicator)
        return replica

    manager = testbed.connect(testbed.spawn("w01", "mgr"))
    hosts = [testbed.hosts[f"s{i:02d}"] for i in range(1, n_hosts + 1)]
    factory = ReplicaFactory(manager, "svc", hosts, spawn, target=target,
                             calibration=testbed.calibration.replication)
    style_knob = ReplicationStyleKnob([])
    ckpt_knob = CheckpointIntervalKnob([])
    replicas_knob = NumReplicasKnob(factory)
    client = deploy_client(testbed, "w01", ClientReplicationConfig(
        group="svc", expected_style=style))
    testbed.run(3_000_000)
    return testbed, factory, style_knob, replicas_knob, ckpt_knob, client, spawned


def test_style_knob_switches_live_system():
    testbed, factory, style_knob, *_ , client, spawned = _knob_rig(
        style=ReplicationStyle.WARM_PASSIVE)
    assert style_knob.get() is ReplicationStyle.WARM_PASSIVE
    style_knob.set(ReplicationStyle.ACTIVE)
    testbed.run(2_000_000)
    assert style_knob.get() is ReplicationStyle.ACTIVE
    reply = call(testbed, client, "add", 4)
    assert reply.payload == 4


def test_style_knob_idempotent_set():
    testbed, factory, style_knob, *_ = _knob_rig(
        style=ReplicationStyle.ACTIVE)
    style_knob.set(ReplicationStyle.ACTIVE)  # no-op, must not raise
    assert style_knob.history == [ReplicationStyle.ACTIVE]


def test_replicas_knob_drives_factory():
    testbed, factory, style_knob, replicas_knob, *_ = _knob_rig(target=2)
    assert replicas_knob.get() == 2
    replicas_knob.set(4)
    testbed.run(3_000_000)
    assert factory.live_count == 4


def test_checkpoint_knob_changes_interval():
    testbed, factory, style_knob, replicas_knob, ckpt_knob, client, spawned = \
        _knob_rig(style=ReplicationStyle.WARM_PASSIVE)
    ckpt_knob.set(10)
    assert ckpt_knob.get() == 10
    primary = next(r for r in spawned if r.alive and
                   r.replicator.is_primary)
    before = primary.replicator.checkpoints_sent
    for _ in range(5):
        call(testbed, client, "add", 1)
    assert primary.replicator.checkpoints_sent == before


def test_scalability_knob_applies_table2_policy():
    testbed, factory, style_knob, replicas_knob, ckpt_knob, client, _ = \
        _knob_rig(target=2, style=ReplicationStyle.ACTIVE)
    policy = ScalabilityPolicy.synthesize(paper_profile())
    knob = ScalabilityKnob(policy, style_knob, replicas_knob)
    knob.set(4)  # Table 2: P(3)
    testbed.run(4_000_000)
    assert knob.get() == 4
    assert knob.last_entry.config.label == "P(3)"
    assert factory.target == 3
    assert style_knob.get() is ReplicationStyle.WARM_PASSIVE


def test_scalability_knob_one_client_picks_active_three():
    testbed, factory, style_knob, replicas_knob, ckpt_knob, client, _ = \
        _knob_rig(target=2, style=ReplicationStyle.WARM_PASSIVE)
    policy = ScalabilityPolicy.synthesize(paper_profile())
    knob = ScalabilityKnob(policy, style_knob, replicas_knob)
    knob.set(1)  # Table 2: A(3)
    testbed.run(4_000_000)
    assert factory.target == 3
    assert style_knob.get() is ReplicationStyle.ACTIVE


class TestAvailabilityModel:
    def test_more_replicas_more_availability(self):
        model = AvailabilityModel()
        a1 = model.availability(ReplicationStyle.WARM_PASSIVE, 1)
        a3 = model.availability(ReplicationStyle.WARM_PASSIVE, 3)
        assert a3 <= 1.0
        # With one replica a warm-passive crash still needs a respawn;
        # the model treats n=1 as the degenerate single-copy case.
        assert a1 <= a3 or a1 == a3

    def test_active_beats_warm_beats_cold(self):
        model = AvailabilityModel()
        active = model.availability(ReplicationStyle.ACTIVE, 2)
        warm = model.availability(ReplicationStyle.WARM_PASSIVE, 2)
        cold = model.availability(ReplicationStyle.COLD_PASSIVE, 2)
        assert active > warm > cold

    def test_plan_picks_cheapest_meeting_target(self):
        model = AvailabilityModel()
        style_knob = ReplicationStyleKnob([])
        knob = AvailabilityKnob(model, style_knob, None)
        # A lax target is met by the cheapest candidate style.
        style, n = knob.plan(0.9)
        assert style is ReplicationStyle.COLD_PASSIVE
        assert n == 1

    def test_plan_escalates_for_strict_target(self):
        model = AvailabilityModel()
        knob = AvailabilityKnob(model, ReplicationStyleKnob([]), None)
        lax_style, _ = knob.plan(0.99)
        strict_style, _ = knob.plan(0.999999)
        order = [ReplicationStyle.COLD_PASSIVE,
                 ReplicationStyle.WARM_PASSIVE,
                 ReplicationStyle.ACTIVE]
        assert order.index(strict_style) >= order.index(lax_style)

    def test_plan_invalid_target(self):
        knob = AvailabilityKnob(AvailabilityModel(),
                                ReplicationStyleKnob([]), None)
        with pytest.raises(PolicyError):
            knob.plan(1.5)


def test_knob_history_recorded():
    testbed, factory, style_knob, replicas_knob, *_ = _knob_rig(target=2)
    replicas_knob.set(3)
    replicas_knob.set(2)
    assert replicas_knob.history == [3, 2]


def test_style_knob_without_replicas_raises():
    knob = ReplicationStyleKnob([])
    assert knob.get() is None
    with pytest.raises(PolicyError):
        knob.set(ReplicationStyle.ACTIVE)
