"""Tests for the Fig. 1 / Fig. 9 design-space model."""

import pytest

from repro.core import ConfigPoint, DesignSpace, Measurement, Profile
from repro.errors import PolicyError
from repro.replication import ReplicationStyle

A = ReplicationStyle.ACTIVE
P = ReplicationStyle.WARM_PASSIVE


def small_profile() -> Profile:
    rows = [
        (A, 3, 1, 1200.0, 1.5), (A, 3, 5, 2000.0, 5.6),
        (A, 2, 1, 1100.0, 1.0), (A, 2, 5, 1900.0, 3.9),
        (P, 3, 1, 2400.0, 0.9), (P, 3, 5, 7300.0, 2.9),
        (P, 2, 1, 2200.0, 0.7), (P, 2, 5, 6000.0, 2.8),
    ]
    return Profile(
        Measurement(config=ConfigPoint(style=s, n_replicas=r),
                    n_clients=c, latency_us=lat, jitter_us=0.0,
                    bandwidth_mbps=bw)
        for s, r, c, lat, bw in rows)


def test_normalization_in_unit_cube():
    space = DesignSpace.from_profile(small_profile())
    for point in space.points:
        assert 0.0 <= point.fault_tolerance <= 1.0
        assert 0.0 <= point.performance <= 1.0
        assert 0.0 <= point.resources <= 1.0


def test_slowest_config_has_zero_performance():
    space = DesignSpace.from_profile(small_profile())
    worst = min(space.points, key=lambda p: p.performance)
    assert worst.performance == pytest.approx(0.0)
    assert worst.style is P


def test_regions_partition_points():
    space = DesignSpace.from_profile(small_profile())
    assert len(space.region(A)) + len(space.region(P)) == len(space.points)


def test_active_faster_than_passive_everywhere():
    """Fig. 9's observation: the active region sits at higher
    performance, the passive region at lower resources."""
    space = DesignSpace.from_profile(small_profile())
    min_active_perf = min(p.performance for p in space.region(A))
    max_passive_perf = max(p.performance for p in space.region(P))
    assert min_active_perf > max_passive_perf


def test_regions_do_not_overlap():
    space = DesignSpace.from_profile(small_profile())
    assert not space.regions_overlap(A, P)


def test_region_bounds():
    space = DesignSpace.from_profile(small_profile())
    bounds = space.region_bounds(A)
    low, high = bounds["performance"]
    assert 0.0 <= low <= high <= 1.0


def test_region_bounds_unknown_style():
    space = DesignSpace.from_profile(small_profile())
    with pytest.raises(PolicyError):
        space.region_bounds(ReplicationStyle.COLD_PASSIVE)


def test_coverage_volume_positive_and_bounded():
    space = DesignSpace.from_profile(small_profile())
    assert 0.0 < space.coverage_volume() <= 1.0


def test_empty_space_rejected():
    with pytest.raises(PolicyError):
        DesignSpace([])
