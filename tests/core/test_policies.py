"""Tests for policy synthesis (Table 2) and threshold switching."""

import pytest

from repro.core import (
    ConfigPoint,
    Constraints,
    CostFunction,
    Measurement,
    Profile,
    ScalabilityPolicy,
    ThresholdSwitchPolicy,
)
from repro.errors import ContractViolation, PolicyError
from repro.replication import ReplicationStyle

A = ReplicationStyle.ACTIVE
P = ReplicationStyle.WARM_PASSIVE


def paper_profile() -> Profile:
    """A profile seeded with the paper's own Table 2 / Fig. 7 numbers
    (interpolating the unreported cells conservatively)."""
    rows = [
        # (style, n_rep, n_cli, latency, bandwidth)
        (A, 3, 1, 1245.8, 1.074), (A, 3, 2, 1457.2, 2.032),
        (A, 3, 3, 1650.0, 3.100), (A, 3, 4, 1800.0, 4.100),
        (A, 3, 5, 2000.0, 5.600),
        (A, 2, 1, 1150.0, 0.800), (A, 2, 2, 1350.0, 1.500),
        (A, 2, 3, 1500.0, 2.300), (A, 2, 4, 1700.0, 3.100),
        (A, 2, 5, 1900.0, 3.900),
        (P, 3, 1, 2400.0, 0.900), (P, 3, 2, 3700.0, 1.400),
        (P, 3, 3, 4966.0, 1.887), (P, 3, 4, 6141.1, 2.315),
        (P, 3, 5, 7300.0, 2.900),
        (P, 2, 1, 2200.0, 0.700), (P, 2, 2, 3300.0, 1.200),
        (P, 2, 3, 4400.0, 1.700), (P, 2, 4, 5200.0, 2.200),
        (P, 2, 5, 6006.2, 2.799),
    ]
    return Profile(
        Measurement(config=ConfigPoint(style=s, n_replicas=r),
                    n_clients=c, latency_us=lat, jitter_us=0.0,
                    bandwidth_mbps=bw)
        for s, r, c, lat, bw in rows)


def test_table2_pattern_from_paper_numbers():
    """Feeding the paper's own measurements through the synthesis
    reproduces Table 2 exactly: A(3), A(3), P(3), P(3), P(2)."""
    policy = ScalabilityPolicy.synthesize(paper_profile())
    labels = [policy.best_configuration(n).config.label
              for n in (1, 2, 3, 4, 5)]
    assert labels == ["A(3)", "A(3)", "P(3)", "P(3)", "P(2)"]


def test_table2_faults_tolerated_drop_at_five_clients():
    policy = ScalabilityPolicy.synthesize(paper_profile())
    faults = [policy.best_configuration(n).faults_tolerated
              for n in (1, 2, 3, 4, 5)]
    assert faults == [2, 2, 2, 2, 1]


def test_table2_costs_match_paper():
    policy = ScalabilityPolicy.synthesize(paper_profile())
    assert policy.best_configuration(1).cost == pytest.approx(0.268,
                                                              abs=0.001)
    assert policy.best_configuration(2).cost == pytest.approx(0.443,
                                                              abs=0.001)
    assert policy.best_configuration(5).cost == pytest.approx(0.895,
                                                              abs=0.001)


def test_infeasible_load_raises_contract_violation():
    """Beyond the supported load the operator must be notified."""
    profile = paper_profile()
    profile.add(Measurement(
        config=ConfigPoint(style=P, n_replicas=2), n_clients=9,
        latency_us=12_000.0, jitter_us=0.0, bandwidth_mbps=4.5))
    policy = ScalabilityPolicy.synthesize(profile)
    with pytest.raises(ContractViolation):
        policy.best_configuration(9)


def test_unprofiled_load_raises_policy_error():
    policy = ScalabilityPolicy.synthesize(paper_profile())
    with pytest.raises(PolicyError):
        policy.best_configuration(42)


def test_max_supported_clients():
    policy = ScalabilityPolicy.synthesize(paper_profile())
    assert policy.max_supported_clients() == 5


def test_tighter_constraints_prune_more():
    tight = Constraints(max_latency_us=2000.0, max_bandwidth_mbps=3.0)
    policy = ScalabilityPolicy.synthesize(paper_profile(), tight)
    # Passive's latency never fits under 2000 us; beyond 2 clients the
    # actives exceed 3 MB/s, so only A configurations survive early on.
    assert policy.best_configuration(1).config.style is A
    with pytest.raises(ContractViolation):
        policy.best_configuration(5)


def test_cost_weight_changes_tie_breaks():
    """With p = 1 (latency only), ties at equal fault-tolerance go to
    the faster configuration."""
    profile = paper_profile()
    lat_only = CostFunction(latency_weight=1.0)
    policy = ScalabilityPolicy.synthesize(profile, cost_fn=lat_only)
    assert policy.best_configuration(1).config.label == "A(3)"


def test_table_lists_feasible_rows_in_order():
    policy = ScalabilityPolicy.synthesize(paper_profile())
    table = policy.table()
    assert [e.n_clients for e in table] == [1, 2, 3, 4, 5]


class TestThresholdSwitchPolicy:
    def test_switch_up_above_high(self):
        policy = ThresholdSwitchPolicy(rate_high_per_s=500,
                                       rate_low_per_s=300)
        assert policy.decide(P, 600) is A
        assert policy.decide(A, 600) is None

    def test_switch_down_below_low(self):
        policy = ThresholdSwitchPolicy(rate_high_per_s=500,
                                       rate_low_per_s=300)
        assert policy.decide(A, 200) is P
        assert policy.decide(P, 200) is None

    def test_hysteresis_band_keeps_current_style(self):
        policy = ThresholdSwitchPolicy(rate_high_per_s=500,
                                       rate_low_per_s=300)
        assert policy.decide(A, 400) is None
        assert policy.decide(P, 400) is None

    def test_invalid_thresholds(self):
        with pytest.raises(PolicyError):
            ThresholdSwitchPolicy(rate_high_per_s=100, rate_low_per_s=200)
        with pytest.raises(PolicyError):
            ThresholdSwitchPolicy(rate_high_per_s=100, rate_low_per_s=-5)
