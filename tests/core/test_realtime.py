"""Tests for the real-time-guarantees high-level knob (Table 1 row 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ConfigPoint,
    Measurement,
    Profile,
    RealTimePolicy,
    RealTimeRequirement,
    deadline_meet_probability,
)
from repro.errors import ContractViolation, PolicyError
from repro.replication import ReplicationStyle

A = ReplicationStyle.ACTIVE
P = ReplicationStyle.WARM_PASSIVE


def rt_profile() -> Profile:
    rows = [
        # (style, n_rep, n_cli, latency, jitter)
        (A, 3, 1, 1250.0, 20.0), (A, 2, 1, 1150.0, 15.0),
        (P, 3, 1, 2100.0, 60.0), (P, 2, 1, 1900.0, 50.0),
        (A, 3, 5, 2100.0, 90.0), (A, 2, 5, 2000.0, 80.0),
        (P, 3, 5, 7300.0, 470.0), (P, 2, 5, 6000.0, 380.0),
    ]
    return Profile(
        Measurement(config=ConfigPoint(style=s, n_replicas=r),
                    n_clients=c, latency_us=lat, jitter_us=jit,
                    bandwidth_mbps=1.0)
        for s, r, c, lat, jit in rows)


class TestMeetProbability:
    def test_mean_past_deadline_gives_zero(self):
        assert deadline_meet_probability(2000.0, 10.0, 1500.0) == 0.0

    def test_zero_jitter_gives_certainty(self):
        assert deadline_meet_probability(1000.0, 0.0, 1500.0) == 1.0

    def test_probability_grows_with_slack(self):
        tight = deadline_meet_probability(1000.0, 100.0, 1100.0)
        loose = deadline_meet_probability(1000.0, 100.0, 2000.0)
        assert loose > tight

    @given(st.floats(min_value=1, max_value=1e5),
           st.floats(min_value=0, max_value=1e4),
           st.floats(min_value=1, max_value=2e5))
    def test_probability_in_unit_interval(self, mean, jitter, deadline):
        p = deadline_meet_probability(mean, jitter, deadline)
        assert 0.0 <= p <= 1.0

    @given(st.floats(min_value=1, max_value=1e4),
           st.floats(min_value=1, max_value=1e3))
    def test_cantelli_bound_monotone_in_jitter(self, mean, jitter):
        deadline = mean + 10 * jitter + 100
        smaller = deadline_meet_probability(mean, jitter, deadline)
        larger = deadline_meet_probability(mean, 2 * jitter, deadline)
        assert larger <= smaller


class TestRealTimePolicy:
    def test_generous_deadline_picks_best_fault_tolerance(self):
        policy = RealTimePolicy(rt_profile())
        entry = policy.best_configuration(
            RealTimeRequirement(deadline_us=50_000.0), n_clients=1)
        assert entry.measurement.config.faults_tolerated == 2
        # Among FT=2 options the faster one wins.
        assert entry.measurement.config.label == "A(3)"

    def test_tight_deadline_forces_active(self):
        policy = RealTimePolicy(rt_profile())
        entry = policy.best_configuration(
            RealTimeRequirement(deadline_us=3000.0, confidence=0.9),
            n_clients=5)
        assert entry.measurement.config.style is A

    def test_impossible_deadline_raises_contract_violation(self):
        policy = RealTimePolicy(rt_profile())
        with pytest.raises(ContractViolation):
            policy.best_configuration(
                RealTimeRequirement(deadline_us=500.0), n_clients=1)

    def test_guaranteed_probability_meets_confidence(self):
        policy = RealTimePolicy(rt_profile())
        requirement = RealTimeRequirement(deadline_us=4000.0,
                                          confidence=0.95)
        entry = policy.best_configuration(requirement, n_clients=1)
        assert entry.guaranteed_probability >= 0.95

    def test_tightest_feasible_deadline_bracketed(self):
        policy = RealTimePolicy(rt_profile())
        tightest = policy.tightest_feasible_deadline(n_clients=1,
                                                     confidence=0.99)
        # Must exceed the fastest mean, and a slightly looser deadline
        # must actually be satisfiable.
        assert tightest > 1150.0
        entry = policy.best_configuration(
            RealTimeRequirement(deadline_us=tightest + 100.0,
                                confidence=0.99), n_clients=1)
        assert entry is not None

    def test_unknown_load_is_contract_violation(self):
        policy = RealTimePolicy(rt_profile())
        with pytest.raises(ContractViolation):
            policy.best_configuration(
                RealTimeRequirement(deadline_us=50_000.0), n_clients=9)

    def test_validation(self):
        with pytest.raises(PolicyError):
            RealTimeRequirement(deadline_us=0.0)
        with pytest.raises(PolicyError):
            RealTimeRequirement(deadline_us=100.0, confidence=1.5)
        with pytest.raises(PolicyError):
            RealTimePolicy(Profile())


class TestRealTimeKnobLive:
    def test_knob_drives_low_level_knobs(self):
        from repro.core import (NumReplicasKnob, RealTimeKnob,
                                ReplicationStyleKnob)

        class _StubFactory:
            def __init__(self):
                self.target = 2

            def set_target(self, n):
                self.target = n

        class _StubStyleKnob(ReplicationStyleKnob):
            def __init__(self):
                super().__init__([])
                self.value = None

            def get(self):
                return self.value

            def _apply(self, value):
                self.value = value

        factory = _StubFactory()
        style_knob = _StubStyleKnob()
        knob = RealTimeKnob(RealTimePolicy(rt_profile()), style_knob,
                            NumReplicasKnob(factory))
        entry = knob.set(RealTimeRequirement(deadline_us=3000.0,
                                             confidence=0.9),
                         n_clients=5)
        assert entry.measurement.config.style is A
        assert factory.target == entry.measurement.config.n_replicas
        assert style_knob.value is A
