"""Tests for the Table 1 knob-mapping registry."""

from repro.core import (
    APPLICATION_PARAMETERS,
    LOW_LEVEL_KNOBS,
    TABLE_1,
    validate_table,
)


def test_table_has_three_high_level_knobs():
    assert set(TABLE_1) == {"scalability", "availability", "real_time"}


def test_every_row_validates():
    validate_table()


def test_scalability_row_matches_paper():
    row = TABLE_1["scalability"]
    assert "replication_style" in row.low_level
    assert "n_replicas" in row.low_level
    assert "request_rate" in row.application_parameters
    assert "resources" in row.application_parameters


def test_availability_row_matches_paper():
    row = TABLE_1["availability"]
    assert "replication_style" in row.low_level
    assert "checkpoint_interval" in row.low_level
    assert "state_size" in row.application_parameters


def test_real_time_row_uses_all_low_level_knobs():
    row = TABLE_1["real_time"]
    assert set(row.low_level) == set(LOW_LEVEL_KNOBS)


def test_every_referenced_name_is_canonical():
    for row in TABLE_1.values():
        for knob in row.low_level:
            assert knob in LOW_LEVEL_KNOBS
        for parameter in row.application_parameters:
            assert parameter in APPLICATION_PARAMETERS


def test_replication_style_common_to_all_rows():
    """The paper's central theme: the replication style low-level knob
    underlies every high-level property."""
    for row in TABLE_1.values():
        assert "replication_style" in row.low_level
