"""Tests for constraints and the Section 4.3 cost function."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Constraints, CostFunction
from repro.errors import ConfigurationError


def test_paper_defaults():
    c = Constraints()
    assert c.max_latency_us == 7000.0
    assert c.max_bandwidth_mbps == 3.0
    f = CostFunction()
    assert f.latency_weight == 0.5


def test_constraints_satisfaction():
    c = Constraints()
    assert c.satisfied_by(6999.0, 2.9)
    assert not c.satisfied_by(7001.0, 2.9)
    assert not c.satisfied_by(6999.0, 3.1)


def test_cost_at_limits_is_one():
    """At exactly the constraint limits, cost = p + (1-p) = 1."""
    f = CostFunction()
    assert f.cost(7000.0, 3.0) == pytest.approx(1.0)


def test_paper_table2_cost_values():
    """Spot-check against Table 2's reported costs."""
    f = CostFunction()
    # A(3), 1 client: 1245.8 us, 1.074 MB/s -> 0.268
    assert f.cost(1245.8, 1.074) == pytest.approx(0.268, abs=0.001)
    # P(2), 5 clients: 6006.2 us, 2.799 MB/s -> 0.895
    assert f.cost(6006.2, 2.799) == pytest.approx(0.895, abs=0.001)


def test_weight_extremes():
    lat_only = CostFunction(latency_weight=1.0)
    bw_only = CostFunction(latency_weight=0.0)
    assert lat_only.cost(3500.0, 99.0) == pytest.approx(0.5)
    assert bw_only.cost(99999.0, 1.5) == pytest.approx(0.5)


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        Constraints(max_latency_us=0.0)
    with pytest.raises(ConfigurationError):
        CostFunction(latency_weight=1.5)
    with pytest.raises(ConfigurationError):
        CostFunction(latency_norm_us=-1.0)


def test_from_constraints_uses_limits_as_normalizers():
    c = Constraints(max_latency_us=1000.0, max_bandwidth_mbps=10.0)
    f = CostFunction.from_constraints(c)
    assert f.cost(1000.0, 10.0) == pytest.approx(1.0)


@given(st.floats(min_value=0, max_value=1e6),
       st.floats(min_value=0, max_value=1e3))
def test_cost_nonnegative(latency, bandwidth):
    assert CostFunction().cost(latency, bandwidth) >= 0.0


@given(st.floats(min_value=0, max_value=1e5),
       st.floats(min_value=0, max_value=1e5),
       st.floats(min_value=0, max_value=100))
def test_cost_monotone_in_latency(lat_a, lat_b, bandwidth):
    f = CostFunction()
    if lat_a <= lat_b:
        assert f.cost(lat_a, bandwidth) <= f.cost(lat_b, bandwidth)


@given(st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0, max_value=1e5),
       st.floats(min_value=0, max_value=100))
def test_cost_is_convex_combination(p, latency, bandwidth):
    f = CostFunction(latency_weight=p)
    lat_term = latency / 7000.0
    bw_term = bandwidth / 3.0
    cost = f.cost(latency, bandwidth)
    assert min(lat_term, bw_term) - 1e-9 <= cost <= max(lat_term,
                                                        bw_term) + 1e-9
