"""Scenario determinism, exploration, mutation detection, artifacts.

The golden-ordering guarantee — the kernel with no policy (or the
identity policy) dispatches events byte-identically to the pre-hook
kernel — is asserted two ways: digest equality between plain and
identity-policy runs here, and the pre-existing golden digests in
``tests/bench/test_golden_determinism.py`` staying green.
"""

from dataclasses import replace

import pytest

from repro.check import (MUTATIONS, CheckScenario, RandomWalkPolicy,
                         SchedulerPolicy, canonical_scenario,
                         explore, load_artifact, minimize, replay,
                         run_schedule, write_artifact)
from repro.check.artifact import artifact_from_report
from repro.errors import SimulationError
from repro.sim import Simulator


def _small_scenario(**overrides):
    """A shrunk canonical scenario: seconds of sim time, not tens."""
    base = replace(canonical_scenario(), n_requests=4,
                   horizon_us=1_000_000.0, settle_us=500_000.0)
    return replace(base, **overrides)


class TestKernelPolicyHook:
    def test_identity_policy_is_byte_identical_to_no_policy(self):
        scenario = _small_scenario()
        plain = run_schedule(scenario)
        identity = run_schedule(scenario, SchedulerPolicy())
        assert identity.digest == plain.digest

    def test_same_schedule_twice_is_deterministic(self):
        scenario = _small_scenario()
        policy_digests = {
            run_schedule(scenario, RandomWalkPolicy(seed=5)).digest
            for _ in range(2)}
        assert len(policy_digests) == 1

    def test_random_walks_actually_perturb_ordering(self):
        scenario = _small_scenario()
        digests = {run_schedule(scenario, RandomWalkPolicy(
            seed=s, delay_bound_us=150.0)).digest for s in range(3)}
        assert len(digests) > 1

    def test_policy_must_be_installed_before_scheduling(self):
        sim = Simulator(seed=1)
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.set_scheduler_policy(SchedulerPolicy())


class TestScenarioRoundTrip:
    def test_to_dict_from_dict_round_trips(self):
        scenario = canonical_scenario(seed=3,
                                      mutation="skip_final_checkpoint")
        assert CheckScenario.from_dict(scenario.to_dict()) == scenario

    def test_known_mutations_registered(self):
        assert set(MUTATIONS) == {"skip_final_checkpoint",
                                  "forget_seen_cache",
                                  "minority_serves"}


class TestExploration:
    def test_small_clean_exploration_verifies(self):
        result = explore(_small_scenario(), budget=3)
        assert result.ok
        assert result.schedules_run == 3
        assert result.distinct_schedules >= 1
        assert all(r.decisions for r in result.reports)

    def test_skip_final_checkpoint_caught_within_default_budget(self):
        # The seeded protocol bug: the switch coordinator skips the
        # final state checkpoint, so the post-switch read loses acked
        # increments.  Must be found well inside the CI budget of 200.
        scenario = canonical_scenario(mutation="skip_final_checkpoint")
        result = explore(scenario, budget=10)
        assert not result.ok
        violating = result.violating[0]
        invariants = {v.invariant for v in violating.violations}
        assert invariants  # at least one checker fired
        assert violating.decisions

    def test_explored_forks_match_fresh_runs_byte_for_byte(self):
        # The explorer forks every walk from one warmed snapshot; each
        # walk must digest identically to a from-scratch run of the
        # same (variant, policy) pair — forking is a pure fast path.
        result = explore(_small_scenario(), budget=3,
                         stop_on_violation=False)
        assert result.schedules_run == 3
        for report in result.reports:
            fresh = run_schedule(
                report.scenario,
                RandomWalkPolicy(seed=report.walk_seed, tie_choices=4,
                                 delay_bound_us=150.0))
            assert fresh.digest == report.digest


class TestArtifacts:
    @pytest.fixture(scope="class")
    def violating_report(self):
        scenario = canonical_scenario(mutation="skip_final_checkpoint")
        result = explore(scenario, budget=10)
        assert not result.ok
        return result.violating[0]

    def test_artifact_replays_byte_identically(self, violating_report):
        artifact = artifact_from_report(violating_report,
                                        tie_choices=4,
                                        delay_bound_us=150.0)
        outcome = replay(artifact)
        assert outcome.identical
        assert outcome.reproduced
        assert outcome.digest == violating_report.digest

    def test_minimize_keeps_the_failure(self, violating_report):
        artifact = artifact_from_report(violating_report,
                                        tie_choices=4,
                                        delay_bound_us=150.0)
        small = minimize(artifact)
        assert small.minimized
        assert small.violations
        assert small.scenario.n_requests <= artifact.scenario.n_requests
        assert small.scenario.horizon_us <= artifact.scenario.horizon_us
        assert replay(small).reproduced

    def test_artifact_file_round_trip(self, violating_report, tmp_path):
        artifact = artifact_from_report(violating_report,
                                        tie_choices=4,
                                        delay_bound_us=150.0)
        path = tmp_path / "repro.json"
        write_artifact(artifact, str(path))
        assert load_artifact(str(path)) == artifact


class TestPartitionScenario:
    def _scenario(self, **overrides):
        from repro.check import canonical_partition_scenario
        base = replace(canonical_partition_scenario(), n_requests=4,
                       horizon_us=4_000_000.0, settle_us=1_000_000.0)
        return replace(base, **overrides)

    def test_clean_partition_exploration_verifies(self):
        result = explore(self._scenario(), budget=2)
        assert result.ok
        assert result.schedules_run == 2
        # Ground truth made it into every schedule's journal.
        for report in result.reports:
            assert report.decisions

    def test_minority_serves_caught(self):
        result = explore(self._scenario(mutation="minority_serves"),
                         budget=10)
        assert not result.ok
        invariants = {v.invariant
                      for v in result.violating[0].violations}
        assert invariants & {"no_split_brain", "daemon_view_agreement"}

    def test_partition_scenario_requires_heal_after_split(self):
        from repro.check import prepare_schedule
        from repro.errors import VerificationError
        with pytest.raises(VerificationError):
            prepare_schedule(self._scenario(heal_at_us=None))
        with pytest.raises(VerificationError):
            prepare_schedule(self._scenario(heal_at_us=8_000.0))

    def test_partitionedness_is_a_prefix_parameter(self):
        from repro.check import finish_schedule, prepare_schedule
        from repro.errors import VerificationError
        prepared = prepare_schedule(self._scenario())
        unpartitioned = replace(self._scenario(), partition_at_us=None,
                                heal_at_us=None)
        with pytest.raises(VerificationError):
            finish_schedule(prepared, scenario=unpartitioned)
