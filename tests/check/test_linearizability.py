"""Wing–Gong checker unit tests over hand-built histories."""

from repro.check import CounterSpec, IncrementSpec, Operation, check_linearizability


def _op(op_id, operation, payload, invoked, completed=None, result=None):
    return Operation(op_id=op_id, object_key="counter",
                     operation=operation, payload=payload,
                     invoked_at=invoked, client="c1",
                     result=result, completed_at=completed)


class TestCounterHistories:
    def test_sequential_history_is_linearizable(self):
        ops = [
            _op("a", "add", 1, 0.0, 1.0, result=1),
            _op("b", "add", 1, 2.0, 3.0, result=2),
            _op("c", "read", 0, 4.0, 5.0, result=2),
        ]
        verdict = check_linearizability(ops, CounterSpec())
        assert verdict.ok
        assert list(verdict.linearization) == ["a", "b", "c"]

    def test_concurrent_adds_commute(self):
        ops = [
            _op("a", "add", 1, 0.0, 10.0, result=2),
            _op("b", "add", 1, 0.0, 10.0, result=1),
        ]
        assert check_linearizability(ops, CounterSpec()).ok

    def test_double_applied_add_is_rejected(self):
        # One add acknowledged as 1, yet a later read observes 2:
        # the increment took effect twice (the retry double-apply bug).
        ops = [
            _op("a", "add", 1, 0.0, 1.0, result=1),
            _op("b", "read", 0, 2.0, 3.0, result=2),
        ]
        verdict = check_linearizability(ops, CounterSpec())
        assert not verdict.ok
        assert verdict.blocked_ops

    def test_stale_read_is_rejected(self):
        # The read started after the add completed, so real-time order
        # forbids linearizing it before the add.
        ops = [
            _op("a", "add", 1, 0.0, 1.0, result=1),
            _op("b", "read", 0, 2.0, 3.0, result=0),
        ]
        assert not check_linearizability(ops, CounterSpec()).ok

    def test_pending_op_may_take_effect(self):
        # The pending add's reply was lost, but a later read proves it
        # executed — legal, the primary may have died after applying.
        ops = [
            _op("a", "add", 1, 0.0),  # no reply observed
            _op("b", "read", 0, 5.0, 6.0, result=1),
        ]
        assert check_linearizability(ops, CounterSpec()).ok

    def test_pending_op_may_never_take_effect(self):
        ops = [
            _op("a", "add", 1, 0.0),
            _op("b", "read", 0, 5.0, 6.0, result=0),
        ]
        assert check_linearizability(ops, CounterSpec()).ok

    def test_large_history_is_skipped_not_truncated(self):
        ops = [_op(f"a{i}", "add", 1, float(i), float(i) + 0.5,
                   result=i + 1)
               for i in range(30)]
        verdict = check_linearizability(ops, CounterSpec(),
                                        max_operations=10)
        assert verdict.ok and verdict.skipped


class TestIncrementSpec:
    def test_every_operation_increments(self):
        ops = [
            _op("a", "ping", 0, 0.0, 1.0, result=1),
            _op("b", "ping", 0, 2.0, 3.0, result=2),
        ]
        assert check_linearizability(ops, IncrementSpec()).ok

    def test_lost_increment_is_rejected(self):
        ops = [
            _op("a", "ping", 0, 0.0, 1.0, result=1),
            _op("b", "ping", 0, 2.0, 3.0, result=1),
        ]
        assert not check_linearizability(ops, IncrementSpec()).ok
