"""Invariant monitors over hand-built journal event streams."""

from repro.check import (Operation, Violation, check_counter_consistency,
                         check_invariants)
from repro.check.invariants import departed_hosts
from repro.journal import JournalEvent


def _ev(kind, host, time_us=0.0, seq=0, **attrs):
    return JournalEvent(seq=seq, time_us=time_us, host=host,
                        component="test", kind=kind, attrs=attrs)


def _view(host, view_id, members, left=(), time_us=0.0, group="svc"):
    return _ev("membership.view", host, time_us=time_us, group=group,
               view_id=view_id, members=list(members), left=list(left))


def _names(violations):
    return [v.invariant for v in violations]


class TestViewAgreement:
    def test_matching_views_pass(self):
        events = [
            _view("s01", 1, ["a@s01", "b@s02"]),
            _view("s02", 1, ["a@s01", "b@s02"]),
        ]
        assert check_invariants(events) == []

    def test_conflicting_membership_flagged(self):
        events = [
            _view("s01", 1, ["a@s01", "b@s02"]),
            _view("s02", 1, ["a@s01"]),
        ]
        assert "view_agreement" in _names(check_invariants(events))


class TestUniquePrimary:
    def test_single_primary_passes(self):
        events = [
            _view("s01", 1, ["a@s01", "b@s02"]),
            _view("s02", 1, ["a@s01", "b@s02"]),
            _ev("checkpoint.publish", "s01", time_us=10.0, sync_for=None),
            _ev("checkpoint.publish", "s01", time_us=20.0, sync_for=None),
        ]
        assert check_invariants(events) == []

    def test_two_primaries_in_one_view_flagged(self):
        events = [
            _view("s01", 1, ["a@s01", "b@s02"]),
            _view("s02", 1, ["a@s01", "b@s02"]),
            _ev("checkpoint.publish", "s01", time_us=10.0, sync_for=None),
            _ev("checkpoint.publish", "s02", time_us=11.0, sync_for=None),
        ]
        assert "unique_primary" in _names(check_invariants(events))

    def test_sync_checkpoints_are_not_primary_acts(self):
        # A joiner-sync checkpoint carries sync_for and may come from
        # any member without claiming the primary role.
        events = [
            _view("s01", 1, ["a@s01", "b@s02"]),
            _view("s02", 1, ["a@s01", "b@s02"]),
            _ev("checkpoint.publish", "s01", time_us=10.0, sync_for=None),
            _ev("checkpoint.publish", "s02", time_us=11.0,
                sync_for="c@s03"),
        ]
        assert check_invariants(events) == []

    def test_failover_in_next_view_is_legal(self):
        events = [
            _view("s01", 1, ["a@s01", "b@s02"]),
            _view("s02", 1, ["a@s01", "b@s02"]),
            _ev("checkpoint.publish", "s01", time_us=10.0, sync_for=None),
            _view("s02", 2, ["b@s02"], left=["a@s01"], time_us=20.0),
            _ev("failover", "s02", time_us=21.0),
        ]
        assert check_invariants(events) == []


class TestSwitchPhases:
    def _switch(self, kind, host, time_us, switch_id="sw1"):
        return _ev(kind, host, time_us=time_us, switch_id=switch_id,
                   from_style="warm_passive", to_style="active")

    def test_prepare_then_complete_passes(self):
        events = [
            self._switch("switch.prepare", "s01", 1.0),
            self._switch("switch.complete", "s01", 2.0),
        ]
        assert check_invariants(events) == []

    def test_complete_without_prepare_flagged(self):
        events = [self._switch("switch.complete", "s01", 2.0)]
        assert "switch_phase_order" in _names(check_invariants(events))

    def test_double_finish_flagged(self):
        events = [
            self._switch("switch.prepare", "s01", 1.0),
            self._switch("switch.complete", "s01", 2.0),
            self._switch("switch.rollback", "s01", 3.0),
        ]
        assert "switch_phase_once" in _names(check_invariants(events))

    def test_style_disagreement_flagged(self):
        events = [
            self._switch("switch.prepare", "s01", 1.0),
            _ev("switch.prepare", "s02", time_us=1.5, switch_id="sw1",
                from_style="warm_passive", to_style="cold_passive"),
        ]
        assert "switch_style_agreement" in _names(check_invariants(events))

    def test_wedged_host_flagged(self):
        events = [self._switch("switch.prepare", "s01", 1.0)]
        assert "switch_bounded_completion" in _names(
            check_invariants(events))

    def test_departed_host_exempt_from_bounded_completion(self):
        # s01 prepared, then its member left the view (crash or local
        # disconnect) — it cannot be held to finishing the switch.
        events = [
            self._switch("switch.prepare", "s01", 1.0),
            _view("s02", 2, ["b@s02"], left=["a@s01"], time_us=5.0),
        ]
        assert check_invariants(events) == []


class TestDepartedHosts:
    def test_collects_left_members_regardless_of_crash_flag(self):
        events = [
            _view("s02", 2, ["b@s02"], left=["a#7@s01"], time_us=5.0),
        ]
        assert departed_hosts(events) == {"s01"}


class TestCounterConsistency:
    def _add(self, op_id, result=None, completed=None):
        return Operation(op_id=op_id, object_key="counter",
                         operation="add", payload=1, invoked_at=0.0,
                         client="c1", result=result,
                         completed_at=completed)

    def test_consistent_state_passes(self):
        ops = [self._add("a", result=1, completed=1.0),
               self._add("b")]  # pending: may or may not have applied
        assert check_counter_consistency(ops, [2, 1]) == []

    def test_lost_acked_update_flagged(self):
        ops = [self._add("a", result=1, completed=1.0),
               self._add("b", result=2, completed=2.0)]
        violations = check_counter_consistency(ops, [1, 1])
        assert _names(violations) == ["no_lost_acked_updates"]

    def test_double_applied_update_flagged(self):
        ops = [self._add("a", result=1, completed=1.0)]
        violations = check_counter_consistency(ops, [2])
        assert _names(violations) == ["at_most_once"]

    def test_no_survivors_yields_no_verdict(self):
        ops = [self._add("a", result=1, completed=1.0)]
        assert check_counter_consistency(ops, []) == []

    def test_violation_serializes(self):
        violation = Violation(invariant="x", message="m", time_us=1.0,
                              details={"k": 1})
        assert violation.to_dict() == {
            "invariant": "x", "message": "m", "time_us": 1.0,
            "details": {"k": 1}}
