"""Scheduler policy unit tests: determinism, recording, replay."""

import pytest

from repro.check import RandomWalkPolicy, ReplayPolicy, SchedulerPolicy
from repro.errors import VerificationError


class TestSchedulerPolicy:
    def test_identity_policy_is_neutral(self):
        policy = SchedulerPolicy()
        assert policy.tie_break() == 0
        assert policy.message_delay(1024) == 0.0


class TestRandomWalkPolicy:
    def test_same_seed_same_decisions(self):
        a = RandomWalkPolicy(seed=7, tie_choices=4, delay_bound_us=100.0)
        b = RandomWalkPolicy(seed=7, tie_choices=4, delay_bound_us=100.0)
        got_a = [a.tie_break() for _ in range(50)]
        got_a += [a.message_delay(256) for _ in range(50)]
        got_b = [b.tie_break() for _ in range(50)]
        got_b += [b.message_delay(256) for _ in range(50)]
        assert got_a == got_b
        assert a.decisions == b.decisions

    def test_different_seeds_diverge(self):
        a = RandomWalkPolicy(seed=1)
        b = RandomWalkPolicy(seed=2)
        assert ([a.tie_break() for _ in range(30)]
                != [b.tie_break() for _ in range(30)])

    def test_ties_bounded_and_delays_within_bound(self):
        policy = RandomWalkPolicy(seed=3, tie_choices=5,
                                  delay_bound_us=42.0)
        for _ in range(100):
            assert 0 <= policy.tie_break() < 5
            assert 0.0 <= policy.message_delay(64) <= 42.0

    def test_zero_delay_bound_records_no_delay_decisions(self):
        policy = RandomWalkPolicy(seed=3, delay_bound_us=0.0)
        policy.tie_break()
        assert policy.message_delay(64) == 0.0
        assert len(policy.decisions) == 1  # only the tie-break


class TestReplayPolicy:
    def test_replays_recorded_walk_exactly(self):
        walk = RandomWalkPolicy(seed=9, tie_choices=4,
                                delay_bound_us=75.0)
        recorded = []
        for i in range(20):
            recorded.append(walk.tie_break())
            recorded.append(walk.message_delay(128 + i))
        replay = ReplayPolicy(walk.decisions, delay_bound_us=75.0)
        replayed = []
        for i in range(20):
            replayed.append(replay.tie_break())
            replayed.append(replay.message_delay(128 + i))
        assert replayed == recorded
        assert replay.exhausted

    def test_drift_raises(self):
        replay = ReplayPolicy([2, 0.5], delay_bound_us=75.0)
        with pytest.raises(VerificationError):
            replay.message_delay(64)  # recorded decision is a tie-break

    def test_exhaustion_raises(self):
        replay = ReplayPolicy([1], delay_bound_us=0.0)
        assert replay.tie_break() == 1
        with pytest.raises(VerificationError):
            replay.tie_break()
