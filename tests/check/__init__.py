"""Tests of the repro.check verification subsystem."""
