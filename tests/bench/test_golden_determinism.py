"""Golden-digest regression: the fast path is behavior-invariant.

The hot-path work (kernel fast scheduling, heap compaction, GCS
routing caches, loopback loss skip, the persistent campaign pool) is
only admissible if it never changes simulation results.  These tests
pin that: the same seed must produce byte-identical journal and
telemetry exports whether the optimized kernel or the naive
:class:`ReferenceSimulator` drives the run, and whether a campaign
runs serially or across the worker pool.
"""

import hashlib

from repro.bench import ReferenceSimulator
from repro.campaign import CampaignSpec, ResultsStore, run_campaign
from repro.experiments import testbed as testbed_module
from repro.experiments.scenarios import run_replicated_load
from repro.journal.io import events_to_jsonl
from repro.replication import ReplicationStyle
from repro.sim import Simulator
from repro.telemetry import chrome_trace_json


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _golden_run(monkeypatch, sim_cls, style):
    """One journaled + traced load run on the given kernel class."""
    monkeypatch.setattr(testbed_module, "Simulator", sim_cls)
    result = run_replicated_load(
        style, n_replicas=3, n_clients=2, n_requests=25,
        seed=5, telemetry=True, journal=True)
    assert result.completed == 50
    journal = events_to_jsonl(result.journal.events)
    telemetry = chrome_trace_json(result.telemetry.spans)
    assert journal and telemetry
    return _digest(journal), _digest(telemetry)


def test_fast_kernel_matches_reference_active(monkeypatch):
    reference = _golden_run(monkeypatch, ReferenceSimulator,
                            ReplicationStyle.ACTIVE)
    fast = _golden_run(monkeypatch, Simulator, ReplicationStyle.ACTIVE)
    assert fast == reference


def test_fast_kernel_matches_reference_warm_passive(monkeypatch):
    reference = _golden_run(monkeypatch, ReferenceSimulator,
                            ReplicationStyle.WARM_PASSIVE)
    fast = _golden_run(monkeypatch, Simulator,
                       ReplicationStyle.WARM_PASSIVE)
    assert fast == reference


def test_kernel_level_trace_identical():
    """Same seed, same stochastic workload: the two kernels dispatch
    the exact same (time, value) sequence."""
    def drive(sim):
        out = []

        def tick(n):
            out.append((sim.now, sim.rng.random()))
            if n:
                handle = sim.schedule_fast(50.0, tick, 0)
                handle.cancel()
                sim.schedule_fast(sim.rng.uniform(1, 9), tick, n - 1)

        sim.schedule(0.0, tick, 400)
        sim.run()
        return out

    assert drive(Simulator(seed=13)) == drive(ReferenceSimulator(seed=13))


def _campaign_spec():
    return CampaignSpec(
        name="golden", styles=["active", "warm_passive"],
        replica_counts=[2], fault_loads=["none", "process_crash"],
        seeds=[0], n_clients=1, duration_us=200_000.0,
        rate_per_s=100.0, settle_us=400_000.0)


def _campaign_digests(tmp_path, tag, workers):
    journal_dir = tmp_path / f"{tag}-journal"
    store = ResultsStore(str(tmp_path / f"{tag}.jsonl"))
    summary = run_campaign(_campaign_spec(), store, workers=workers,
                           journal_dir=str(journal_dir))
    assert summary.failed == 0
    digests = {"results": _digest(open(store.path).read())}
    for path in sorted(journal_dir.iterdir()):
        digests[path.name] = _digest(path.read_text())
    assert len(digests) > 1  # the journals were actually captured
    return digests


def test_campaign_journals_identical_across_worker_counts(tmp_path):
    serial = _campaign_digests(tmp_path, "serial", 1)
    pooled = _campaign_digests(tmp_path, "pooled", 3)
    assert pooled == serial


def test_fault_trial_fork_matches_fresh_run_byte_for_byte():
    """A trial finished from a snapshot fork journals byte-identically
    to the same trial built from scratch — the property that lets the
    campaign worker reuse one warmed snapshot per configuration."""
    from repro.experiments.trial import (
        finish_fault_trial,
        prepare_fault_trial,
        run_fault_trial,
    )
    from repro.sim import SimSnapshot

    style = ReplicationStyle.WARM_PASSIVE
    fresh = run_fault_trial(style, 2, 1, duration_us=150_000.0,
                            rate_per_s=100.0, seed=3, journal=True)
    golden = events_to_jsonl(fresh.journal_events)

    prepared = prepare_fault_trial(style, 2, 1, seed=3, journal=True)
    snap = SimSnapshot.capture(prepared, sim=prepared.testbed.sim)
    for _ in range(2):  # every fork, not just the first
        forked = finish_fault_trial(snap.fork(), duration_us=150_000.0,
                                    rate_per_s=100.0)
        assert events_to_jsonl(forked.journal_events) == golden
