"""The bench harness: canonical artifacts and the quick suite."""

import json

from repro.bench import (
    PROFILE_NAMES,
    BenchReport,
    artifact_path,
    read_artifact,
    run_profile,
    write_artifact,
)


def test_suite_has_at_least_three_profiles():
    assert len(PROFILE_NAMES) >= 3
    assert "kernel_events" in PROFILE_NAMES


def test_artifact_is_canonical_sorted_json(tmp_path):
    report = BenchReport(profile="demo", quick=True,
                         parameters={"b": 2, "a": 1},
                         metrics={"zz": 1.23456, "aa": 2.0})
    path = write_artifact(report, str(tmp_path))
    assert path == artifact_path(str(tmp_path), "demo")
    text = open(path).read()
    # Canonical form: sorted keys, trailing newline, stable rounding.
    assert text == json.dumps(json.loads(text), sort_keys=True,
                              indent=2) + "\n"
    loaded = read_artifact(path)
    assert loaded["profile"] == "demo"
    assert loaded["metrics"] == {"zz": 1.235, "aa": 2.0}


def test_kernel_events_quick_profile_reports_speedup(tmp_path):
    report = run_profile("kernel_events", quick=True)
    assert report.quick
    for key in ("events_per_sec", "speedup_vs_reference",
                "chain_events_per_sec", "churn_events_per_sec",
                "peak_rss_kb", "wall_s"):
        assert key in report.metrics, key
    assert report.metrics["events_per_sec"] > 0
    # The optimized kernel must not be slower than the naive one; the
    # release criterion (>= 1.5x) is asserted on the full-size run,
    # not in CI where machines vary.
    assert report.metrics["speedup_vs_reference"] > 1.0
    write_artifact(report, str(tmp_path))
    assert read_artifact(artifact_path(str(tmp_path), "kernel_events"))


def test_rtt_quick_profile_measures_both_styles():
    report = run_profile("rtt", quick=True)
    metrics = report.metrics
    assert metrics["active_latency_mean_us"] > 0
    assert metrics["warm_passive_latency_mean_us"] > 0
    assert metrics["sim_us_per_wall_ms"] > 0
    assert metrics["events_per_sec"] > 0
