"""Unit tests for the journal recorder and its views."""

import pytest

from repro.journal import ADAPTATION_DECISION, Journal, JournalEvent
from repro.sim import NULL_JOURNAL


def record_n(journal, n, host="h1", kind="membership.view"):
    for i in range(n):
        journal.record(float(i), host, "gcs", kind, index=i)


class TestJournalRecord:
    def test_events_carry_sequence_and_payload(self):
        journal = Journal()
        event = journal.record(42.0, "s01", "gcs", "detector.suspect",
                               newly=["s02"])
        assert event.seq == 0
        assert event.time_us == 42.0
        assert event.host == "s01"
        assert event.component == "gcs"
        assert event.kind == "detector.suspect"
        assert event.attrs == {"newly": ["s02"]}
        assert event.trace_id is None

    def test_sequence_increments_in_record_order(self):
        journal = Journal()
        record_n(journal, 5)
        assert [e.seq for e in journal.events] == [0, 1, 2, 3, 4]
        assert len(journal) == 5

    def test_trace_id_links_to_telemetry(self):
        journal = Journal()
        event = journal.record(1.0, "s01", "replicator",
                               "switch.prepare", trace_id=7)
        assert event.trace_id == 7

    def test_max_events_overflow_counts_drops(self):
        journal = Journal(max_events=3)
        record_n(journal, 5)
        assert len(journal) == 3
        assert journal.dropped == 2

    def test_validates_configuration(self):
        with pytest.raises(ValueError):
            Journal(ring_size=0)
        with pytest.raises(ValueError):
            Journal(max_events=0)


class TestFlightRecorder:
    def test_ring_keeps_last_events_per_host(self):
        journal = Journal(ring_size=3)
        record_n(journal, 5, host="s01")
        journal.record(99.0, "s02", "gcs", "membership.view")
        ring = journal.flight_recorder("s01")
        # A truncated ring leads with its journal.truncated marker.
        assert ring[0].kind == "journal.truncated"
        assert ring[0].attrs["dropped"] == 2
        assert [e.attrs["index"] for e in ring[1:]] == [2, 3, 4]
        assert len(journal.flight_recorder("s02")) == 1
        assert journal.flight_recorder("nowhere") == ()
        # The global collector keeps everything the ring evicted,
        # plus the marker itself.
        assert len(journal) == 7
        assert journal.truncated_rings() == {"s01": 2}

    def test_untruncated_ring_has_no_marker(self):
        journal = Journal(ring_size=8)
        record_n(journal, 5, host="s01")
        ring = journal.flight_recorder("s01")
        assert [e.kind for e in ring] == ["membership.view"] * 5
        assert journal.truncated_rings() == {}

    def test_hosts_sorted(self):
        journal = Journal()
        for host in ("w02", "s01", "w01"):
            journal.record(1.0, host, "gcs", "membership.view")
        assert journal.hosts() == ("s01", "w01", "w02")


class TestOfKind:
    def test_matches_exact_and_dotted_prefix(self):
        journal = Journal()
        journal.record(1.0, "s01", "replicator", "switch.prepare")
        journal.record(2.0, "s01", "replicator", "switch.complete")
        journal.record(3.0, "s01", "replicator", "switchboard")
        assert [e.kind for e in journal.of_kind("switch")] == [
            "switch.prepare", "switch.complete"]
        assert [e.kind for e in journal.of_kind("switch.prepare")] == [
            "switch.prepare"]


class TestDecisionDedup:
    def decide(self, journal, host, switch_id="svc:P->A:0"):
        return journal.record(
            10.0, host, "adaptation", ADAPTATION_DECISION,
            switch_id=switch_id, rate_per_s=500.0,
            from_style="warm_passive", to_style="active")

    def test_duplicate_decisions_merge_into_voters(self):
        journal = Journal()
        first = self.decide(journal, "s01")
        assert self.decide(journal, "s02") is None
        assert self.decide(journal, "s03") is None
        decisions = journal.of_kind(ADAPTATION_DECISION)
        assert len(decisions) == 1
        assert first.attrs["voters"] == 3
        assert first.attrs["voter_hosts"] == ["s01", "s02", "s03"]

    def test_distinct_switches_stay_distinct(self):
        journal = Journal()
        self.decide(journal, "s01", switch_id="svc:P->A:0")
        self.decide(journal, "s01", switch_id="svc:A->P:1")
        assert len(journal.of_kind(ADAPTATION_DECISION)) == 2

    def test_decision_without_switch_id_not_merged(self):
        journal = Journal()
        journal.record(1.0, "s01", "adaptation", ADAPTATION_DECISION)
        journal.record(1.0, "s02", "adaptation", ADAPTATION_DECISION)
        assert len(journal.of_kind(ADAPTATION_DECISION)) == 2


class TestJournalEvent:
    def test_round_trips_through_dict(self):
        event = JournalEvent(seq=3, time_us=12.5, host="s01",
                             component="gcs", kind="membership.view",
                             attrs={"view_id": 2}, trace_id=9)
        assert JournalEvent.from_dict(event.to_dict()) == event

    def test_to_dict_omits_absent_trace_id(self):
        event = JournalEvent(seq=0, time_us=0.0, host="h",
                             component="c", kind="k")
        assert "trace_id" not in event.to_dict()

    def test_shard_round_trips_and_is_omitted_when_absent(self):
        tagged = JournalEvent(seq=1, time_us=5.0, host="s01",
                              component="cluster", kind="shard.lost",
                              shard="shard2")
        assert tagged.to_dict()["shard"] == "shard2"
        assert JournalEvent.from_dict(tagged.to_dict()) == tagged
        bare = JournalEvent(seq=0, time_us=0.0, host="h",
                            component="c", kind="k")
        assert "shard" not in bare.to_dict()
        assert JournalEvent.from_dict(bare.to_dict()).shard is None

    def test_pre_shard_jsonl_line_still_parses(self):
        # A line captured before the shard field existed must load
        # byte-identically: same canonical serialization back out.
        import json
        line = ('{"attrs":{"a":1,"b":2},"component":"c","host":"h",'
                '"kind":"k","seq":0,"t_us":1.0}')
        event = JournalEvent.from_dict(json.loads(line))
        assert event.shard is None
        assert json.dumps(event.to_dict(), sort_keys=True,
                          separators=(",", ":")) == line

    def test_record_binds_shard_as_field_not_attr(self):
        journal = Journal()
        event = journal.record(1.0, "s01", "cluster", "migrate.start",
                               shard="shard0", dst="shard1")
        assert event.shard == "shard0"
        assert event.attrs == {"dst": "shard1"}

    def test_str_mentions_kind_and_attrs(self):
        event = JournalEvent(seq=0, time_us=1_000_000.0, host="s01",
                             component="gcs", kind="membership.view",
                             attrs={"view_id": 2})
        assert "membership.view" in str(event)
        assert "view_id=2" in str(event)


class TestNullJournal:
    def test_is_disabled_and_inert(self):
        assert NULL_JOURNAL.enabled is False
        assert NULL_JOURNAL.record(1.0, "h", "c", "k") is None
        assert NULL_JOURNAL.events == ()
        assert NULL_JOURNAL.flight_recorder("h") == ()
        assert NULL_JOURNAL.of_kind("k") == ()
        assert len(NULL_JOURNAL) == 0
        assert NULL_JOURNAL.dropped == 0

    def test_bare_simulator_defaults_to_null_journal(self):
        from repro.sim import Simulator
        assert Simulator(seed=0).journal is NULL_JOURNAL
