"""End-to-end journal guarantees.

The three load-bearing properties from the PR contract:

- determinism: same seed -> byte-identical JSONL artifact;
- off by default, and observation-only: a run with the journal on is
  byte-identical (in its simulated outcomes) to the same run with it
  off;
- the derived accounting agrees with the scenario's own bookkeeping
  (switch durations within 5 %; availability 1.0 when nothing fails)
  and every injected fault is matched to a detection or flagged
  missed.
"""

import json

import pytest

from repro.core import ThresholdSwitchPolicy
from repro.experiments import run_adaptive_scenario, run_fault_trial
from repro.experiments.scenarios import run_replicated_load
from repro.journal import (
    availability_report,
    events_to_jsonl,
    match_faults,
    switch_windows,
)
from repro.replication import ReplicationStyle
from repro.workload import SpikeProfile


def crash_second_replica(context):
    context.injector.crash_process_at(context.replicas[1].process,
                                      context.t0 + 300_000.0)


def run_trial(journal, seed=3, inject=crash_second_replica):
    return run_fault_trial(ReplicationStyle.ACTIVE, n_replicas=3,
                           n_clients=1, duration_us=800_000.0,
                           rate_per_s=150.0, seed=seed, inject=inject,
                           journal=journal)


class TestDeterminism:
    def test_same_seed_gives_byte_identical_jsonl(self):
        first = run_trial(journal=True)
        second = run_trial(journal=True)
        assert events_to_jsonl(first.journal_events) == \
            events_to_jsonl(second.journal_events)
        assert json.dumps(first.journal, sort_keys=True) == \
            json.dumps(second.journal, sort_keys=True)

    def test_different_seed_gives_different_jsonl(self):
        first = run_trial(journal=True, seed=3)
        second = run_trial(journal=True, seed=4)
        assert events_to_jsonl(first.journal_events) != \
            events_to_jsonl(second.journal_events)


class TestOffByDefault:
    def test_trial_results_identical_with_journal_on_or_off(self):
        off = run_trial(journal=False)
        on = run_trial(journal=True)
        assert off.journal is None
        assert off.journal_events is None
        stripped = {k: v for k, v in on.metrics().items()
                    if k != "journal"}
        assert json.dumps(stripped, sort_keys=True, default=str) == \
            json.dumps(off.metrics(), sort_keys=True, default=str)

    def test_off_metrics_carry_no_journal_key(self):
        off = run_trial(journal=False)
        assert "journal" not in off.metrics()

    def test_scenario_results_identical_with_journal_on_or_off(self):
        kwargs = dict(n_replicas=2, n_clients=1, n_requests=40, seed=1)
        off = run_replicated_load(ReplicationStyle.WARM_PASSIVE, **kwargs)
        on = run_replicated_load(ReplicationStyle.WARM_PASSIVE,
                                 journal=True, **kwargs)
        assert off.journal is None
        assert on.journal is not None and len(on.journal) > 0
        assert on.latency_mean_us == off.latency_mean_us
        assert on.jitter_us == off.jitter_us
        assert on.bandwidth_mbps == off.bandwidth_mbps
        assert on.completed == off.completed
        assert on.throughput_per_s == off.throughput_per_s
        assert on.breakdown == off.breakdown


class TestFaultCrossCheck:
    def test_every_injected_fault_matched_or_missed(self):
        result = run_trial(journal=True)
        digest = result.journal
        assert digest["faults_injected"] == 1
        assert digest["faults_injected"] == \
            digest["faults_matched"] + digest["faults_missed"]
        matches = match_faults(result.journal_events)
        assert all(m.detected or m.missed for m in matches)

    def test_process_crash_detected_with_positive_latency(self):
        result = run_trial(journal=True)
        (match,) = match_faults(result.journal_events)
        assert match.fault_kind == "process_crash"
        assert match.detected
        assert match.detection_latency_us > 0.0
        assert result.journal["mean_detection_latency_us"] > 0.0

    def test_journal_availability_tracks_trial_availability(self):
        result = run_trial(journal=True)
        # Both accountings bill the same outage; the journal closes it
        # at membership reconfiguration, the trial at the next
        # completed request, so they agree within 5 %.
        assert result.journal["availability"] == pytest.approx(
            result.availability, abs=0.05)
        assert result.journal["outages"] == 1


class TestAdaptiveCrossCheck:
    @pytest.fixture(scope="class")
    def adaptive(self):
        profile = SpikeProfile(base_rate=100.0, spike_rate=1100.0,
                               spike_start_us=700_000.0,
                               spike_end_us=2_200_000.0)
        policy = ThresholdSwitchPolicy(rate_high_per_s=400.0,
                                       rate_low_per_s=200.0)
        return run_adaptive_scenario(profile, 3_000_000.0,
                                     policy=policy, n_clients=2,
                                     seed=0, journal=True)

    def test_switch_durations_agree_within_5_percent(self, adaptive):
        assert adaptive.switch_events, "scenario produced no switches"
        completes = adaptive.journal.of_kind("switch.complete")
        for record in adaptive.switch_events:
            durations = [e.attrs["duration_us"] for e in completes
                         if e.attrs["switch_id"] == record.switch_id]
            assert durations, f"{record.switch_id} missing from journal"
            # The initiator's journal event carries the same duration
            # the SwitchRecord reports.
            closest = min(durations,
                          key=lambda d: abs(d - record.duration_us))
            assert abs(closest - record.duration_us) <= \
                max(0.05 * record.duration_us, 1.0)

    def test_journal_sees_every_completed_switch(self, adaptive):
        windows = switch_windows(adaptive.journal.events)
        assert set(windows) == {r.switch_id
                                for r in adaptive.switch_events}

    def test_faultless_run_is_fully_available(self, adaptive):
        report = availability_report(adaptive.journal.events)
        assert report.availability == 1.0
        assert report.downtime_us == 0.0
        assert report.n_outages == 0
        # The switches register as degraded time, not downtime.
        assert report.degraded_us > 0.0

    def test_decisions_deduplicated_across_managers(self, adaptive):
        decisions = adaptive.journal.of_kind("adaptation.decision")
        decision_ids = {d.attrs["switch_id"] for d in decisions}
        # One decision per switch — concurrent managers reaching the
        # same conclusion merge into voters rather than duplicates.
        assert len(decisions) == len(decision_ids)
        assert {r.switch_id
                for r in adaptive.switch_events} <= decision_ids
        for decision in decisions:
            assert decision.attrs["voters"] >= 1
            assert len(decision.attrs["voter_hosts"]) == \
                decision.attrs["voters"]
            assert "rate_per_s" in decision.attrs
            assert "inputs" in decision.attrs
