"""Availability accounting over synthetic event streams."""

import pytest

from repro.journal import (
    Journal,
    availability_report,
    discover_shards,
    event_shard,
    match_faults,
    per_shard_reports,
    switch_windows,
)


def build(*records):
    """Journal from ``(time, host, component, kind, attrs)`` tuples."""
    journal = Journal()
    for time, host, component, kind, attrs in records:
        journal.record(time, host, component, kind, **attrs)
    return journal.events


def crash(at, target="svc-r2", fault="process_crash", until=None):
    return (at, "net", "injector", "fault.inject",
            {"fault": fault, "target": target, "at_us": at,
             "until_us": until})


def view_drop(at, left=("svc-r2#2@s02",)):
    return (at, "s01", "gcs", "membership.view",
            {"group": "svc", "view_id": 3, "members": [],
             "joined": [], "left": list(left), "crashed": False})


def switch(at, kind, switch_id="svc:P->A:0"):
    return (at, "s01", "replicator", f"switch.{kind}",
            {"switch_id": switch_id, "from_style": "warm_passive",
             "to_style": "active"})


class TestAvailabilityReport:
    def test_no_events_is_fully_available(self):
        report = availability_report([], window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.availability == 1.0
        assert report.n_outages == 0
        assert report.mttr_us == 0.0
        assert report.mttf_us == 1_000.0
        assert [w.state for w in report.windows] == ["up"]

    def test_outage_closed_by_membership_view(self):
        events = build(crash(100.0), view_drop(400.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.downtime_us == pytest.approx(300.0)
        assert report.availability == pytest.approx(0.7)
        assert report.n_outages == 1
        assert report.mttr_us == pytest.approx(300.0)
        assert report.mttf_us == pytest.approx(700.0)
        assert [w.state for w in report.windows] == ["up", "down", "up"]

    def test_outage_closed_by_failover(self):
        events = build(
            crash(100.0),
            (250.0, "s01", "replicator", "failover",
             {"member": "svc-r1#1@s01", "style": "active"}))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.downtime_us == pytest.approx(150.0)

    def test_unrecovered_outage_runs_to_window_end(self):
        events = build(crash(600.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.downtime_us == pytest.approx(400.0)
        assert report.windows[-1].state == "down"

    def test_overlapping_outages_merge(self):
        events = build(crash(100.0, target="svc-r2"),
                       crash(200.0, target="svc-r3"),
                       view_drop(500.0,
                                 left=["svc-r2#2@s02", "svc-r3#3@s03"]))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.n_outages == 2
        # One merged down interval (100, 500), not 700 us of downtime.
        assert report.downtime_us == pytest.approx(400.0)

    def test_switch_counts_as_degraded_not_down(self):
        events = build(switch(300.0, "prepare"),
                       switch(450.0, "complete"))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.availability == 1.0
        assert report.degraded_us == pytest.approx(150.0)
        assert report.degraded_fraction == pytest.approx(0.15)
        assert [w.state for w in report.windows] == [
            "up", "degraded", "up"]

    def test_rollback_closes_degraded_window(self):
        events = build(switch(300.0, "prepare"),
                       switch(500.0, "rollback"))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.degraded_us == pytest.approx(200.0)

    def test_downtime_trumps_degradation(self):
        events = build(switch(200.0, "prepare"),
                       crash(300.0),
                       switch(600.0, "complete"),
                       view_drop(500.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        # Switch window (200, 600) loses its overlap with down (300, 500).
        assert report.downtime_us == pytest.approx(200.0)
        assert report.degraded_us == pytest.approx(200.0)
        assert [w.state for w in report.windows] == [
            "up", "degraded", "down", "degraded", "up"]

    def test_default_window_spans_events(self):
        events = build(crash(100.0), view_drop(400.0))
        report = availability_report(events)
        assert report.window_start_us == 0.0
        assert report.window_end_us == 400.0


class TestSwitchWindows:
    def test_window_spans_first_prepare_to_last_complete(self):
        events = build(
            switch(300.0, "prepare"),
            (320.0, "s02", "replicator", "switch.prepare",
             {"switch_id": "svc:P->A:0"}),
            (400.0, "s01", "replicator", "switch.complete",
             {"switch_id": "svc:P->A:0"}),
            (450.0, "s02", "replicator", "switch.complete",
             {"switch_id": "svc:P->A:0"}))
        assert switch_windows(events) == {"svc:P->A:0": (300.0, 450.0)}

    def test_unfinished_switch_has_no_window(self):
        events = build(switch(300.0, "prepare"))
        assert switch_windows(events) == {}


class TestMatchFaults:
    def test_crash_matched_to_view_naming_target(self):
        events = build(crash(100.0), view_drop(400.0))
        (match,) = match_faults(events)
        assert match.detected
        assert match.detected_kind == "membership.view"
        assert match.detection_latency_us == pytest.approx(300.0)
        assert not match.missed

    def test_crash_matched_to_suspicion(self):
        events = build(
            crash(100.0, target="s02", fault="host_crash"),
            (350.0, "s01", "gcs", "detector.suspect",
             {"newly": ["s02"], "suspects": ["s02"]}))
        (match,) = match_faults(events)
        assert match.detected
        assert match.detected_kind == "detector.suspect"

    def test_undetected_crash_is_missed(self):
        events = build(crash(100.0))
        (match,) = match_faults(events)
        assert match.missed
        assert match.detection_latency_us == 0.0

    def test_detection_outside_slack_is_missed(self):
        events = build(crash(100.0), view_drop(100.0 + 10e6))
        (match,) = match_faults(events, slack_us=1e6)
        assert match.missed

    def test_named_detection_preferred_over_earlier_unnamed(self):
        events = build(
            crash(100.0, target="svc-r2"),
            view_drop(200.0, left=["svc-r9#9@s09"]),
            view_drop(400.0, left=["svc-r2#2@s02"]))
        (match,) = match_faults(events)
        assert match.detected_at_us == 400.0

    def test_loss_burst_matched_to_degradation_signal(self):
        events = build(
            crash(100.0, target="net", fault="loss_burst",
                  until=300.0),
            (250.0, "w01", "replicator", "client.giveup",
             {"request_id": 7, "attempts": 3}))
        (match,) = match_faults(events)
        assert match.detected
        assert match.detected_kind == "client.giveup"
        assert match.until_us == 300.0

    def test_false_positive_detection_counted(self):
        events = build(view_drop(400.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.false_positives == 1
        # ... and a detection inside a fault window is not one.
        events = build(crash(100.0), view_drop(400.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.false_positives == 0


class TestBoundaryCases:
    def test_zero_duration_window(self):
        events = build(crash(100.0))
        report = availability_report(events, window_start_us=500.0,
                                     window_end_us=500.0)
        assert report.span_us == 0.0
        assert report.availability == 1.0
        assert report.degraded_fraction == 0.0
        assert report.n_outages == 0
        assert report.windows == ()

    def test_fault_at_window_end_not_counted(self):
        events = build(crash(1_000.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.n_outages == 0
        assert report.downtime_us == 0.0

    def test_down_clips_overlapping_degraded_window(self):
        # A switch spanning an outage: the overlap bills as down, the
        # flanks stay degraded, and the band alternates cleanly.
        events = build(
            switch(100.0, "prepare"),
            crash(200.0),
            view_drop(300.0),
            switch(400.0, "complete"))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.downtime_us == pytest.approx(100.0)
        assert report.degraded_us == pytest.approx(200.0)
        assert [w.state for w in report.windows] == [
            "up", "degraded", "down", "degraded", "up"]

    def test_truncated_ring_marker_does_not_perturb_accounting(self):
        events = build(
            crash(100.0), view_drop(400.0),
            (450.0, "s01", "journal", "journal.truncated",
             {"dropped": 7, "ring_size": 8}))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.downtime_us == pytest.approx(300.0)
        assert report.false_positives == 0


class TestPerShardAttribution:
    def shard_events(self):
        journal = Journal()
        journal.record(10.0, "s01", "cluster", "shard",
                       shard="shard0", style="active")
        journal.record(10.0, "s02", "cluster", "shard",
                       shard="shard1", style="warm_passive")
        journal.record(50.0, "s01", "gcs", "membership.view",
                       group="shard0", view_id=1, left=[])
        journal.record(60.0, "s01", "gcs", "membership.view",
                       group="cluster.ctl", view_id=1)
        journal.record(100.0, "net", "injector", "fault.inject",
                       fault="process_crash", target="shard0-r1",
                       at_us=100.0)
        journal.record(400.0, "s01", "gcs", "membership.view",
                       group="shard0", view_id=2,
                       left=["shard0-r1#1@s01"], crashed=True)
        journal.record(500.0, "s09", "cluster", "map")
        return journal.events

    def test_discover_shards_skips_control_groups(self):
        assert discover_shards(self.shard_events()) == (
            "shard0", "shard1")

    def test_event_shard_priority(self):
        events = self.shard_events()
        shards = discover_shards(events)
        assert event_shard(events[0], shards) == "shard0"  # field
        assert event_shard(events[2], shards) == "shard0"  # group attr
        assert event_shard(events[4], shards) == "shard0"  # target prefix
        assert event_shard(events[6], shards) is None      # fleet-level

    def test_prefix_match_requires_delimiter(self):
        from repro.journal import JournalEvent
        event = JournalEvent(seq=0, time_us=0.0, host="h",
                             component="c", kind="fault.inject",
                             attrs={"target": "shard10-r1"})
        assert event_shard(event, ("shard1", "shard10")) == "shard10"

    def test_per_shard_reports_bill_downtime_to_one_shard(self):
        reports = per_shard_reports(self.shard_events(),
                                    window_start_us=0.0,
                                    window_end_us=1_000.0)
        assert set(reports) == {"shard0", "shard1"}
        assert reports["shard0"].downtime_us == pytest.approx(300.0)
        assert reports["shard0"].n_outages == 1
        assert reports["shard1"].downtime_us == 0.0
        assert reports["shard1"].n_outages == 0


def wedge(at, host="h3", groups=("svc",)):
    return (at, host, "gcs", "partition.wedged",
            {"live": [host], "groups": list(groups)})


def heal(at, host="h3", groups=("svc",)):
    return (at, host, "gcs", "partition.healed",
            {"view_id": 7, "members": ["h1", "h2", "h3"],
             "groups": list(groups)})


class TestWedgeWindows:
    def test_pairs_per_host(self):
        from repro.journal import wedge_windows
        events = build(wedge(100.0, host="h3"), wedge(150.0, host="h4"),
                       heal(300.0, host="h3"), heal(500.0, host="h4"))
        assert wedge_windows(events) == [("h3", 100.0, 300.0),
                                         ("h4", 150.0, 500.0)]

    def test_unclosed_window_is_open_ended(self):
        from repro.journal import wedge_windows
        events = build(wedge(100.0))
        assert wedge_windows(events) == [("h3", 100.0, None)]

    def test_heal_without_wedge_ignored(self):
        from repro.journal import wedge_windows
        assert wedge_windows(build(heal(300.0))) == []


class TestWedgeBilling:
    def partition_fault(self, at, until):
        return (at, "net", "injector", "fault.inject",
                {"fault": "partition", "target": "net", "at_us": at,
                 "until_us": until,
                 "components": [["h3"], ["h1", "h2"]]})

    def test_wedge_window_bills_degraded_not_down(self):
        events = build(self.partition_fault(100.0, 600.0),
                       wedge(150.0), heal(620.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.downtime_us == 0.0
        assert report.availability == 1.0
        assert report.degraded_us == pytest.approx(470.0)
        assert [w.state for w in report.windows] == [
            "up", "degraded", "up"]

    def test_unhealed_wedge_degrades_to_window_end(self):
        events = build(self.partition_fault(700.0, 2_000.0),
                       wedge(800.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.degraded_us == pytest.approx(200.0)
        assert report.windows[-1].state == "degraded"

    def test_downtime_still_trumps_wedge_degradation(self):
        events = build(self.partition_fault(100.0, 900.0),
                       wedge(100.0),
                       crash(300.0), view_drop(500.0),
                       heal(900.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.downtime_us == pytest.approx(200.0)
        assert report.degraded_us == pytest.approx(600.0)
        assert [w.state for w in report.windows] == [
            "up", "degraded", "down", "degraded", "up"]


class TestCrashOnlyFallback:
    def crash_restart(self, at, until):
        return crash(at, fault="crash_restart", until=until)

    def sync(self, at):
        return (at, "s02", "replicator", "state.sync",
                {"member": "svc-r2#9@s02", "style": "warm_passive"})

    def test_skipped_restart_ignores_late_state_sync(self):
        events = build(
            self.crash_restart(100.0, 300.0),
            (300.0, "net", "injector", "fault.restart_skipped",
             {"target": "svc-r2", "at_us": 100.0}),
            self.sync(350.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        # The promised restart never happened: the 350 us state.sync is
        # another replica's and cannot close this outage.
        assert report.downtime_us == pytest.approx(900.0)

    def test_without_skip_marker_state_sync_closes_the_outage(self):
        events = build(self.crash_restart(100.0, 300.0),
                       self.sync(350.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        assert report.downtime_us == pytest.approx(250.0)

    def test_early_state_sync_still_closes_even_when_skipped(self):
        events = build(
            self.crash_restart(100.0, 300.0),
            (300.0, "net", "injector", "fault.restart_skipped",
             {"target": "svc-r2", "at_us": 100.0}),
            self.sync(250.0))
        report = availability_report(events, window_start_us=0.0,
                                     window_end_us=1_000.0)
        # A sync before the promised restart instant is a genuine
        # recovery of some other replica serving the group.
        assert report.downtime_us == pytest.approx(150.0)


class TestMultiShardAttribution:
    def multi_events(self):
        journal = Journal()
        journal.record(10.0, "s01", "cluster", "shard",
                       shard="shard0", style="active")
        journal.record(10.0, "s02", "cluster", "shard",
                       shard="shard1", style="active")
        journal.record(100.0, "h3", "gcs", "partition.wedged",
                       live=["h3"], groups=["shard0", "shard1"])
        journal.record(400.0, "h3", "gcs", "partition.healed",
                       view_id=7, members=["h1", "h2", "h3"],
                       groups=["shard0", "shard1"])
        return journal.events

    def test_event_shards_returns_every_listed_group(self):
        from repro.journal import event_shards
        events = self.multi_events()
        shards = discover_shards(events)
        assert event_shards(events[2], shards) == ("shard0", "shard1")
        # event_shard collapses to the first for single-owner callers.
        assert event_shard(events[2], shards) == "shard0"

    def test_discover_shards_reads_groups_attr(self):
        journal = Journal()
        journal.record(100.0, "h3", "gcs", "partition.wedged",
                       live=["h3"], groups=["only", "cluster.ctl"])
        assert discover_shards(journal.events) == ("only",)

    def test_wedge_bills_degraded_to_every_listed_shard(self):
        reports = per_shard_reports(self.multi_events(),
                                    window_start_us=0.0,
                                    window_end_us=1_000.0)
        assert set(reports) == {"shard0", "shard1"}
        for name in ("shard0", "shard1"):
            assert reports[name].degraded_us == pytest.approx(300.0)
            assert reports[name].downtime_us == 0.0
