"""JSONL serialization and the campaign digest."""

import pytest

from repro.journal import (
    Journal,
    JournalEvent,
    event_to_line,
    events_to_jsonl,
    journal_digest,
    parse_jsonl,
    read_jsonl,
    write_jsonl,
)


def small_journal():
    journal = Journal()
    journal.record(100.0, "s01", "injector", "fault.inject",
                   fault="process_crash", target="svc-r2",
                   at_us=100.0, until_us=None)
    journal.record(250.0, "s01", "gcs", "membership.view",
                   group="svc", view_id=2, members=["svc-r1#1@s01"],
                   joined=[], left=["svc-r2#2@s02"], crashed=False)
    journal.record(300.0, "s02", "replicator", "failover",
                   trace_id=4, member="svc-r1#1@s01", style="active")
    return journal


class TestJsonl:
    def test_line_is_canonical(self):
        event = JournalEvent(seq=0, time_us=1.0, host="h",
                             component="c", kind="k",
                             attrs={"b": 2, "a": 1})
        line = event_to_line(event)
        assert line == ('{"attrs":{"a":1,"b":2},"component":"c",'
                        '"host":"h","kind":"k","seq":0,"t_us":1.0}')

    def test_round_trip_preserves_events(self):
        journal = small_journal()
        text = events_to_jsonl(journal.events)
        assert parse_jsonl(text) == journal.events
        assert events_to_jsonl(parse_jsonl(text)) == text

    def test_file_round_trip(self, tmp_path):
        journal = small_journal()
        path = str(tmp_path / "run.journal.jsonl")
        assert write_jsonl(journal.events, path) == 3
        assert read_jsonl(path) == journal.events

    def test_empty_journal_writes_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        assert write_jsonl([], path) == 0
        assert read_jsonl(path) == []

    def test_blank_lines_skipped(self):
        journal = small_journal()
        text = events_to_jsonl(journal.events).replace("\n", "\n\n")
        assert parse_jsonl(text) == journal.events

    def test_corrupt_line_raises(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_jsonl('{"seq":0,"t_us":1.0,"host":"h",'
                        '"component":"c","kind":"k"}\nnot json\n')

    def test_non_object_line_raises(self):
        with pytest.raises(ValueError, match="not an object"):
            parse_jsonl("[1,2,3]\n")


class TestJournalDigest:
    def test_digest_counts_and_cross_check(self):
        digest = journal_digest(small_journal())
        assert digest["events"] == 3
        assert digest["dropped"] == 0
        assert digest["by_component"] == {
            "gcs": 1, "injector": 1, "replicator": 1}
        assert digest["faults_injected"] == 1
        assert digest["faults_matched"] == 1
        assert digest["faults_missed"] == 0
        # Crash at 100, failover marker... membership drop at 250 ends
        # the outage; detection latency is the membership event.
        assert digest["outages"] == 1
        assert digest["downtime_us"] == pytest.approx(150.0)
        assert digest["mttr_us"] == pytest.approx(150.0)
        assert digest["mean_detection_latency_us"] == pytest.approx(150.0)

    def test_digest_respects_explicit_window(self):
        digest = journal_digest(small_journal(),
                                window_start_us=0.0,
                                window_end_us=1_000.0)
        assert digest["availability"] == pytest.approx(1.0 - 150.0 / 1000.0)

    def test_empty_journal_digest_is_clean(self):
        digest = journal_digest(Journal())
        assert digest["events"] == 0
        assert digest["availability"] == 1.0
        assert digest["faults_injected"] == 0
        assert digest["false_positives"] == 0
