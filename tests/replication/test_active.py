"""Active replication: state-machine behaviour (Section 3.1)."""

import pytest

from repro.replication import ReplicationStyle
from tests.replication.helpers import (
    FAILOVER_US,
    build_rig,
    call,
    counter_values,
    fire,
)


def test_all_replicas_process_every_request():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    call(testbed, clients[0], "add", 5)
    call(testbed, clients[0], "add", 7)
    assert counter_values(replicas) == [12, 12, 12]
    assert all(r.replicator.requests_processed == 2 for r in replicas)


def test_client_gets_exactly_one_reply_per_request():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    replies = fire(clients[0], "add", 1)
    testbed.run(1_000_000)
    assert len(replies) == 1
    # The other replicas' replies were discarded as duplicates.
    assert clients[0].replicator.duplicate_replies == 2


def test_requests_totally_ordered_across_replicas():
    testbed, replicas, clients = build_rig(
        ReplicationStyle.ACTIVE, n_clients=3)
    for i, client in enumerate(clients):
        for k in range(5):
            fire(client, "add", 10 ** i)
    testbed.run(3_000_000)
    values = counter_values(replicas)
    assert values[0] == 555
    assert values == [555, 555, 555]


def test_replica_crash_transparent_to_client():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    replicas[1].crash()
    reply = call(testbed, clients[0], "add", 3)
    assert reply.payload == 3
    # No retry was needed: the survivors answered immediately.
    assert clients[0].replicator.retries == 0


def test_host_crash_transparent_to_client():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    testbed.hosts["s02"].crash()
    reply = call(testbed, clients[0], "add", 3, timeout_us=FAILOVER_US)
    assert reply.payload == 3


def test_all_but_one_crash_still_serves():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    replicas[0].crash()
    replicas[1].crash()
    reply = call(testbed, clients[0], "add", 4, timeout_us=FAILOVER_US)
    assert reply.payload == 4


def test_duplicate_requests_suppressed_server_side():
    """A retransmitted request (same request id) must not re-execute;
    the cached reply is resent instead (at-most-once semantics)."""
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    call(testbed, clients[0], "add", 2)
    before = [r.replicator.requests_processed for r in replicas]
    # Replay the exact RepRequest through the group, as a client
    # retry would.
    from repro.gcs import Grade
    from repro.orb import GiopRequest
    from repro.replication import RepRequest
    original_id = next(iter(replicas[0].replicator._seen))
    dup = RepRequest(
        request=GiopRequest(request_id=original_id, object_key="counter",
                            operation="add", payload=2, payload_bytes=32),
        client=clients[0].gcs.member)
    clients[0].gcs.multicast("svc", dup, dup.wire_bytes, grade=Grade.AGREED)
    testbed.run(500_000)
    assert [r.replicator.requests_processed for r in replicas] == before
    assert counter_values(replicas) == [2, 2, 2]
    assert all(r.replicator.duplicates_suppressed >= 1 for r in replicas)


def test_late_joiner_receives_state_transfer():
    """A replica deployed after the service has state must sync via
    the checkpoint-based state transfer before processing."""
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE,
                                           n_replicas=3)
    replicas[2].crash()
    testbed.run(100_000)
    call(testbed, clients[0], "add", 9)
    from repro.experiments.testbed import deploy_replica
    from repro.orb import CounterServant
    from repro.replication import ReplicationConfig
    config = ReplicationConfig(style=ReplicationStyle.ACTIVE, group="svc")
    joiner = deploy_replica(testbed, "s03", config,
                            {"counter": CounterServant},
                            process_name="svc-r4")
    testbed.run(1_000_000)
    assert joiner.replicator.synced
    assert joiner.servants["counter"].value == 9
    call(testbed, clients[0], "add", 1)
    assert joiner.servants["counter"].value == 10


def test_voting_mode_waits_for_majority():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE,
                                           voting=True)
    reply = call(testbed, clients[0], "add", 6)
    assert reply.payload == 6
    entry_votes = clients[0].replicator
    assert entry_votes.replies_received == 1


def test_voting_survives_minority_crash():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE,
                                           voting=True)
    replicas[2].crash()
    testbed.run(200_000)
    reply = call(testbed, clients[0], "add", 2, timeout_us=FAILOVER_US)
    assert reply.payload == 2


def test_deterministic_across_seeds():
    def outcome(seed):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE,
                                               seed=seed)
        call(testbed, clients[0], "add", 5)
        return counter_values(replicas)

    assert outcome(3) == outcome(3)


def test_active_replies_piggyback_style():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    call(testbed, clients[0], "add", 1)
    assert clients[0].replicator.style is ReplicationStyle.ACTIVE
