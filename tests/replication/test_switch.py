"""Runtime replication-style switching (paper Fig. 5 protocol)."""

import pytest

from repro.errors import AdaptationError
from repro.replication import ReplicationStyle, SwitchPhase
from tests.replication.helpers import (
    FAILOVER_US,
    build_rig,
    call,
    counter_values,
    fire,
)


def _styles(replicas):
    return [r.replicator.style for r in replicas if r.alive]


def test_passive_to_active_switch():
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    call(testbed, clients[0], "add", 3)
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(1_000_000)
    assert _styles(replicas) == [ReplicationStyle.ACTIVE] * 3
    # After the switch every replica processes requests.
    call(testbed, clients[0], "add", 2)
    assert counter_values(replicas) == [5, 5, 5]


def test_active_to_passive_switch():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    call(testbed, clients[0], "add", 3)
    replicas[1].replicator.request_switch(ReplicationStyle.WARM_PASSIVE)
    testbed.run(1_000_000)
    assert _styles(replicas) == [ReplicationStyle.WARM_PASSIVE] * 3
    call(testbed, clients[0], "add", 4)
    testbed.run(500_000)
    processed = [r.replicator.requests_processed for r in replicas]
    # Only the new primary processed the post-switch request.
    assert processed[0] == 2
    assert processed[1] == 1 and processed[2] == 1
    assert counter_values(replicas) == [7, 7, 7]


def test_final_checkpoint_sent_on_passive_to_active(_=None):
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    call(testbed, clients[0], "add", 3)
    before = replicas[0].replicator.checkpoints_sent
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(1_000_000)
    # Fig. 5 case 1: the primary sends exactly one more checkpoint.
    assert replicas[0].replicator.checkpoints_sent == before + 1


def test_switch_records_duration():
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(1_000_000)
    for replica in replicas:
        history = replica.replicator.switch_history
        assert len(history) == 1
        assert history[0].duration_us > 0
        assert not history[0].rolled_back


def test_duplicate_switch_commands_discarded():
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    # Two replicas initiate the same transition concurrently: the
    # switch ids collide and the duplicate is discarded (Fig. 5 step I).
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    replicas[1].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(1_000_000)
    for replica in replicas:
        assert len(replica.replicator.switch_history) == 1
    assert _styles(replicas) == [ReplicationStyle.ACTIVE] * 3


def test_switch_to_current_style_rejected():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    with pytest.raises(AdaptationError):
        replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)


def test_requests_during_switch_are_queued_and_processed():
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    call(testbed, clients[0], "add", 1)
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    # Fire requests immediately, racing the switch.
    pending = [fire(clients[0], "add", 10) for _ in range(3)]
    testbed.run(3_000_000)
    assert all(len(p) == 1 for p in pending)
    assert counter_values(replicas) == [31, 31, 31]


def test_round_trip_switch_preserves_state():
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    call(testbed, clients[0], "add", 5)
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(1_000_000)
    call(testbed, clients[0], "add", 6)
    replicas[0].replicator.request_switch(ReplicationStyle.WARM_PASSIVE)
    testbed.run(1_000_000)
    reply = call(testbed, clients[0], "read", None)
    assert reply.payload == 11
    assert counter_values(replicas) == [11, 11, 11]


def test_rollback_when_primary_dies_mid_switch():
    """Fig. 5 case 1, crash branch: the primary crashes after the
    switch command but before the final checkpoint; backups roll back
    by going active and processing their queues."""
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE,
                                           seed=4)
    call(testbed, clients[0], "add", 2)
    testbed.run(300_000)
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    # Kill the primary immediately: its final checkpoint never goes out.
    replicas[0].crash()
    testbed.run(2 * FAILOVER_US)
    survivors = replicas[1:]
    assert _styles(survivors) == [ReplicationStyle.ACTIVE] * 2
    records = [s.replicator.switch_history[0] for s in survivors]
    assert all(rec.rolled_back for rec in records)
    # Service still works, with the checkpointed state preserved.
    reply = call(testbed, clients[0], "add", 3, timeout_us=FAILOVER_US)
    assert reply.payload == 5


def test_switch_tolerates_backup_crash():
    """The protocol must tolerate the crash of any replica (the paper
    claims crash of either the primary or any backup is tolerated)."""
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    call(testbed, clients[0], "add", 2)
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    replicas[2].crash()
    testbed.run(2 * FAILOVER_US)
    live = [r for r in replicas if r.alive]
    assert _styles(live) == [ReplicationStyle.ACTIVE] * 2
    reply = call(testbed, clients[0], "add", 1, timeout_us=FAILOVER_US)
    assert reply.payload == 3


def test_switch_under_load_keeps_replicas_consistent():
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE,
                                           n_clients=3, seed=6)
    done = []

    def closed_loop(client, remaining):
        def on_reply(reply):
            done.append(reply)
            if remaining > 1:
                closed_loop(client, remaining - 1)
        client.orb_client.invoke("counter", "add", 1, 32, on_reply)

    for client in clients:
        closed_loop(client, 20)
    testbed.run(5_000)  # load in flight
    replicas[1].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(60_000_000)
    assert len(done) == 60
    assert counter_values(replicas) == [60, 60, 60]
    assert _styles(replicas) == [ReplicationStyle.ACTIVE] * 3


def test_switch_delay_comparable_to_response_time():
    """Section 4.2: 'the observed delays required to complete the
    switch are comparable to the average response time'."""
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    reply = call(testbed, clients[0], "add", 1)
    response_time = reply.timeline.completed_at - reply.timeline.started_at
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(1_000_000)
    duration = replicas[0].replicator.switch_history[0].duration_us
    assert duration < 5 * response_time


def test_active_to_cold_switch_requires_store_present():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    # The testbed wires a store into every replicator, so this works.
    replicas[0].replicator.request_switch(ReplicationStyle.COLD_PASSIVE)
    testbed.run(1_000_000)
    assert _styles(replicas) == [ReplicationStyle.COLD_PASSIVE] * 3
    call(testbed, clients[0], "add", 4)
    testbed.run(1_000_000)
    assert testbed.store.latest("svc") is not None
