"""Property-based fault-injection tests for replication invariants.

Randomized crash schedules against a replicated counter, checking the
safety invariants that must hold regardless of when faults land:

- **convergence**: all surviving replicas end with identical state;
- **at-most-once**: the counter value equals the number of *distinct*
  acknowledged increments — retries and fan-out never double-apply;
- **no lost acknowledged work** (active / semi-active): every reply
  the client received is reflected in every survivor's state.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments import (
    Testbed,
    deploy_client,
    deploy_replica_group,
)
from repro.orb import CounterServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)

FAILOVER_US = 1_600_000

#: A schedule: which replica (0-2) dies, and when (µs after load start).
crash_schedules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),
              st.floats(min_value=1_000.0, max_value=600_000.0)),
    min_size=0, max_size=2, unique_by=lambda t: t[0])


def _run_with_crashes(style, schedule, seed, n_requests=12):
    testbed = Testbed.paper_testbed(3, 1, seed=seed)
    config = ReplicationConfig(style=style, group="svc")
    replicas = deploy_replica_group(testbed, ["s01", "s02", "s03"],
                                    config, {"counter": CounterServant})
    client = deploy_client(testbed, "w01", ClientReplicationConfig(
        group="svc", expected_style=style, retry_timeout_us=120_000))
    testbed.run(150_000)

    acked = []

    def next_request(remaining):
        if remaining == 0:
            return

        def on_reply(reply):
            acked.append(reply)
            next_request(remaining - 1)

        client.orb_client.invoke("counter", "add", 1, 32, on_reply)

    start = testbed.now
    for index, at_us in schedule:
        testbed.sim.schedule_at(start + at_us, replicas[index].process.kill,
                                "injected")
    next_request(n_requests)
    # Give plenty of time for failovers and retries.
    testbed.run(6 * FAILOVER_US)
    survivors = [r for r in replicas if r.alive]
    return testbed, survivors, acked, client


@given(crash_schedules, st.integers(min_value=0, max_value=50))
@settings(max_examples=12, deadline=None)
def test_active_invariants_under_random_crashes(schedule, seed):
    testbed, survivors, acked, client = _run_with_crashes(
        ReplicationStyle.ACTIVE, schedule, seed)
    assert survivors, "at most 2 of 3 replicas are ever crashed"
    values = [r.servants["counter"].value for r in survivors]
    # Convergence.
    assert len(set(values)) == 1
    # Completion: with a live majority the whole cycle finishes.
    assert len(acked) == 12
    # No lost acknowledged work, no double-execution.
    assert values[0] == 12


@given(crash_schedules, st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_semi_active_invariants_under_random_crashes(schedule, seed):
    testbed, survivors, acked, client = _run_with_crashes(
        ReplicationStyle.SEMI_ACTIVE, schedule, seed)
    values = [r.servants["counter"].value for r in survivors]
    assert len(set(values)) == 1
    assert len(acked) == 12
    assert values[0] == 12


@given(st.lists(st.floats(min_value=1_000.0, max_value=600_000.0),
                min_size=0, max_size=1),
       st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_warm_passive_primary_crash_never_loses_acked_work(times, seed):
    """Warm passive with synchronous checkpoints: every acknowledged
    increment survives a primary crash (the reply was held until the
    covering checkpoint was stable)."""
    schedule = [(0, t) for t in times]  # always kill the primary
    testbed, survivors, acked, client = _run_with_crashes(
        ReplicationStyle.WARM_PASSIVE, schedule, seed)
    values = [r.servants["counter"].value for r in survivors]
    assert len(set(values)) <= 2  # backups may trail by < 1 checkpoint
    assert len(acked) == 12
    # The new primary's state covers every acknowledged increment.
    primary_value = max(values)
    assert primary_value >= 12
    # And never more than the distinct increments issued.
    assert primary_value <= 12
