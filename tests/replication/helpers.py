"""Shared builders for replication tests."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.experiments.testbed import (
    ClientStack,
    Replica,
    Testbed,
    deploy_client,
    deploy_replica_group,
)
from repro.orb import CounterServant, Servant
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)
from repro.replication.styles import ResiliencePolicy

#: Long enough for heartbeat-based failure detection + flush.
FAILOVER_US = 1_500_000


def build_rig(style: ReplicationStyle, n_replicas: int = 3,
              n_clients: int = 1, seed: int = 0,
              servant_factory: Optional[Callable[[], Servant]] = None,
              broadcast_requests: bool = False,
              checkpoint_interval: int = 1,
              voting: bool = False,
              sync_checkpoints: bool = True,
              resilience: Optional[ResiliencePolicy] = None):
    """Standard rig: N replicas + M clients on the paper's testbed."""
    testbed = Testbed.paper_testbed(max(n_replicas, 1), max(n_clients, 1),
                                    seed=seed)
    config = ReplicationConfig(
        style=style, group="svc",
        checkpoint_interval_requests=checkpoint_interval,
        broadcast_requests=broadcast_requests)
    servants = {"counter": servant_factory or CounterServant}
    replicas = deploy_replica_group(
        testbed, [f"s{i:02d}" for i in range(1, n_replicas + 1)],
        config, servants, sync_checkpoints=sync_checkpoints)
    clients = [
        deploy_client(testbed, f"w{i:02d}", ClientReplicationConfig(
            group="svc", expected_style=style, voting=voting,
            resilience=resilience))
        for i in range(1, n_clients + 1)
    ]
    testbed.run(100_000)
    return testbed, replicas, clients


def call(testbed: Testbed, client: ClientStack, operation: str,
         payload, nbytes: int = 32, timeout_us: float = 2_000_000):
    """Synchronous-style invocation helper."""
    replies: List = []
    client.orb_client.invoke("counter", operation, payload, nbytes,
                             replies.append)
    testbed.run(timeout_us)
    assert replies, f"no reply for {operation}({payload})"
    return replies[0]


def fire(client: ClientStack, operation: str, payload, nbytes: int = 32):
    """Asynchronous invocation; returns the reply list to inspect later."""
    replies: List = []
    client.orb_client.invoke("counter", operation, payload, nbytes,
                             replies.append)
    return replies


def counter_values(replicas: List[Replica]) -> List[int]:
    return [r.servants["counter"].value for r in replicas if r.alive]
