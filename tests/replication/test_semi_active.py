"""Semi-active (leader-follower) replication — the Delta-4 XPA model
from the paper's related work: all replicas execute, only the leader
transmits output responses.  "This approach can combine the low
synchronization requirements of passive replication with the low
error-recovery delays of active replication" (Section 6).
"""

import pytest

from repro.replication import ReplicationStyle
from tests.replication.helpers import (
    FAILOVER_US,
    build_rig,
    call,
    counter_values,
    fire,
)


def test_all_replicas_execute():
    testbed, replicas, clients = build_rig(ReplicationStyle.SEMI_ACTIVE)
    call(testbed, clients[0], "add", 5)
    assert counter_values(replicas) == [5, 5, 5]
    assert all(r.replicator.requests_processed == 1 for r in replicas)


def test_only_leader_transmits_replies():
    testbed, replicas, clients = build_rig(ReplicationStyle.SEMI_ACTIVE)
    for _ in range(3):
        call(testbed, clients[0], "add", 1)
    sent = [r.replicator.replies_sent for r in replicas]
    assert sent == [3, 0, 0]
    # Followers executed everything nonetheless.
    assert counter_values(replicas) == [3, 3, 3]


def test_client_sees_exactly_one_reply():
    testbed, replicas, clients = build_rig(ReplicationStyle.SEMI_ACTIVE)
    replies = fire(clients[0], "add", 1)
    testbed.run(1_000_000)
    assert len(replies) == 1
    assert clients[0].replicator.duplicate_replies == 0


def test_reply_bandwidth_lower_than_active():
    """The point of semi-active: active's N replies shrink to one."""
    semi = build_rig(ReplicationStyle.SEMI_ACTIVE, seed=3)
    active = build_rig(ReplicationStyle.ACTIVE, seed=3)
    for testbed, replicas, clients in (semi, active):
        before = testbed.network.stats.total_bytes
        for _ in range(10):
            call(testbed, clients[0], "add", 1)
        testbed.run(300_000)
    semi_bytes = semi[0].network.stats.total_bytes
    active_bytes = active[0].network.stats.total_bytes
    assert semi_bytes < active_bytes


def test_leader_crash_recovers_fast():
    """Followers have fully executed state: failover needs no
    rollback, only the membership change."""
    testbed, replicas, clients = build_rig(ReplicationStyle.SEMI_ACTIVE,
                                           seed=5)
    call(testbed, clients[0], "add", 9)
    replicas[0].crash()
    testbed.run(200_000)
    reply = call(testbed, clients[0], "add", 1, timeout_us=FAILOVER_US)
    assert reply.payload == 10
    # The new leader (old follower) now transmits.
    assert replicas[1].replicator.transmits_replies


def test_duplicate_after_leader_crash_resent_from_cache():
    """A follower executed and cached every reply, so a client retry
    of a request the dead leader answered gets the cached reply."""
    testbed, replicas, clients = build_rig(ReplicationStyle.SEMI_ACTIVE,
                                           seed=7)
    call(testbed, clients[0], "add", 2)
    req_id = next(iter(replicas[1].replicator._seen))
    replicas[0].crash()
    testbed.run(200_000)
    from repro.gcs import Grade
    from repro.orb import GiopRequest
    from repro.replication import RepRequest
    dup = RepRequest(
        request=GiopRequest(request_id=req_id, object_key="counter",
                            operation="add", payload=2, payload_bytes=32),
        client=clients[0].gcs.member)
    clients[0].gcs.multicast("svc", dup, dup.wire_bytes, grade=Grade.AGREED)
    testbed.run(500_000)
    assert replicas[1].replicator.duplicates_suppressed >= 1
    # State unchanged: the duplicate did not re-execute.
    assert counter_values(replicas) == [2, 2]


def test_switch_active_to_semi_active():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    call(testbed, clients[0], "add", 4)
    replicas[0].replicator.request_switch(ReplicationStyle.SEMI_ACTIVE)
    testbed.run(1_000_000)
    styles = [r.replicator.style for r in replicas]
    assert styles == [ReplicationStyle.SEMI_ACTIVE] * 3
    call(testbed, clients[0], "add", 1)
    assert counter_values(replicas) == [5, 5, 5]
    assert [r.replicator.replies_sent for r in replicas][1:] == [1, 1]


def test_switch_warm_passive_to_semi_active_uses_final_checkpoint():
    """WP -> semi-active is a Fig. 5 case-1 switch: the primary's
    final checkpoint seeds the followers before they start executing."""
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    call(testbed, clients[0], "add", 6)
    before = replicas[0].replicator.checkpoints_sent
    replicas[0].replicator.request_switch(ReplicationStyle.SEMI_ACTIVE)
    testbed.run(1_000_000)
    assert replicas[0].replicator.checkpoints_sent == before + 1
    call(testbed, clients[0], "add", 1)
    assert counter_values(replicas) == [7, 7, 7]
