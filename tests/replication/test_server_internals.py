"""White-box tests for ServerReplicator internals: role matrices,
reply-cache bounds, runtime knob setters, switch-id semantics."""

import pytest

from repro.errors import ReplicationError
from repro.replication import ReplicationStyle
from repro.replication.server import SEEN_CACHE_LIMIT
from tests.replication.helpers import build_rig, call


class TestRoleMatrix:
    @pytest.mark.parametrize("style,processes,transmits", [
        (ReplicationStyle.ACTIVE, [True, True, True],
         [True, True, True]),
        (ReplicationStyle.SEMI_ACTIVE, [True, True, True],
         [True, False, False]),
        (ReplicationStyle.WARM_PASSIVE, [True, False, False],
         [True, True, True]),
        (ReplicationStyle.HYBRID, [True, False, False],
         [True, True, True]),
    ])
    def test_processes_and_transmits(self, style, processes, transmits):
        testbed, replicas, clients = build_rig(style)
        assert [r.replicator.processes_requests for r in replicas] \
            == processes
        assert [r.replicator.transmits_replies for r in replicas] \
            == transmits

    def test_primary_is_longest_standing(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE)
        members = replicas[0].replicator.view.members
        assert members[0] == replicas[0].replicator.member
        assert replicas[0].replicator.primary == members[0]


class TestReplyCache:
    def test_cache_bounded(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        replicator = replicas[0].replicator
        for i in range(SEEN_CACHE_LIMIT + 100):
            replicator._remember(f"req-{i}", None)
        assert len(replicator._seen) == SEEN_CACHE_LIMIT
        # Oldest entries evicted first.
        assert "req-0" not in replicator._seen
        assert f"req-{SEEN_CACHE_LIMIT + 99}" in replicator._seen

    def test_remember_refreshes_recency(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        replicator = replicas[0].replicator
        replicator._remember("old", None)
        for i in range(SEEN_CACHE_LIMIT - 1):
            replicator._remember(f"r{i}", None)
        replicator._remember("old", None)  # refresh
        replicator._remember("new", None)  # evicts r0, not old
        assert "old" in replicator._seen


class TestRuntimeKnobSetters:
    def test_set_checkpoint_interval(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE)
        replicas[0].replicator.set_checkpoint_interval(7)
        assert replicas[0].replicator.config \
            .checkpoint_interval_requests == 7

    def test_invalid_interval_rejected(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE)
        with pytest.raises(ReplicationError):
            replicas[0].replicator.set_checkpoint_interval(0)


class TestSwitchIds:
    def test_switch_id_encodes_transition_and_epoch(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE)
        switch_id = replicas[0].replicator.request_switch(
            ReplicationStyle.ACTIVE)
        assert switch_id == "svc:P->A:0"
        testbed.run(1_000_000)
        switch_id = replicas[0].replicator.request_switch(
            ReplicationStyle.WARM_PASSIVE)
        assert switch_id == "svc:A->P:1"

    def test_double_start_not_allowed(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        with pytest.raises(ReplicationError):
            replicas[0].orb_server.transport.start(lambda *a: None)


class TestHeldReplies:
    def test_passive_primary_holds_until_stability(self):
        """The reply for a checkpoint-covered request is not on the
        wire before the checkpoint publication completes."""
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE)
        primary = replicas[0].replicator
        assert primary._must_hold_reply() is True

    def test_active_never_holds(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        assert replicas[0].replicator._must_hold_reply() is False

    def test_interval_gt_one_holds_only_on_covering_request(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE, checkpoint_interval=3)
        primary = replicas[0].replicator
        # since_ckpt = 0: the next request is 1 of 3 -> no hold.
        assert primary._must_hold_reply() is False
        primary._since_ckpt = 2  # next request completes the window
        assert primary._must_hold_reply() is True

    def test_no_hold_with_async_checkpoints(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE, sync_checkpoints=False)
        assert replicas[0].replicator._must_hold_reply() is False

    def test_async_checkpoints_still_serve(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE, sync_checkpoints=False)
        reply = call(testbed, clients[0], "add", 4)
        assert reply.payload == 4
        testbed.run(500_000)
        values = [r.servants["counter"].value for r in replicas]
        assert values == [4, 4, 4]


class TestStats:
    def test_counters_after_simple_run(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        for _ in range(3):
            call(testbed, clients[0], "add", 1)
        replicator = replicas[0].replicator
        assert replicator.requests_processed == 3
        assert replicator.replies_sent == 3
        assert replicator.duplicates_suppressed == 0
        assert replicator.queued_requests == 0
