"""Unit tests for the stable checkpoint store, plus the SAFE-grade
checkpoint option."""

import pytest

from repro.replication import ReplicationStyle, StableStore
from repro.sim import Simulator
from tests.replication.helpers import build_rig, call, counter_values


class TestStableStore:
    def test_write_then_read(self):
        sim = Simulator()
        store = StableStore(sim)
        store.write("grp", 1, {"v": 5}, 100)
        results = []
        sim.run()
        store.read("grp", results.append)
        sim.run()
        assert results[0].state == {"v": 5}
        assert results[0].ckpt_id == 1

    def test_read_missing_group_gives_none(self):
        sim = Simulator()
        store = StableStore(sim)
        results = []
        store.read("ghost", results.append)
        sim.run()
        assert results == [None]

    def test_overwrite_semantics(self):
        sim = Simulator()
        store = StableStore(sim)
        store.write("grp", 1, "old", 10)
        store.write("grp", 2, "new", 10)
        sim.run()
        assert store.latest("grp").state == "new"

    def test_write_cost_scales_with_size(self):
        sim = Simulator()
        store = StableStore(sim, write_fixed_us=100.0,
                            write_per_byte_us=1.0)
        done = []
        store.write("a", 1, "x", 0, on_done=lambda: done.append(sim.now))
        store.write("b", 1, "y", 1000,
                    on_done=lambda: done.append(sim.now))
        sim.run()
        small, big = sorted(done)
        assert small == pytest.approx(100.0)
        assert big == pytest.approx(1100.0)

    def test_counters(self):
        sim = Simulator()
        store = StableStore(sim)
        store.write("grp", 1, "s", 256)
        store.read("grp", lambda snapshot: None)
        sim.run()
        assert store.writes == 1
        assert store.reads == 1
        assert store.bytes_written == 256

    def test_write_completion_callback_optional(self):
        sim = Simulator()
        store = StableStore(sim)
        store.write("grp", 1, "s", 10)  # no on_done: must not raise
        sim.run()
        assert store.latest("grp") is not None


class TestSafeCheckpoints:
    def _rig(self, safe):
        from repro.experiments import (Testbed, deploy_client,
                                       deploy_replica_group)
        from repro.orb import CounterServant
        from repro.replication import (ClientReplicationConfig,
                                       ReplicationConfig)
        testbed = Testbed.paper_testbed(3, 1, seed=0)
        config = ReplicationConfig(style=ReplicationStyle.WARM_PASSIVE,
                                   group="svc", safe_checkpoints=safe)
        replicas = deploy_replica_group(testbed, ["s01", "s02", "s03"],
                                        config,
                                        {"counter": CounterServant})
        client = deploy_client(testbed, "w01", ClientReplicationConfig(
            group="svc",
            expected_style=ReplicationStyle.WARM_PASSIVE))
        testbed.run(100_000)
        return testbed, replicas, client

    def test_safe_checkpoints_preserve_semantics(self):
        testbed, replicas, client = self._rig(safe=True)
        replies = []
        client.orb_client.invoke("counter", "add", 6, 32, replies.append)
        testbed.run(3_000_000)
        assert replies and replies[0].payload == 6
        values = [r.servants["counter"].value for r in replicas]
        assert values == [6, 6, 6]

    def test_safe_checkpoints_slower_replies(self):
        """SAFE stability waits for every backup daemon to hold the
        state update, so checkpoint-covered replies take longer."""
        def latency(safe):
            testbed, replicas, client = self._rig(safe)
            replies = []
            client.orb_client.invoke("counter", "add", 1, 32,
                                     replies.append)
            testbed.run(3_000_000)
            t = replies[0].timeline
            return t.completed_at - t.started_at

        assert latency(True) > latency(False)
