"""Client-side replicator: retries, failure reporting, loss recovery."""

import pytest

from repro.net import BurstLoss, RandomLoss
from repro.replication import ReplicationStyle
from tests.replication.helpers import build_rig, call, fire


def test_retry_after_total_loss_burst():
    """A loss burst swallows the first attempt; the retry (AGREED to
    the group) gets through once the burst ends."""
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE, seed=9)
    start = testbed.now
    testbed.network.add_loss_model(BurstLoss(start, start + 300_000,
                                             rate=1.0))
    replies = fire(clients[0], "add", 5)
    testbed.run(5_000_000)
    assert len(replies) == 1
    assert clients[0].replicator.retries >= 1


def test_random_loss_eventually_served():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE, seed=11)
    testbed.network.add_loss_model(RandomLoss(0.2))
    done = []
    for i in range(10):
        done.append(fire(clients[0], "add", 1))
    testbed.run(30_000_000)
    assert all(len(d) == 1 for d in done)
    values = [r.servants["counter"].value for r in replicas]
    assert values == [10, 10, 10]


def test_failure_callback_after_max_retries():
    from repro.experiments.testbed import Testbed, deploy_client
    from repro.replication import (
        ClientReplicationConfig, ClientReplicator)
    from repro.orb import OrbClient
    testbed = Testbed.paper_testbed(1, 1, seed=2)
    # No replicas at all: every attempt times out.
    failures = []
    process = testbed.spawn("w01", "cli")
    gcs = testbed.connect(process)
    replicator = ClientReplicator(
        gcs,
        ClientReplicationConfig(group="svc", retry_timeout_us=50_000,
                                max_retries=2),
        on_failure=failures.append)
    client = OrbClient(process, replicator)
    replies = []
    client.invoke("counter", "add", 1, 32, replies.append)
    testbed.run(5_000_000)
    assert replies == []
    assert len(failures) == 1
    assert replicator.failures == 1


def test_retries_do_not_double_execute():
    """Retries are duplicates server-side: state must reflect each
    logical request exactly once despite loss-induced retries."""
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE, seed=13)
    start = testbed.now
    # Drop ~half of everything for a while: some replies will be lost
    # after execution, forcing retries of already-executed requests.
    testbed.network.add_loss_model(BurstLoss(start, start + 2_000_000,
                                             rate=0.5))
    done = [fire(clients[0], "add", 1) for _ in range(5)]
    testbed.run(60_000_000)
    assert all(len(d) == 1 for d in done)
    values = [r.servants["counter"].value for r in replicas]
    assert values == [5, 5, 5]


def test_outstanding_count_tracks_inflight():
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    fire(clients[0], "add", 1)
    testbed.run(500)  # let the marshalling CPU job hand off
    assert clients[0].replicator.outstanding_count == 1
    testbed.run(2_000_000)
    assert clients[0].replicator.outstanding_count == 0


def test_passive_first_attempt_goes_direct():
    testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
    call(testbed, clients[0], "add", 1)
    frames_before = testbed.network.stats.total_frames
    call(testbed, clients[0], "add", 1)
    # Rough check: a direct-to-primary request generates far fewer
    # frames than a group multicast would (no per-member fanout).
    testbed2, replicas2, clients2 = build_rig(ReplicationStyle.ACTIVE)
    call(testbed2, clients2[0], "add", 1)
    active_before = testbed2.network.stats.total_frames
    call(testbed2, clients2[0], "add", 1)
    passive_frames = testbed.network.stats.total_frames - frames_before
    active_frames = testbed2.network.stats.total_frames - active_before
    assert passive_frames < active_frames


def test_dead_client_cannot_send():
    from repro.errors import OrbError, ReplicationError
    testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
    clients[0].process.kill()
    with pytest.raises((OrbError, ReplicationError)):
        clients[0].orb_client.invoke("counter", "add", 1, 32,
                                     lambda r: None)
