"""Deeper tests for the hybrid replication style (active head + warm
tail — the Bakken et al. extension)."""

import pytest

from repro.experiments import (
    Testbed,
    deploy_client,
    deploy_replica_group,
)
from repro.orb import CounterServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)
from tests.replication.helpers import FAILOVER_US, call, counter_values


def _hybrid_rig(active_head=2, n_replicas=4, seed=0):
    testbed = Testbed.paper_testbed(n_replicas, 1, seed=seed)
    config = ReplicationConfig(style=ReplicationStyle.HYBRID, group="svc",
                               active_head=active_head)
    replicas = deploy_replica_group(
        testbed, [f"s{i:02d}" for i in range(1, n_replicas + 1)],
        config, {"counter": CounterServant})
    client = deploy_client(testbed, "w01", ClientReplicationConfig(
        group="svc", expected_style=ReplicationStyle.HYBRID))
    testbed.run(100_000)
    return testbed, replicas, client


def test_head_size_respected():
    testbed, replicas, client = _hybrid_rig(active_head=2, n_replicas=4)
    call(testbed, client, "add", 5)
    testbed.run(500_000)
    processed = [r.replicator.requests_processed for r in replicas]
    assert processed[0] >= 1 and processed[1] >= 1
    assert processed[2] == 0 and processed[3] == 0


def test_tail_tracks_state_via_checkpoints():
    testbed, replicas, client = _hybrid_rig(active_head=2, n_replicas=4)
    call(testbed, client, "add", 7)
    testbed.run(1_000_000)
    # The head's oldest member checkpoints; the tail applies.
    assert counter_values(replicas) == [7, 7, 7, 7]


def test_head_member_crash_promotes_tail_member():
    """When a head member dies, the join-order rank shifts: the first
    tail member moves into the head and starts executing."""
    testbed, replicas, client = _hybrid_rig(active_head=2, n_replicas=4,
                                            seed=5)
    call(testbed, client, "add", 3)
    testbed.run(500_000)
    replicas[0].crash()
    testbed.run(300_000)
    reply = call(testbed, client, "add", 2, timeout_us=FAILOVER_US)
    assert reply.payload == 5
    testbed.run(1_000_000)
    # replicas[2] (formerly first tail member) is now in the head.
    assert replicas[1].replicator.processes_requests
    assert replicas[2].replicator.processes_requests
    assert not replicas[3].replicator.processes_requests


def test_whole_head_crash_recovers_from_checkpoints():
    testbed, replicas, client = _hybrid_rig(active_head=2, n_replicas=4,
                                            seed=6)
    call(testbed, client, "add", 9)
    testbed.run(1_000_000)
    replicas[0].crash()
    replicas[1].crash()
    testbed.run(500_000)
    reply = call(testbed, client, "add", 1, timeout_us=2 * FAILOVER_US)
    assert reply.payload == 10
    assert counter_values(replicas) == [10, 10]


def test_hybrid_switches_to_active():
    testbed, replicas, client = _hybrid_rig(active_head=1, n_replicas=3)
    call(testbed, client, "add", 4)
    replicas[0].replicator.request_switch(ReplicationStyle.ACTIVE)
    testbed.run(1_500_000)
    assert all(r.replicator.style is ReplicationStyle.ACTIVE
               for r in replicas)
    call(testbed, client, "add", 1)
    assert counter_values(replicas) == [5, 5, 5]


def test_head_of_one_equals_primary_backup():
    """active_head=1 makes hybrid behave like warm passive with
    checkpoint-synced backups."""
    testbed, replicas, client = _hybrid_rig(active_head=1, n_replicas=3)
    for _ in range(3):
        call(testbed, client, "add", 1)
    processed = [r.replicator.requests_processed for r in replicas]
    assert processed == [3, 0, 0]
    testbed.run(1_000_000)
    assert counter_values(replicas) == [3, 3, 3]
