"""Partition-aware client resilience: deadlines, backoff, breaker."""

import zlib

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultInjector
from repro.journal.events import Journal
from repro.orb import ReplyStatus
from repro.replication import ReplicationStyle
from repro.replication.styles import ResiliencePolicy
from tests.replication.helpers import (
    FAILOVER_US,
    build_rig,
    call,
    fire,
)


class TestResiliencePolicy:
    def test_defaults_validate(self):
        ResiliencePolicy()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(jitter_frac=1.0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(deadline_us=0.0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(breaker_threshold=0)


class TestBackoff:
    def policy(self):
        return ResiliencePolicy(backoff_factor=2.0,
                                backoff_cap_us=1_000_000.0,
                                jitter_frac=0.1)

    def test_exponential_growth_capped(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE, resilience=self.policy())
        client = clients[0].replicator
        base = client.config.retry_timeout_us
        d1 = client._retry_delay_us("rid", 1)
        d2 = client._retry_delay_us("rid", 2)
        d9 = client._retry_delay_us("rid", 9)
        assert base * 0.9 <= d1 <= base * 1.1
        assert base * 2 * 0.9 <= d2 <= base * 2 * 1.1
        assert d9 <= 1_000_000.0 * 1.1  # cap (plus jitter headroom)

    def test_jitter_is_deterministic_per_request_and_attempt(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.ACTIVE, resilience=self.policy())
        client = clients[0].replicator
        assert client._retry_delay_us("r1", 1) \
            == client._retry_delay_us("r1", 1)
        # Different requests (or attempts) land on different offsets.
        spread = {round(client._retry_delay_us(f"r{i}", 1), 3)
                  for i in range(16)}
        assert len(spread) > 1
        # The offset is pure crc32 — no simulator RNG involved.
        rid, attempt = "r1", 1
        unit = (zlib.crc32(f"{rid}:{attempt}".encode()) % 1024) / 1023.0
        base = client.config.retry_timeout_us
        expected = base * (1.0 + 0.1 * (2.0 * unit - 1.0))
        assert client._retry_delay_us(rid, attempt) \
            == pytest.approx(expected)

    def test_no_policy_keeps_fixed_rearm(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.ACTIVE)
        client = clients[0].replicator
        base = client.config.retry_timeout_us
        assert client._retry_delay_us("rid", 1) == base
        assert client._retry_delay_us("rid", 7) == base


class TestDeadlines:
    def test_deadline_giveup_is_journaled_with_reason(self):
        policy = ResiliencePolicy(deadline_us=50_000.0)
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE, resilience=policy)
        testbed.sim.journal = Journal()
        for replica in replicas:
            replica.process.kill("make the service unreachable")
        replies = fire(clients[0], "add", 1)
        testbed.run(2_000_000)
        assert not replies or replies[0].status is not ReplyStatus.OK
        assert clients[0].replicator.deadline_giveups >= 1
        giveups = [e for e in testbed.sim.journal.events
                   if e.kind == "client.giveup"]
        assert giveups and giveups[0].attrs["reason"] == "deadline"

    def test_generous_deadline_does_not_bite(self):
        policy = ResiliencePolicy(deadline_us=5_000_000.0)
        testbed, replicas, clients = build_rig(
            ReplicationStyle.ACTIVE, resilience=policy)
        reply = call(testbed, clients[0], "add", 2)
        assert reply.payload == 2
        assert clients[0].replicator.deadline_giveups == 0


class TestBreaker:
    def test_breaker_opens_on_partitioned_primary_and_reroutes(self):
        policy = ResiliencePolicy(breaker_threshold=1,
                                  breaker_cooldown_us=3_000_000.0)
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE, resilience=policy, seed=7)
        testbed.sim.journal = Journal()
        client = clients[0].replicator
        # One successful call teaches the client the primary endpoint.
        reply = call(testbed, clients[0], "add", 1)
        assert reply.status is ReplyStatus.OK
        assert client.primary is not None
        old_primary = client.primary
        # Cut the primary's host off; the client still routes its next
        # first attempt point-to-point at the stale primary.
        injector = FaultInjector(testbed.sim, testbed.network)
        injector.partition_at([[old_primary.host]],
                              testbed.now + 1_000,
                              testbed.now + 4 * FAILOVER_US)
        testbed.run(5_000)
        replies = fire(clients[0], "add", 2)
        testbed.run(250_000)  # just past the first retry timeout
        assert client.breaker_trips >= 1
        opens = [e for e in testbed.sim.journal.events
                 if e.kind == "client.breaker_open"]
        assert opens
        assert opens[0].attrs["endpoint"] == str(old_primary)
        # With the breaker open (and failover not yet through), a fresh
        # request skips the dead endpoint and multicasts straight to
        # the reachable majority.
        assert client.primary == old_primary
        more = fire(clients[0], "add", 3)
        testbed.run(2 * FAILOVER_US)
        assert client.breaker_rerouted >= 1
        assert replies and replies[0].status is ReplyStatus.OK
        assert more and more[0].status is ReplyStatus.OK

    def test_healthy_group_never_trips(self):
        policy = ResiliencePolicy()
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE, resilience=policy)
        for i in range(4):
            call(testbed, clients[0], "add", 1)
        assert clients[0].replicator.breaker_trips == 0
