"""Warm and cold passive replication: primary/backup behaviour."""

import pytest

from repro.replication import ReplicationStyle
from tests.replication.helpers import (
    FAILOVER_US,
    build_rig,
    call,
    counter_values,
    fire,
)


class TestWarmPassive:
    def test_only_primary_processes(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
        call(testbed, clients[0], "add", 5)
        call(testbed, clients[0], "add", 5)
        processed = [r.replicator.requests_processed for r in replicas]
        assert processed == [2, 0, 0]

    def test_backups_track_state_via_checkpoints(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
        call(testbed, clients[0], "add", 4)
        testbed.run(500_000)
        assert counter_values(replicas) == [4, 4, 4]
        assert all(r.replicator.checkpoints_applied >= 1
                   for r in replicas[1:])

    def test_checkpoint_interval_respected(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE, checkpoint_interval=5)
        for _ in range(4):
            call(testbed, clients[0], "add", 1)
        testbed.run(300_000)
        # Only the join-time sync checkpoints so far (interval not hit).
        periodic = [rec for rec in range(replicas[0].replicator.checkpoints_sent)]
        sent_before = replicas[0].replicator.checkpoints_sent
        call(testbed, clients[0], "add", 1)  # fifth request
        testbed.run(300_000)
        assert replicas[0].replicator.checkpoints_sent == sent_before + 1

    def test_primary_crash_promotes_oldest_backup(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
        call(testbed, clients[0], "add", 7)
        testbed.run(300_000)
        replicas[0].crash()
        testbed.run(300_000)
        assert replicas[1].replicator.is_primary
        reply = call(testbed, clients[0], "add", 3, timeout_us=FAILOVER_US)
        assert reply.payload == 10  # state survived the failover

    def test_host_crash_failover(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
        call(testbed, clients[0], "add", 7)
        testbed.run(300_000)
        testbed.hosts["s01"].crash()
        reply = call(testbed, clients[0], "add", 3,
                     timeout_us=2 * FAILOVER_US)
        assert reply.payload == 10

    def test_double_failover(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
        call(testbed, clients[0], "add", 1)
        testbed.run(300_000)
        replicas[0].crash()
        testbed.run(FAILOVER_US)
        call(testbed, clients[0], "add", 2, timeout_us=FAILOVER_US)
        testbed.run(300_000)
        replicas[1].crash()
        reply = call(testbed, clients[0], "add", 4,
                     timeout_us=2 * FAILOVER_US)
        assert reply.payload == 7

    def test_misdirected_request_relayed_to_primary(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
        # Hand-deliver a request to a backup: it must relay, and the
        # client must still get the answer.
        from repro.orb import GiopRequest
        from repro.replication import RepRequest
        req = GiopRequest(request_id="manual-1", object_key="counter",
                          operation="add", payload=5, payload_bytes=32)
        rep = RepRequest(request=req, client=clients[0].gcs.member)
        clients[0].gcs.send_direct(replicas[1].replicator.member, rep,
                                   rep.wire_bytes)
        testbed.run(1_000_000)
        assert replicas[1].replicator.relays == 1
        assert replicas[0].servants["counter"].value == 5

    def test_client_learns_primary_and_sends_direct(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.WARM_PASSIVE)
        call(testbed, clients[0], "add", 1)
        assert clients[0].replicator.primary == \
            replicas[0].replicator.member
        assert clients[0].replicator.style is ReplicationStyle.WARM_PASSIVE

    def test_broadcast_mode_backups_log_requests(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE, broadcast_requests=True,
            checkpoint_interval=100)
        # With a huge checkpoint interval, backups accumulate a log.
        for _ in range(3):
            call(testbed, clients[0], "add", 1)
        testbed.run(300_000)
        # The first attempt goes direct (the client has not yet
        # learned the mode); replies piggyback broadcast=True, so
        # subsequent requests are multicast and the backups log them.
        from repro.gcs import Grade
        from repro.orb import GiopRequest
        from repro.replication import RepRequest
        req = GiopRequest(request_id="logged-1", object_key="counter",
                          operation="add", payload=2, payload_bytes=32)
        rep = RepRequest(request=req, client=clients[0].gcs.member)
        clients[0].gcs.multicast("svc", rep, rep.wire_bytes,
                                 grade=Grade.AGREED)
        testbed.run(500_000)
        assert clients[0].replicator.broadcast is True
        assert replicas[0].servants["counter"].value == 5
        # Calls 2 and 3 (after the mode was learned) plus the manual
        # multicast were logged at the backups.
        assert len(replicas[1].replicator._request_log) == 3

    def test_broadcast_mode_replay_on_failover(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.WARM_PASSIVE, broadcast_requests=True,
            checkpoint_interval=100, seed=2)
        from repro.gcs import Grade
        from repro.orb import GiopRequest
        from repro.replication import RepRequest
        # Three requests through the group so backups log them.
        for i in range(3):
            req = GiopRequest(request_id=f"replay-{i}",
                              object_key="counter", operation="add",
                              payload=10, payload_bytes=32)
            rep = RepRequest(request=req, client=clients[0].gcs.member)
            clients[0].gcs.multicast("svc", rep, rep.wire_bytes,
                                     grade=Grade.AGREED)
        testbed.run(500_000)
        assert replicas[0].servants["counter"].value == 30
        assert replicas[1].servants["counter"].value == 0  # only logged
        replicas[0].crash()
        testbed.run(FAILOVER_US)
        # The new primary replayed the log: state recovered without
        # any client retransmission.
        assert replicas[1].servants["counter"].value == 30

    def test_passive_slower_than_active_under_concurrent_load(self):
        """Fig. 7(a): with several clients pipelining requests, the
        primary's checkpoint quiescence makes passive markedly slower,
        while active replicas answer without checkpoint stalls.  (With
        a single sequential client the two styles are comparable, as
        in Fig. 4.)"""
        import statistics

        def latencies(style):
            testbed, replicas, clients = build_rig(style, seed=5,
                                                   n_clients=4)
            out = []

            def closed_loop(client, remaining):
                def on_reply(reply):
                    out.append(reply.timeline.completed_at
                               - reply.timeline.started_at)
                    if remaining > 1:
                        closed_loop(client, remaining - 1)
                client.orb_client.invoke("counter", "add", 1, 32, on_reply)

            for client in clients:
                closed_loop(client, 25)
            testbed.run(60_000_000)
            assert len(out) == 100
            return out

        active = latencies(ReplicationStyle.ACTIVE)
        passive = latencies(ReplicationStyle.WARM_PASSIVE)
        assert statistics.mean(passive) > 1.3 * statistics.mean(active)


class TestColdPassive:
    def test_cold_checkpoints_go_to_stable_store(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.COLD_PASSIVE, n_replicas=1)
        call(testbed, clients[0], "add", 5)
        testbed.run(500_000)
        snapshot = testbed.store.latest("svc")
        assert snapshot is not None
        assert snapshot.state["counter"]["value"] == 5

    def test_cold_restart_restores_from_store(self):
        testbed, replicas, clients = build_rig(
            ReplicationStyle.COLD_PASSIVE, n_replicas=1)
        call(testbed, clients[0], "add", 8)
        testbed.run(500_000)
        replicas[0].crash()
        testbed.run(FAILOVER_US)
        from repro.experiments.testbed import deploy_replica
        from repro.orb import CounterServant
        from repro.replication import ReplicationConfig
        config = ReplicationConfig(style=ReplicationStyle.COLD_PASSIVE,
                                   group="svc")
        revived = deploy_replica(testbed, "s01", config,
                                 {"counter": CounterServant},
                                 process_name="svc-r2")
        testbed.run(1_000_000)
        assert revived.replicator.synced
        assert revived.servants["counter"].value == 8

    def test_cold_requires_store(self):
        from repro.errors import ReplicationError
        from repro.gcs import GcsClient
        from repro.experiments.testbed import Testbed
        from repro.replication import (
            ReplicationConfig, ServerReplicator)
        testbed = Testbed.paper_testbed(1, 1)
        proc = testbed.spawn("s01", "srv")
        gcs = testbed.connect(proc)
        with pytest.raises(ReplicationError):
            ServerReplicator(gcs, ReplicationConfig(
                style=ReplicationStyle.COLD_PASSIVE, group="svc"),
                store=None)


class TestHybrid:
    def test_head_processes_tail_does_not(self):
        testbed, replicas, clients = build_rig(ReplicationStyle.HYBRID)
        # Default active_head=1: behaves like a primary-only processor
        # with checkpointed backups.
        call(testbed, clients[0], "add", 5)
        testbed.run(500_000)
        processed = [r.replicator.requests_processed for r in replicas]
        assert processed[0] >= 1
        assert processed[2] == 0

    def test_hybrid_two_active_heads(self):
        from repro.experiments.testbed import (
            Testbed, deploy_client, deploy_replica_group)
        from repro.orb import CounterServant
        from repro.replication import (
            ClientReplicationConfig, ReplicationConfig)
        testbed = Testbed.paper_testbed(3, 1)
        config = ReplicationConfig(style=ReplicationStyle.HYBRID,
                                   group="svc", active_head=2)
        replicas = deploy_replica_group(
            testbed, ["s01", "s02", "s03"], config,
            {"counter": CounterServant})
        client = deploy_client(testbed, "w01", ClientReplicationConfig(
            group="svc", expected_style=ReplicationStyle.HYBRID))
        testbed.run(100_000)
        reply = call(testbed, client, "add", 3)
        assert reply.payload == 3
        processed = [r.replicator.requests_processed for r in replicas]
        assert processed[0] >= 1 and processed[1] >= 1
        assert processed[2] == 0
