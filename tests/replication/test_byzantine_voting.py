"""Client-side majority voting masking a faulty replica.

Section 3.1: with active replication the client "can do majority
voting on all the responses it receives, if Byzantine failures can
occur".  These tests plant one value-faulty replica among three and
show that first-response mode can surface the wrong answer while
voting masks it.
"""

import pytest

from repro.experiments import Testbed, deploy_client, deploy_replica
from repro.orb import CounterServant, Servant, ServantResult
from repro.replication import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)


class LyingCounterServant(CounterServant):
    """A value-faulty servant: computes correct state but returns a
    corrupted result (a Byzantine *value* fault, not a crash)."""

    def dispatch(self, operation, payload) -> ServantResult:
        honest = super().dispatch(operation, payload)
        return ServantResult(payload=honest.payload + 1_000_000,
                             payload_bytes=honest.payload_bytes,
                             processing_us=honest.processing_us)


def _byzantine_rig(voting: bool, liar_first: bool, seed=0):
    testbed = Testbed.paper_testbed(3, 1, seed=seed)
    config = ReplicationConfig(style=ReplicationStyle.ACTIVE, group="svc")
    replicas = []
    for index, host in enumerate(["s01", "s02", "s03"]):
        liar = (index == 0) if liar_first else (index == 2)
        servant = (LyingCounterServant if liar else CounterServant)
        replicas.append(deploy_replica(
            testbed, host, config, {"counter": servant},
            process_name=f"svc-r{index + 1}"))
        testbed.run(30_000)
    client = deploy_client(testbed, "w01", ClientReplicationConfig(
        group="svc", expected_style=ReplicationStyle.ACTIVE,
        voting=voting))
    testbed.run(100_000)
    return testbed, replicas, client


def _invoke(testbed, client, payload=5):
    replies = []
    client.orb_client.invoke("counter", "add", payload, 32, replies.append)
    testbed.run(2_000_000)
    assert replies
    return replies[0]


def test_first_response_can_surface_the_lie():
    """The liar sits on s01 — colocated with the sequencer, so its
    reply tends to arrive first.  Without voting the client may accept
    the corrupted answer."""
    testbed, replicas, client = _byzantine_rig(voting=False,
                                               liar_first=True)
    reply = _invoke(testbed, client)
    assert reply.payload == 1_000_005  # the lie got through


def test_voting_masks_one_faulty_replica():
    testbed, replicas, client = _byzantine_rig(voting=True,
                                               liar_first=True)
    reply = _invoke(testbed, client)
    assert reply.payload == 5  # 2-of-3 honest majority wins


def test_voting_masks_regardless_of_liar_position():
    testbed, replicas, client = _byzantine_rig(voting=True,
                                               liar_first=False)
    reply = _invoke(testbed, client)
    assert reply.payload == 5


def test_voting_sequence_of_requests_all_masked():
    testbed, replicas, client = _byzantine_rig(voting=True,
                                               liar_first=True)
    for expected in (1, 2, 3, 4):
        reply = _invoke(testbed, client, payload=1)
        assert reply.payload == expected


def test_voting_still_works_after_honest_replica_crash():
    """With the liar and one honest replica left, 2-of-2 agreement is
    impossible on corrupted values; the client keeps retrying and the
    remaining honest replica + liar never form a majority for the lie.
    (With n=2 the vote needs both replies to match, so the lie can
    never be accepted.)"""
    testbed, replicas, client = _byzantine_rig(voting=True,
                                               liar_first=True, seed=3)
    replicas[1].crash()  # kill one honest replica
    testbed.run(200_000)
    replies = []
    client.orb_client.invoke("counter", "add", 5, 32, replies.append)
    testbed.run(3_000_000)
    if replies:
        # If anything was accepted, it must be the honest value.
        assert replies[0].payload == 5
