"""Replica factory: redundancy maintenance and the #replicas knob."""

import pytest

from repro.errors import ReplicationError
from repro.experiments.testbed import Testbed, deploy_client, deploy_replica
from repro.orb import CounterServant
from repro.replication import (
    ClientReplicationConfig,
    ReplicaFactory,
    ReplicationConfig,
    ReplicationStyle,
)
from tests.replication.helpers import FAILOVER_US, call


def _factory_rig(style=ReplicationStyle.ACTIVE, target=2, n_hosts=4,
                 seed=0):
    testbed = Testbed.paper_testbed(n_hosts, 1, seed=seed)
    config = ReplicationConfig(style=style, group="svc")

    def spawn(host):
        return deploy_replica(testbed, host.name, config,
                              {"counter": CounterServant},
                              process_name=f"svc@{host.name}")

    manager_proc = testbed.spawn("w01", "factory-mgr")
    manager_gcs = testbed.connect(manager_proc)
    hosts = [testbed.hosts[f"s{i:02d}"] for i in range(1, n_hosts + 1)]
    factory = ReplicaFactory(manager_gcs, "svc", hosts, spawn,
                             target=target,
                             calibration=testbed.calibration.replication)
    client = deploy_client(testbed, "w01", ClientReplicationConfig(
        group="svc", expected_style=style))
    return testbed, factory, client


def test_factory_spawns_to_target():
    testbed, factory, client = _factory_rig(target=3)
    testbed.run(3_000_000)
    assert factory.live_count == 3
    assert factory.spawned == 3


def test_factory_respawns_after_crash():
    testbed, factory, client = _factory_rig(target=2)
    testbed.run(3_000_000)
    assert factory.live_count == 2
    # Kill one replica: the factory must bring the count back up.
    victim = testbed.hosts["s01"].processes[-1]
    victim.kill()
    testbed.run(3_000_000)
    assert factory.live_count == 2
    assert factory.spawned == 3


def test_factory_respawn_preserves_service():
    testbed, factory, client = _factory_rig(target=2, seed=3)
    testbed.run(3_000_000)
    reply = call(testbed, client, "add", 5)
    assert reply.payload == 5
    for proc in list(testbed.hosts["s01"].processes):
        if proc.name.startswith("svc@"):
            proc.kill()
    testbed.run(3_000_000)
    reply = call(testbed, client, "add", 2, timeout_us=2 * FAILOVER_US)
    assert reply.payload == 7


def test_raising_target_adds_replicas():
    testbed, factory, client = _factory_rig(target=1)
    testbed.run(3_000_000)
    assert factory.live_count == 1
    factory.set_target(3)
    testbed.run(3_000_000)
    assert factory.live_count == 3


def test_lowering_target_retires_youngest():
    testbed, factory, client = _factory_rig(target=3)
    testbed.run(3_000_000)
    assert factory.live_count == 3
    factory.set_target(1)
    testbed.run(2_000_000)
    assert factory.live_count == 1
    assert factory.retired == 2


def test_cold_passive_relaunch_restores_state():
    """The cold-passive story end to end: primary checkpoints to the
    store, crashes, the factory relaunches, state survives."""
    testbed, factory, client = _factory_rig(
        style=ReplicationStyle.COLD_PASSIVE, target=1, seed=7)
    testbed.run(3_000_000)
    reply = call(testbed, client, "add", 9)
    assert reply.payload == 9
    testbed.run(1_000_000)  # let the checkpoint reach the store
    for proc in list(testbed.hosts["s01"].processes):
        if proc.name.startswith("svc@"):
            proc.kill()
    testbed.run(4_000_000)
    assert factory.live_count == 1
    reply = call(testbed, client, "read", None, timeout_us=3 * FAILOVER_US)
    assert reply.payload == 9


def test_no_free_host_logged_not_fatal():
    testbed, factory, client = _factory_rig(target=5, n_hosts=2)
    testbed.run(3_000_000)
    assert factory.live_count == 2
    assert testbed.sim.trace.count("repl.factory") > 0


def test_negative_target_rejected():
    testbed, factory, client = _factory_rig(target=1)
    with pytest.raises(ReplicationError):
        factory.set_target(-1)
