"""Behavioural contracts: bounds, warning margins, transitions."""

import pytest

from repro.journal import Journal
from repro.monitoring import (
    Contract,
    ContractMonitor,
    ContractStatus,
    MetricsSnapshot,
)


def snap(time=0.0, latency=0.0, rate=0.0):
    return MetricsSnapshot(time=time, latency_mean_us=latency,
                           request_rate_per_s=rate)


class TestUpperBoundContract:
    contract = Contract("lat", "latency_mean_us", limit=1000.0,
                        warning_fraction=0.8)

    def test_warning_band_below_limit(self):
        assert self.contract.warning_threshold == pytest.approx(800.0)
        assert self.contract.evaluate(snap(latency=700.0)) is \
            ContractStatus.HONOURED
        assert self.contract.evaluate(snap(latency=900.0)) is \
            ContractStatus.WARNING
        assert self.contract.evaluate(snap(latency=1100.0)) is \
            ContractStatus.VIOLATED

    def test_limit_itself_is_warning_not_violation(self):
        assert self.contract.evaluate(snap(latency=1000.0)) is \
            ContractStatus.WARNING


class TestLowerBoundContract:
    contract = Contract("rate", "request_rate_per_s", limit=100.0,
                        warning_fraction=0.8, bound="lower")

    def test_warning_band_sits_above_the_floor(self):
        # Same relative band width as the upper bound, mirrored: the
        # metric must stay above 100; below 120 is the warning band.
        assert self.contract.warning_threshold == pytest.approx(120.0)
        assert self.contract.evaluate(snap(rate=150.0)) is \
            ContractStatus.HONOURED
        assert self.contract.evaluate(snap(rate=110.0)) is \
            ContractStatus.WARNING
        assert self.contract.evaluate(snap(rate=90.0)) is \
            ContractStatus.VIOLATED

    def test_floor_itself_is_warning_not_violation(self):
        assert self.contract.evaluate(snap(rate=100.0)) is \
            ContractStatus.WARNING

    def test_no_warning_band_when_fraction_is_one(self):
        tight = Contract("rate", "request_rate_per_s", limit=100.0,
                         warning_fraction=1.0, bound="lower")
        assert tight.warning_threshold == pytest.approx(100.0)
        assert tight.evaluate(snap(rate=100.5)) is \
            ContractStatus.HONOURED


class TestContractValidation:
    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            Contract("c", "latency_mean_us", limit=0.0)

    def test_rejects_bad_warning_fraction(self):
        with pytest.raises(ValueError):
            Contract("c", "latency_mean_us", limit=1.0,
                     warning_fraction=0.0)
        with pytest.raises(ValueError):
            Contract("c", "latency_mean_us", limit=1.0,
                     warning_fraction=1.5)

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            Contract("c", "latency_mean_us", limit=1.0, bound="sideways")


class TestMonitorTransitions:
    def ramp_monitor(self, journal=None):
        return ContractMonitor(
            [Contract("lat", "latency_mean_us", limit=1000.0,
                      warning_fraction=0.8)],
            journal=journal, host="mon01")

    def test_ramp_walks_warning_violation_honoured(self):
        monitor = self.ramp_monitor()
        # A synthetic latency ramp up through both thresholds and back.
        ramp = [(1.0, 500.0), (2.0, 700.0), (3.0, 900.0),
                (4.0, 1200.0), (5.0, 1500.0), (6.0, 850.0),
                (7.0, 400.0)]
        for time, latency in ramp:
            monitor.evaluate(snap(time=time, latency=latency))
        assert [(e.time, e.status) for e in monitor.events] == [
            (3.0, ContractStatus.WARNING),
            (4.0, ContractStatus.VIOLATED),
            (6.0, ContractStatus.WARNING),
            (7.0, ContractStatus.HONOURED)]
        assert monitor.status("lat") is ContractStatus.HONOURED
        assert monitor.all_honoured

    def test_steady_state_emits_no_events(self):
        monitor = self.ramp_monitor()
        for time in (1.0, 2.0, 3.0):
            monitor.evaluate(snap(time=time, latency=500.0))
        assert monitor.events == []

    def test_subscribers_see_each_transition(self):
        monitor = self.ramp_monitor()
        seen = []
        monitor.subscribe(seen.append)
        monitor.evaluate(snap(time=1.0, latency=1500.0))
        monitor.evaluate(snap(time=2.0, latency=100.0))
        assert [e.status for e in seen] == [
            ContractStatus.VIOLATED, ContractStatus.HONOURED]

    def test_transitions_land_in_the_journal(self):
        journal = Journal()
        monitor = self.ramp_monitor(journal=journal)
        monitor.evaluate(snap(time=1.0, latency=900.0))
        monitor.evaluate(snap(time=2.0, latency=1200.0))
        monitor.evaluate(snap(time=3.0, latency=500.0))
        kinds = [e.kind for e in journal.of_kind("contract")]
        assert kinds == ["contract.warning", "contract.violated",
                         "contract.honoured"]
        violated = journal.of_kind("contract.violated")[0]
        assert violated.host == "mon01"
        assert violated.attrs["contract"] == "lat"
        assert violated.attrs["value"] == pytest.approx(1200.0)
        assert violated.attrs["limit"] == pytest.approx(1000.0)
        assert violated.attrs["bound"] == "upper"

    def test_duplicate_contract_name_rejected(self):
        monitor = self.ramp_monitor()
        with pytest.raises(ValueError):
            monitor.add(Contract("lat", "latency_mean_us", limit=5.0))
