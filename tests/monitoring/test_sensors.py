"""Tests for metric sensors and the metrics hub."""

import pytest

from repro.monitoring import (
    Contract,
    ContractMonitor,
    ContractStatus,
    CpuSensor,
    LatencySensor,
    MetricsHub,
    MetricsSnapshot,
    RateSensor,
)
from repro.net import Network
from repro.sim import Host, Simulator


def test_latency_sensor_mean_and_jitter():
    sensor = LatencySensor(window_us=1e9)
    for v in (100.0, 200.0, 300.0):
        sensor.record(0.0, v)
    assert sensor.mean(0.0) == pytest.approx(200.0)
    assert sensor.jitter(0.0) > 0


def test_rate_sensor():
    sensor = RateSensor(window_us=1_000_000.0)
    for i in range(100):
        sensor.record_arrival(i * 10_000.0)
    assert sensor.rate(990_000.0) == pytest.approx(101.0, rel=0.02)


def test_cpu_sensor_tracks_busy_fraction():
    sim = Simulator()
    host = Host(sim, "h")
    sensor = CpuSensor(host.cpu)
    host.cpu.execute(500.0, lambda: None)
    sim.run(until=1000.0)
    util = sensor.sample(1000.0)
    assert util == pytest.approx(0.5, abs=0.05)


def test_metrics_hub_snapshot():
    sim = Simulator()
    net = Network(sim)
    host = net.add_host("h")
    hub = MetricsHub(sim, network_stats=net.stats, cpu=host.cpu)
    hub.record_request()
    hub.record_latency(123.0)
    snap = hub.snapshot()
    assert isinstance(snap, MetricsSnapshot)
    assert snap.latency_mean_us == pytest.approx(123.0)
    assert snap.request_rate_per_s > 0
    assert "latency_mean_us" in snap.as_dict()


class TestContracts:
    def _snap(self, latency):
        return MetricsSnapshot(time=0.0, latency_mean_us=latency)

    def test_honoured_warning_violated(self):
        contract = Contract("lat", "latency_mean_us", limit=1000.0,
                            warning_fraction=0.8)
        assert contract.evaluate(self._snap(500)) is ContractStatus.HONOURED
        assert contract.evaluate(self._snap(900)) is ContractStatus.WARNING
        assert contract.evaluate(self._snap(1500)) is ContractStatus.VIOLATED

    def test_monitor_emits_transitions_only(self):
        monitor = ContractMonitor([
            Contract("lat", "latency_mean_us", limit=1000.0)])
        events = []
        monitor.subscribe(events.append)
        monitor.evaluate(self._snap(100))   # honoured (no transition)
        monitor.evaluate(self._snap(2000))  # -> violated
        monitor.evaluate(self._snap(2100))  # still violated (no event)
        monitor.evaluate(self._snap(100))   # -> honoured
        assert [e.status for e in events] == [
            ContractStatus.VIOLATED, ContractStatus.HONOURED]

    def test_all_honoured_property(self):
        monitor = ContractMonitor([
            Contract("lat", "latency_mean_us", limit=1000.0)])
        monitor.evaluate(self._snap(100))
        assert monitor.all_honoured
        monitor.evaluate(self._snap(5000))
        assert not monitor.all_honoured

    def test_duplicate_contract_name_rejected(self):
        monitor = ContractMonitor([
            Contract("lat", "latency_mean_us", limit=1000.0)])
        with pytest.raises(ValueError):
            monitor.add(Contract("lat", "latency_mean_us", limit=2000.0))

    def test_invalid_contract_params(self):
        with pytest.raises(ValueError):
            Contract("x", "latency_mean_us", limit=0.0)
        with pytest.raises(ValueError):
            Contract("x", "latency_mean_us", limit=10.0,
                     warning_fraction=0.0)
