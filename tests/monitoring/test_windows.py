"""Unit and property tests for sliding windows."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.monitoring import SlidingWindow

samples = st.lists(
    st.tuples(st.floats(min_value=0, max_value=1e6),
              st.floats(min_value=-1e6, max_value=1e6)),
    min_size=0, max_size=50)


def test_empty_window_aggregates_to_zero():
    w = SlidingWindow(1000.0)
    assert w.mean() == 0.0
    assert w.std() == 0.0
    assert w.count() == 0
    assert w.maximum() == 0.0


def test_mean_of_known_samples():
    w = SlidingWindow(1000.0)
    for i, v in enumerate([2.0, 4.0, 6.0]):
        w.add(float(i), v)
    assert w.mean() == pytest.approx(4.0)


def test_std_of_known_samples():
    w = SlidingWindow(1000.0)
    for i, v in enumerate([2.0, 4.0, 6.0]):
        w.add(float(i), v)
    assert w.std() == pytest.approx(math.sqrt(8.0 / 3.0))


def test_old_samples_expire():
    w = SlidingWindow(100.0)
    w.add(0.0, 10.0)
    w.add(150.0, 20.0)
    assert w.values(now=150.0) == [20.0]


def test_total_count_survives_expiry():
    w = SlidingWindow(100.0)
    w.add(0.0, 1.0)
    w.add(500.0, 1.0)
    assert w.count(now=500.0) == 1
    assert w.total_count == 2


def test_percentile():
    w = SlidingWindow(1e9)
    for i in range(100):
        w.add(float(i), float(i))
    assert w.percentile(0.5) == pytest.approx(50.0)
    assert w.percentile(0.99) == pytest.approx(99.0)


def test_percentile_validates_fraction():
    w = SlidingWindow(1000.0)
    with pytest.raises(ValueError):
        w.percentile(1.5)


def test_rate_per_second():
    w = SlidingWindow(1_000_000.0)
    # 10 events over 900_000 us -> ~11.1 events/s.
    for i in range(10):
        w.add(i * 100_000.0, 1.0)
    assert w.rate_per_second(900_000.0) == pytest.approx(11.1, rel=0.01)


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        SlidingWindow(0.0)


def test_maximum_of_known_samples():
    w = SlidingWindow(1000.0)
    for i, v in enumerate([3.0, 9.0, 6.0]):
        w.add(float(i), v)
    assert w.maximum() == pytest.approx(9.0)


def test_maximum_tracks_expiry():
    w = SlidingWindow(100.0)
    w.add(0.0, 50.0)
    w.add(150.0, 20.0)
    assert w.maximum(now=150.0) == pytest.approx(20.0)


def test_percentile_extremes():
    w = SlidingWindow(1e9)
    for i in range(10):
        w.add(float(i), float(i))
    assert w.percentile(0.0) == pytest.approx(0.0)
    assert w.percentile(1.0) == pytest.approx(9.0)


def test_percentile_of_empty_window_is_zero():
    assert SlidingWindow(1000.0).percentile(0.5) == 0.0


def test_rate_of_empty_window_is_zero():
    assert SlidingWindow(1000.0).rate_per_second(1_000.0) == 0.0


def test_rate_of_burst_at_one_instant():
    w = SlidingWindow(1_000_000.0)
    for _ in range(5):
        w.add(100.0, 1.0)
    # Zero elapsed span is clamped to 1 us, not a division by zero.
    assert w.rate_per_second(100.0) == pytest.approx(5e6)


def test_std_of_single_sample_is_zero():
    w = SlidingWindow(1000.0)
    w.add(0.0, 42.0)
    assert w.std() == 0.0


def test_values_without_now_do_not_expire():
    w = SlidingWindow(100.0)
    w.add(0.0, 1.0)
    w.add(500.0, 2.0)  # expires the first sample at add-time
    w2 = SlidingWindow(100.0)
    w2.add(0.0, 1.0)
    # Reading without a clock must not silently drop samples.
    assert w2.values() == [1.0]
    assert w.values() == [2.0]


@given(samples)
def test_mean_bounded_by_extremes(pairs):
    w = SlidingWindow(1e12)
    for t, v in sorted(pairs):
        w.add(t, v)
    values = w.values()
    if values:
        assert min(values) - 1e-6 <= w.mean() <= max(values) + 1e-6


@given(samples)
def test_std_nonnegative(pairs):
    w = SlidingWindow(1e12)
    for t, v in sorted(pairs):
        w.add(t, v)
    assert w.std() >= 0.0


@given(samples, st.floats(min_value=1, max_value=1e6))
def test_expiry_keeps_only_recent(pairs, window):
    w = SlidingWindow(window)
    pairs = sorted(pairs)
    for t, v in pairs:
        w.add(t, v)
    if pairs:
        now = pairs[-1][0]
        expected = [v for t, v in pairs if t >= now - window]
        assert w.values(now=now) == expected
