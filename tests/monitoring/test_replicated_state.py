"""Tests for the replicated system-state object (Section 3.1)."""

import pytest

from repro.monitoring import ReplicatedState
from tests.support import Cluster


@pytest.fixture
def rig():
    cluster = Cluster(["h1", "h2", "h3"])
    states = []
    for host in ("h1", "h2", "h3"):
        _, gcs = cluster.client(host, f"member-{host}")
        states.append(ReplicatedState(gcs, "sysmon"))
    cluster.run(100_000)
    return cluster, states


def test_update_reaches_everyone(rig):
    cluster, states = rig
    states[0].publish("cpu", 0.75)
    cluster.run(100_000)
    assert all(s.get("cpu") == 0.75 for s in states)


def test_publisher_sees_own_update(rig):
    cluster, states = rig
    states[1].publish("x", 1)
    cluster.run(100_000)
    assert states[1].get("x") == 1


def test_concurrent_updates_converge_identically(rig):
    """Updates from different members are totally ordered, so all
    copies converge to the same value for a contended key."""
    cluster, states = rig
    for i, state in enumerate(states):
        state.publish("contended", i)
    cluster.run(200_000)
    finals = [s.get("contended") for s in states]
    assert finals[0] == finals[1] == finals[2]
    versions = [s.version for s in states]
    assert versions[0] == versions[1] == versions[2]


def test_per_member_keys(rig):
    cluster, states = rig
    for i, state in enumerate(states):
        state.publish_own("rate", 100.0 * (i + 1))
    cluster.run(200_000)
    rates = states[0].values_matching("rate")
    assert sorted(rates) == [100.0, 200.0, 300.0]


def test_deterministic_policy_same_decision_everywhere(rig):
    """The paper's point: a deterministic function over the replicated
    state yields the same decision at every member."""
    cluster, states = rig
    for i, state in enumerate(states):
        state.publish_own("rate", [300.0, 900.0, 600.0][i])
    cluster.run(200_000)

    def decision(state):
        return max(state.values_matching("rate")) > 800.0

    decisions = [decision(s) for s in states]
    assert decisions == [True, True, True]


def test_listener_invoked(rig):
    cluster, states = rig
    seen = []
    states[2].on_update(lambda key, value: seen.append((key, value)))
    states[0].publish("k", "v")
    cluster.run(100_000)
    assert ("k", "v") in seen


def test_snapshot_returns_copy(rig):
    cluster, states = rig
    states[0].publish("a", 1)
    cluster.run(100_000)
    snap = states[0].snapshot()
    snap["a"] = 999
    assert states[0].get("a") == 1


def test_member_crash_does_not_corrupt_state(rig):
    cluster, states = rig
    states[0].publish("k", 1)
    cluster.run(100_000)
    states[0].gcs.process.kill()
    states[1].publish("k", 2)
    cluster.run(1_500_000)
    assert states[1].get("k") == 2
    assert states[2].get("k") == 2
