"""Per-link topology filters: partitions, flaky links, slow hosts."""

import random

import pytest

from repro.net import (
    AsymmetricPartition,
    FlakyLink,
    PartitionFilter,
    SlowHost,
)


class _CountingRng(random.Random):
    """Random that counts how often its stream is consumed."""

    def __init__(self, seed=0):
        super().__init__(seed)
        self.calls = 0

    def random(self):
        self.calls += 1
        return super().random()


def rng():
    return _CountingRng(0)


class TestPartitionFilter:
    def filt(self):
        return PartitionFilter(
            (frozenset({"a", "b"}), frozenset({"c"})), 100.0, 200.0)

    def test_drops_cross_component_frames_in_window(self):
        assert self.filt().judge("a", "c", 150.0, rng()) == (True, 0.0)
        assert self.filt().judge("c", "b", 150.0, rng()) == (True, 0.0)

    def test_same_component_frames_pass(self):
        assert self.filt().judge("a", "b", 150.0, rng()) == (False, 0.0)

    def test_unlisted_hosts_unaffected(self):
        assert self.filt().judge("a", "x", 150.0, rng()) == (False, 0.0)

    def test_inactive_outside_window(self):
        assert self.filt().judge("a", "c", 99.0, rng()) == (False, 0.0)
        assert self.filt().judge("a", "c", 200.0, rng()) == (False, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionFilter((frozenset({"a"}),), 0.0, 1.0)
        with pytest.raises(ValueError):
            PartitionFilter((frozenset({"a"}), frozenset({"a"})),
                            0.0, 1.0)
        with pytest.raises(ValueError):
            PartitionFilter((frozenset({"a"}), frozenset()), 0.0, 1.0)
        with pytest.raises(ValueError):
            PartitionFilter((frozenset({"a"}), frozenset({"b"})),
                            5.0, 5.0)


class TestAsymmetricPartition:
    def filt(self):
        return AsymmetricPartition(frozenset({"a"}), frozenset({"b"}),
                                   100.0, 200.0)

    def test_one_way_drop(self):
        assert self.filt().judge("a", "b", 150.0, rng()) == (True, 0.0)
        assert self.filt().judge("b", "a", 150.0, rng()) == (False, 0.0)

    def test_inactive_outside_window(self):
        assert self.filt().judge("a", "b", 250.0, rng()) == (False, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AsymmetricPartition(frozenset(), frozenset({"b"}), 0.0, 1.0)


class TestFlakyLink:
    def test_rate_one_always_drops_on_link(self):
        filt = FlakyLink("a", "b", 1.0, 100.0, 200.0)
        assert filt.judge("a", "b", 150.0, rng()) == (True, 0.0)
        assert filt.judge("b", "a", 150.0, rng()) == (True, 0.0)

    def test_asymmetric_direction(self):
        filt = FlakyLink("a", "b", 1.0, 100.0, 200.0, symmetric=False)
        assert filt.judge("a", "b", 150.0, rng()) == (True, 0.0)
        assert filt.judge("b", "a", 150.0, rng()) == (False, 0.0)

    def test_no_rng_consumed_off_link_or_outside_window(self):
        """The determinism contract: the dice roll only happens for a
        targeted frame inside the window, so an installed-but-idle
        filter leaves the RNG stream byte-identical."""
        filt = FlakyLink("a", "b", 0.5, 100.0, 200.0)
        r = rng()
        filt.judge("a", "c", 150.0, r)  # off link
        filt.judge("a", "b", 250.0, r)  # outside window
        assert r.calls == 0
        filt.judge("a", "b", 150.0, r)  # targeted: one roll
        assert r.calls == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FlakyLink("a", "b", 1.5, 0.0, 1.0)


class TestSlowHost:
    def test_delays_ingress_and_egress_in_window(self):
        filt = SlowHost("a", 500.0, 100.0, 200.0)
        assert filt.judge("a", "b", 150.0, rng()) == (False, 500.0)
        assert filt.judge("b", "a", 150.0, rng()) == (False, 500.0)

    def test_other_links_and_windows_untouched(self):
        filt = SlowHost("a", 500.0, 100.0, 200.0)
        assert filt.judge("b", "c", 150.0, rng()) == (False, 0.0)
        assert filt.judge("a", "b", 50.0, rng()) == (False, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowHost("a", -1.0, 0.0, 1.0)
