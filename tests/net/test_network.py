"""Unit tests for the switched-LAN network model."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    BurstLoss,
    DelaySpike,
    Endpoint,
    FRAME_OVERHEAD_BYTES,
    Frame,
    Network,
    RandomLoss,
)
from repro.sim import Host, NetworkCalibration, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=42)


@pytest.fixture
def net(sim):
    # Zero jitter for deterministic latency assertions.
    return Network(sim, NetworkCalibration(jitter_us=0.0))


@pytest.fixture
def pair(net):
    a = net.add_host("a")
    b = net.add_host("b")
    return a, b


def _recv(host, port):
    inbox = []
    host.bind(port, inbox.append)
    return inbox


class TestTopology:
    def test_attach_and_lookup(self, net):
        host = net.add_host("x")
        assert net.host("x") is host
        assert host.network is net

    def test_duplicate_name_rejected(self, net):
        net.add_host("x")
        with pytest.raises(NetworkError):
            net.add_host("x")

    def test_attach_twice_rejected(self, sim, net):
        host = net.add_host("x")
        other = Network(sim)
        with pytest.raises(NetworkError):
            other.attach(host)

    def test_unknown_host_lookup(self, net):
        with pytest.raises(NetworkError):
            net.host("ghost")


class TestDelivery:
    def test_frame_arrives_with_payload(self, sim, net, pair):
        a, b = pair
        inbox = _recv(b, 7000)
        net.send(Endpoint("a", 1), Endpoint("b", 7000), "hi", 100)
        sim.run()
        assert len(inbox) == 1
        assert inbox[0].payload == "hi"

    def test_delay_is_propagation_plus_transmission(self, sim, net, pair):
        a, b = pair
        times = []
        b.bind(7000, lambda f: times.append(sim.now))
        nbytes = 1000
        net.send(Endpoint("a", 1), Endpoint("b", 7000), "x", nbytes)
        sim.run()
        cal = net.calibration
        expected = cal.propagation_us + (
            nbytes + FRAME_OVERHEAD_BYTES) / cal.bandwidth_bytes_per_us
        assert times[0] == pytest.approx(expected)

    def test_local_loopback_is_cheap(self, sim, net):
        a = net.add_host("a")
        times = []
        a.bind(7000, lambda f: times.append(sim.now))
        net.send(Endpoint("a", 1), Endpoint("a", 7000), "x", 10_000)
        sim.run()
        assert times[0] == pytest.approx(net.calibration.local_loopback_us)

    def test_send_to_unknown_host_is_dropped(self, sim, net, pair):
        net.send(Endpoint("a", 1), Endpoint("ghost", 1), "x", 10)
        sim.run()
        assert net.stats.dropped_frames == 1

    def test_send_to_dead_host_is_dropped(self, sim, net, pair):
        a, b = pair
        inbox = _recv(b, 7000)
        b.crash()
        net.send(Endpoint("a", 1), Endpoint("b", 7000), "x", 10)
        sim.run()
        assert inbox == []
        assert net.stats.dropped_frames == 1

    def test_send_from_dead_host_is_dropped(self, sim, net, pair):
        a, b = pair
        inbox = _recv(b, 7000)
        a.crash()
        net.send(Endpoint("a", 1), Endpoint("b", 7000), "x", 10)
        sim.run()
        assert inbox == []

    def test_send_from_unknown_host_raises(self, sim, net, pair):
        with pytest.raises(NetworkError):
            net.send(Endpoint("ghost", 1), Endpoint("a", 1), "x", 10)

    def test_jitter_bounded(self, sim):
        cal = NetworkCalibration(jitter_us=50.0)
        net = Network(sim, cal)
        net.add_host("a")
        b = net.add_host("b")
        times = []
        b.bind(7000, lambda f: times.append(sim.now))
        base = sim.now
        for _ in range(50):
            net.send(Endpoint("a", 1), Endpoint("b", 7000), "x", 0)
        sim.run()
        lo = cal.propagation_us + FRAME_OVERHEAD_BYTES / cal.bandwidth_bytes_per_us
        assert all(lo <= t - base <= lo + 50.0 for t in times)
        # With 50 samples the jitter should actually vary.
        assert len(set(times)) > 1

    def test_negative_payload_size_rejected(self):
        with pytest.raises(NetworkError):
            Frame(Endpoint("a", 1), Endpoint("b", 2), "x", payload_bytes=-5)


class TestAccounting:
    def test_bytes_accounted_with_overhead(self, sim, net, pair):
        a, b = pair
        _recv(b, 7000)
        net.send(Endpoint("a", 1), Endpoint("b", 7000), "x", 100)
        sim.run()
        assert net.stats.total_bytes == 100 + FRAME_OVERHEAD_BYTES
        assert net.stats.per_host["a"].tx_bytes == 100 + FRAME_OVERHEAD_BYTES
        assert net.stats.per_host["b"].rx_bytes == 100 + FRAME_OVERHEAD_BYTES

    def test_lifetime_bandwidth(self, sim, net, pair):
        a, b = pair
        _recv(b, 7000)
        for _ in range(10):
            net.send(Endpoint("a", 1), Endpoint("b", 7000), "x", 946)
        sim.run(until=10_000.0)
        # 10 frames x 1000 wire bytes over 10_000 us = 1 byte/us = 1 MB/s.
        assert net.stats.lifetime_bandwidth_mbps(sim.now) == pytest.approx(1.0)

    def test_windowed_bandwidth_decays(self, sim, net, pair):
        a, b = pair
        _recv(b, 7000)
        net.send(Endpoint("a", 1), Endpoint("b", 7000), "x", 10_000)
        sim.run()
        assert net.stats.bandwidth_mbps(sim.now) > 0
        sim.run(until=sim.now + 2_000_000.0)
        assert net.stats.bandwidth_mbps(sim.now) == 0.0

    def test_delivery_ratio(self, sim, net, pair):
        a, b = pair
        _recv(b, 7000)
        net.send(Endpoint("a", 1), Endpoint("b", 7000), "x", 10)
        net.send(Endpoint("a", 1), Endpoint("ghost", 1), "x", 10)
        sim.run()
        assert net.stats.delivery_ratio() == pytest.approx(0.5)


class TestLossModels:
    def test_random_loss_drops_roughly_at_rate(self, sim, net, pair):
        a, b = pair
        inbox = _recv(b, 7000)
        net.add_loss_model(RandomLoss(0.5))
        for _ in range(400):
            net.send(Endpoint("a", 1), Endpoint("b", 7000), "x", 10)
        sim.run()
        assert 120 < len(inbox) < 280

    def test_random_loss_rate_validated(self):
        with pytest.raises(ValueError):
            RandomLoss(1.5)

    def test_burst_loss_only_in_window(self, sim, net, pair):
        a, b = pair
        inbox = _recv(b, 7000)
        net.add_loss_model(BurstLoss(1000.0, 2000.0, rate=1.0))
        net.send(Endpoint("a", 1), Endpoint("b", 7000), "before", 10)
        sim.schedule(1500.0, net.send, Endpoint("a", 1),
                     Endpoint("b", 7000), "during", 10)
        sim.schedule(3000.0, net.send, Endpoint("a", 1),
                     Endpoint("b", 7000), "after", 10)
        sim.run()
        assert [f.payload for f in inbox] == ["before", "after"]

    def test_delay_spike_delays_but_delivers(self, sim, net, pair):
        a, b = pair
        times = []
        b.bind(7000, lambda f: times.append(sim.now))
        net.add_loss_model(DelaySpike(0.0, 10_000.0, extra_us=5000.0))
        net.send(Endpoint("a", 1), Endpoint("b", 7000), "x", 0)
        sim.run()
        assert times[0] > 5000.0

    def test_remove_loss_model(self, sim, net, pair):
        a, b = pair
        inbox = _recv(b, 7000)
        model = RandomLoss(1.0)
        net.add_loss_model(model)
        net.remove_loss_model(model)
        net.send(Endpoint("a", 1), Endpoint("b", 7000), "x", 10)
        sim.run()
        assert len(inbox) == 1

    def test_burst_loss_validates_window(self):
        with pytest.raises(ValueError):
            BurstLoss(10.0, 5.0)

    def test_delay_spike_validates(self):
        with pytest.raises(ValueError):
            DelaySpike(0.0, 10.0, extra_us=-1.0)
