"""Unit tests for network traffic accounting."""

import pytest

from repro.net.stats import NetworkStats, bytes_per_us_to_mbps


def test_record_transmit_updates_all_counters():
    stats = NetworkStats()
    stats.record_transmit(0.0, "a", "b", 1000)
    assert stats.total_bytes == 1000
    assert stats.total_frames == 1
    assert stats.per_host["a"].tx_bytes == 1000
    assert stats.per_host["a"].tx_frames == 1
    assert stats.per_host["b"].rx_bytes == 1000
    assert stats.per_host["b"].rx_frames == 1


def test_drop_counter_separate():
    stats = NetworkStats()
    stats.record_drop()
    assert stats.dropped_frames == 1
    assert stats.total_frames == 0


def test_delivery_ratio():
    stats = NetworkStats()
    assert stats.delivery_ratio() == 1.0  # nothing offered yet
    stats.record_transmit(0.0, "a", "b", 10)
    stats.record_drop()
    stats.record_drop()
    assert stats.delivery_ratio() == pytest.approx(1.0 / 3.0)


def test_lifetime_bandwidth():
    stats = NetworkStats()
    stats.record_transmit(0.0, "a", "b", 500)
    stats.record_transmit(100.0, "a", "b", 500)
    # 1000 bytes over 1000 us = 1 byte/us = 1 MB/s.
    assert stats.lifetime_bandwidth_mbps(now=1000.0) == pytest.approx(1.0)


def test_lifetime_bandwidth_zero_span():
    stats = NetworkStats()
    assert stats.lifetime_bandwidth_mbps(now=0.0) == 0.0


def test_windowed_bandwidth_expires_old_traffic():
    stats = NetworkStats(window_us=1000.0)
    stats.record_transmit(0.0, "a", "b", 10_000)
    assert stats.bandwidth_mbps(now=500.0) > 0.0
    assert stats.bandwidth_mbps(now=5_000.0) == 0.0


def test_windowed_bandwidth_reflects_recent_rate():
    stats = NetworkStats(window_us=1_000_000.0)
    for i in range(10):
        stats.record_transmit(i * 100.0, "a", "b", 100)
    # 1000 bytes over ~900 us.
    assert stats.bandwidth_mbps(now=900.0) == pytest.approx(1000 / 900,
                                                            rel=0.01)


def test_bidirectional_traffic_accumulates_per_host():
    stats = NetworkStats()
    stats.record_transmit(0.0, "a", "b", 100)
    stats.record_transmit(0.0, "b", "a", 50)
    assert stats.per_host["a"].tx_bytes == 100
    assert stats.per_host["a"].rx_bytes == 50
    assert stats.per_host["b"].tx_bytes == 50
    assert stats.per_host["b"].rx_bytes == 100


def test_unit_conversion_identity():
    # 1 byte/us == 1 MB/s by definition of the decimal megabyte.
    assert bytes_per_us_to_mbps(1.0) == 1.0
    assert bytes_per_us_to_mbps(12.5) == 12.5
