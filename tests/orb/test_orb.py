"""Unit tests for the miniature ORB over plain TCP transports."""

import pytest

from repro.errors import OrbError
from repro.net import Network
from repro.orb import (
    COMPONENT_APPLICATION,
    COMPONENT_NETWORK,
    COMPONENT_ORB,
    CounterServant,
    EchoServant,
    OrbClient,
    OrbServer,
    ReplyStatus,
    ServiceAddress,
    TcpClientTransport,
    TcpServerTransport,
)
from repro.sim import NetworkCalibration, Process, Simulator


@pytest.fixture
def rig():
    sim = Simulator(seed=0)
    net = Network(sim, NetworkCalibration(jitter_us=0.0))
    server_host = net.add_host("server")
    client_host = net.add_host("client")
    server_proc = Process(server_host, "srv")
    client_proc = Process(client_host, "cli")

    server = OrbServer(server_proc, TcpServerTransport(server_proc, net, 9000))
    server.register("echo", EchoServant())
    server.register("counter", CounterServant())
    address = server.start()

    client = OrbClient(
        client_proc, TcpClientTransport(client_proc, net, address))
    return sim, net, server, client, server_proc, client_proc


def _call(sim, client, key, op, payload, nbytes=64):
    replies = []
    client.invoke(key, op, payload, nbytes, replies.append)
    sim.run(until=sim.now + 1_000_000)
    assert replies, "no reply received"
    return replies[0]


def test_echo_round_trip(rig):
    sim, net, server, client, *_ = rig
    reply = _call(sim, client, "echo", "ping", "hello")
    assert reply.status is ReplyStatus.OK
    assert reply.payload == "hello"


def test_stateful_servant(rig):
    sim, net, server, client, *_ = rig
    _call(sim, client, "counter", "add", 5)
    _call(sim, client, "counter", "add", 7)
    reply = _call(sim, client, "counter", "read", None)
    assert reply.payload == 12


def test_unknown_object_key(rig):
    sim, net, server, client, *_ = rig
    reply = _call(sim, client, "ghost", "op", None)
    assert reply.status is ReplyStatus.NO_SUCH_OBJECT


def test_unknown_operation_maps_to_exception(rig):
    sim, net, server, client, *_ = rig
    reply = _call(sim, client, "counter", "bogus", None)
    assert reply.status is ReplyStatus.EXCEPTION


def test_request_ids_unique(rig):
    sim, net, server, client, *_ = rig
    ids = {client.invoke("echo", "ping", None, 8, lambda r: None)
           for _ in range(50)}
    assert len(ids) == 50


def test_oneway_gets_no_reply(rig):
    sim, net, server, client, *_ = rig
    replies = []
    client.invoke("echo", "ping", None, 8, replies.append, oneway=True)
    sim.run(until=sim.now + 1_000_000)
    assert replies == []
    assert server.requests_served == 1


def test_concurrent_invocations_all_answered(rig):
    sim, net, server, client, *_ = rig
    replies = []
    for i in range(10):
        client.invoke("counter", "add", 1, 16, replies.append)
    sim.run(until=sim.now + 2_000_000)
    assert len(replies) == 10
    assert server.servant("counter").value == 10


def test_timeline_attributes_components(rig):
    sim, net, server, client, *_ = rig
    reply = _call(sim, client, "echo", "ping", "x", nbytes=100)
    parts = reply.timeline.components()
    assert parts.get(COMPONENT_ORB, 0) > 0
    assert parts.get(COMPONENT_APPLICATION, 0) == pytest.approx(15.0)
    assert parts.get(COMPONENT_NETWORK, 0) > 0


def test_timeline_total_close_to_measured_latency(rig):
    sim, net, server, client, *_ = rig
    reply = _call(sim, client, "echo", "ping", "x")
    measured = reply.timeline.completed_at - reply.timeline.started_at
    # Attribution must cover most of the wall clock (CPU queueing and
    # context switches account for the slack).
    assert reply.timeline.total() == pytest.approx(measured, rel=0.15)


def test_larger_payloads_cost_more_orb_time(rig):
    sim, net, server, client, *_ = rig
    small = _call(sim, client, "echo", "ping", "x", nbytes=10)
    big = _call(sim, client, "echo", "ping", "x", nbytes=10_000)
    assert big.timeline.get(COMPONENT_ORB) > small.timeline.get(COMPONENT_ORB)


def test_negative_payload_rejected(rig):
    sim, net, server, client, *_ = rig
    with pytest.raises(OrbError):
        client.invoke("echo", "ping", None, -1, lambda r: None)


def test_duplicate_servant_key_rejected(rig):
    sim, net, server, client, *_ = rig
    with pytest.raises(OrbError):
        server.register("echo", EchoServant())


def test_server_without_servants_cannot_start():
    sim = Simulator()
    net = Network(sim)
    host = net.add_host("h")
    proc = Process(host, "srv")
    server = OrbServer(proc, TcpServerTransport(proc, net, 9000))
    with pytest.raises(OrbError):
        server.start()


def test_dead_client_stops_invoking(rig):
    sim, net, server, client, server_proc, client_proc = rig
    client_proc.kill()
    with pytest.raises(OrbError):
        client.invoke("echo", "ping", None, 8, lambda r: None)


def test_dead_server_never_replies(rig):
    sim, net, server, client, server_proc, client_proc = rig
    server_proc.kill()
    replies = []
    client.invoke("echo", "ping", None, 8, replies.append)
    sim.run(until=sim.now + 2_000_000)
    assert replies == []


def test_capture_and_restore_state(rig):
    sim, net, server, client, *_ = rig
    _call(sim, client, "counter", "add", 9)
    state, nbytes = server.capture_state()
    assert state["counter"] == {"value": 9}
    assert nbytes > 0
    server.servant("counter").value = 0
    server.restore_state(state)
    assert server.servant("counter").value == 9


def test_service_address_constructors():
    tcp = ServiceAddress.tcp("h", 9000)
    grp = ServiceAddress.replicated("grp")
    assert tcp.kind == "tcp" and tcp.host == "h"
    assert grp.kind == "group" and grp.group == "grp"


def test_tcp_client_rejects_group_address():
    sim = Simulator()
    net = Network(sim)
    host = net.add_host("h")
    proc = Process(host, "cli")
    with pytest.raises(OrbError):
        TcpClientTransport(proc, net, ServiceAddress.replicated("grp"))
