"""Tests for the key-value servant (realistic stateful service)."""

import pytest

from repro.orb import KeyValueServant
from repro.orb.giop import ReplyStatus


@pytest.fixture
def kv():
    return KeyValueServant()


def test_put_get_roundtrip(kv):
    assert kv.dispatch("put", ("k", {"a": 1})).payload == "ok"
    assert kv.dispatch("get", "k").payload == {"a": 1}


def test_get_missing_returns_none(kv):
    assert kv.dispatch("get", "ghost").payload is None


def test_delete(kv):
    kv.dispatch("put", ("k", 1))
    assert kv.dispatch("delete", "k").payload is True
    assert kv.dispatch("delete", "k").payload is False


def test_size(kv):
    kv.dispatch("put", ("a", 1))
    kv.dispatch("put", ("b", 2))
    assert kv.dispatch("size", None).payload == 2


def test_unknown_operation_raises(kv):
    from repro.errors import OrbError
    with pytest.raises(OrbError):
        kv.dispatch("compare-and-swap", ("k", 1))


def test_state_size_tracks_contents(kv):
    _, empty_size = kv.get_state()
    kv.dispatch("put", ("key", "x" * 1000))
    _, full_size = kv.get_state()
    assert full_size > empty_size + 900


def test_state_roundtrip(kv):
    kv.dispatch("put", ("a", [1, 2]))
    state, _ = kv.get_state()
    other = KeyValueServant()
    other.set_state(state)
    assert other.dispatch("get", "a").payload == [1, 2]
    # The snapshot is a copy: mutating the donor doesn't leak.
    kv.dispatch("put", ("b", 3))
    assert other.dispatch("get", "b").payload is None


def test_reply_bytes_follow_value_size(kv):
    kv.dispatch("put", ("small", "x"))
    kv.dispatch("put", ("big", "x" * 500))
    small = kv.dispatch("get", "small").payload_bytes
    big = kv.dispatch("get", "big").payload_bytes
    assert big > small + 400


def test_replicated_kv_end_to_end():
    """Three active replicas of the KV store stay identical through a
    mixed workload with a crash."""
    from repro.experiments import (Testbed, deploy_client,
                                   deploy_replica_group)
    from repro.orb import marshalled_size
    from repro.replication import (ClientReplicationConfig,
                                   ReplicationConfig, ReplicationStyle)
    testbed = Testbed.paper_testbed(3, 1, seed=4)
    config = ReplicationConfig(style=ReplicationStyle.ACTIVE, group="kv")
    replicas = deploy_replica_group(testbed, ["s01", "s02", "s03"],
                                    config, {"kv": KeyValueServant})
    client = deploy_client(testbed, "w01",
                           ClientReplicationConfig(group="kv"))
    testbed.run(100_000)

    def call(op, payload):
        replies = []
        client.orb_client.invoke("kv", op, payload,
                                 marshalled_size(payload), replies.append)
        testbed.run(2_000_000)
        assert replies
        return replies[0]

    call("put", ("x", 1))
    call("put", ("y", {"nested": [1, 2]}))
    replicas[2].crash()
    call("delete", "x")
    call("put", ("z", "zzz"))
    survivors = [r for r in replicas if r.alive]
    assert all(r.servants["kv"].data == {"y": {"nested": [1, 2]},
                                         "z": "zzz"}
               for r in survivors)
    reply = call("get", "y")
    assert reply.status is ReplyStatus.OK
    assert reply.payload == {"nested": [1, 2]}
