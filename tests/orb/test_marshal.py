"""Tests for CDR-style marshalled-size estimation."""

import pytest
from hypothesis import given, strategies as st

from repro.orb.marshal import marshalled_size, padded

json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-2**40, 2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=30),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=20)


def test_primitives():
    assert marshalled_size(None) == 4
    assert marshalled_size(True) == 5
    assert marshalled_size(7) == 8           # long + typecode
    assert marshalled_size(2**40) == 12      # long long + typecode
    assert marshalled_size(1.5) == 12        # double + typecode


def test_string_scales_with_utf8_length():
    assert marshalled_size("") == 5
    assert marshalled_size("abc") == 8
    assert marshalled_size("é") == 4 + 2 + 1  # two UTF-8 bytes


def test_bytes():
    assert marshalled_size(b"\x00" * 10) == 14


def test_sequence_adds_length_prefix():
    assert marshalled_size([1, 2, 3]) == 4 + 3 * 8


def test_dict_counts_keys_and_values():
    size = marshalled_size({"k": 1})
    assert size == 4 + (4 + 1 + 1) + 8


def test_nested_structures():
    payload = {"readings": [1.0, 2.0], "id": "sensor-1"}
    assert marshalled_size(payload) > marshalled_size({"id": "sensor-1"})


def test_cycle_protection():
    cyclic = []
    cyclic.append(cyclic)
    with pytest.raises(ValueError):
        marshalled_size(cyclic)


def test_unknown_object_falls_back_to_repr():
    class Opaque:
        def __repr__(self):
            return "<opaque>"

    assert marshalled_size(Opaque()) == 4 + len("<opaque>") + 1


def test_padded():
    assert padded(0) == 0
    assert padded(1) == 8
    assert padded(8) == 8
    assert padded(9, alignment=4) == 12
    with pytest.raises(ValueError):
        padded(8, alignment=0)


@given(json_values)
def test_size_is_positive(value):
    assert marshalled_size(value) > 0


@given(st.lists(json_values, max_size=5))
def test_sequence_size_superadditive(items):
    """A sequence costs at least the sum of its items."""
    total = marshalled_size(items)
    assert total >= sum(marshalled_size(item) for item in items)


@given(st.text(max_size=50), st.text(max_size=50))
def test_longer_string_never_smaller(a, b):
    if len(a.encode()) <= len(b.encode()):
        assert marshalled_size(a) <= marshalled_size(b)
