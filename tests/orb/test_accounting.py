"""Unit tests for per-request latency attribution."""

import pytest

from repro.orb import RequestTimeline, average_timelines
from repro.orb.accounting import (
    COMPONENT_GCS,
    COMPONENT_ORB,
    COMPONENT_REPLICATOR,
)


def test_add_accumulates_per_component():
    t = RequestTimeline()
    t.add(COMPONENT_ORB, 100.0)
    t.add(COMPONENT_ORB, 50.0)
    t.add(COMPONENT_GCS, 10.0)
    assert t.get(COMPONENT_ORB) == 150.0
    assert t.get(COMPONENT_GCS) == 10.0
    assert t.total() == 160.0


def test_negative_contribution_rejected():
    with pytest.raises(ValueError):
        RequestTimeline().add(COMPONENT_ORB, -1.0)


def test_unknown_component_reads_zero():
    assert RequestTimeline().get("nothing") == 0.0


def test_transit_attribution():
    t = RequestTimeline()
    t.mark_handoff(100.0)
    t.absorb_transit(COMPONENT_GCS, 350.0)
    assert t.get(COMPONENT_GCS) == 250.0


def test_absorb_without_handoff_is_noop():
    t = RequestTimeline()
    t.absorb_transit(COMPONENT_GCS, 500.0)
    assert t.get(COMPONENT_GCS) == 0.0


def test_handoff_consumed_once():
    t = RequestTimeline()
    t.mark_handoff(0.0)
    t.absorb_transit(COMPONENT_GCS, 100.0)
    t.absorb_transit(COMPONENT_GCS, 300.0)  # no second handoff
    assert t.get(COMPONENT_GCS) == 100.0


def test_clock_skew_clamped_to_zero():
    t = RequestTimeline()
    t.mark_handoff(100.0)
    t.absorb_transit(COMPONENT_GCS, 50.0)  # earlier than handoff
    assert t.get(COMPONENT_GCS) == 0.0


def test_fork_is_independent():
    original = RequestTimeline()
    original.add(COMPONENT_ORB, 100.0)
    original.started_at = 5.0
    twin = original.fork()
    twin.add(COMPONENT_ORB, 42.0)
    assert original.get(COMPONENT_ORB) == 100.0
    assert twin.get(COMPONENT_ORB) == 142.0
    assert twin.started_at == 5.0


def test_fork_carries_pending_handoff():
    original = RequestTimeline()
    original.mark_handoff(10.0)
    twin = original.fork()
    twin.absorb_transit(COMPONENT_GCS, 60.0)
    assert twin.get(COMPONENT_GCS) == 50.0


def test_merge_from():
    a = RequestTimeline()
    a.add(COMPONENT_ORB, 10.0)
    b = RequestTimeline()
    b.add(COMPONENT_ORB, 5.0)
    b.add(COMPONENT_REPLICATOR, 7.0)
    a.merge_from(b)
    assert a.get(COMPONENT_ORB) == 15.0
    assert a.get(COMPONENT_REPLICATOR) == 7.0


def test_average_timelines():
    def tl(orb, gcs):
        t = RequestTimeline()
        t.add(COMPONENT_ORB, orb)
        t.add(COMPONENT_GCS, gcs)
        return t

    averaged = average_timelines([tl(100, 10), tl(200, 30)])
    assert averaged[COMPONENT_ORB] == pytest.approx(150.0)
    assert averaged[COMPONENT_GCS] == pytest.approx(20.0)


def test_average_of_nothing_is_empty():
    assert average_timelines([]) == {}


def test_repr_sorted():
    t = RequestTimeline()
    t.add("b", 2.0)
    t.add("a", 1.0)
    assert repr(t) == "<Timeline a=1us, b=2us>"
