"""repro — reproduction of *Architecting and Implementing Versatile
Dependability* (Dumitraș, Srivastava, Narasimhan — DSN 2004).

The package implements the paper's MEAD-style middleware — a tunable,
transparent replication framework with low-level knobs (replication
style, replica count, checkpointing) and high-level knobs (scalability,
availability) — on top of a fully simulated distributed substrate
(hosts, LAN, Spread-like group communication, TAO-like mini-ORB).

Layering, bottom-up::

    repro.sim          discrete-event kernel, hosts, CPUs, processes
    repro.net          switched-LAN model with bandwidth accounting
    repro.gcs          group membership + reliable ordered multicast
    repro.orb          miniature CORBA-like ORB
    repro.interpose    library-interposition transport
    repro.replication  active / warm- / cold-passive replication
    repro.adaptation   runtime replication-style switching (paper Fig. 5)
    repro.monitoring   metric sensors, replicated state, contracts
    repro.core         knobs, policies, cost model, design space
    repro.faults       fault injection
    repro.workload     closed-/open-loop clients
    repro.telemetry    causal tracing, metrics registry, critical path
    repro.experiments  scenario harness shared by examples & benchmarks
"""

__version__ = "1.0.0"
