"""Time-varying load profiles for open-loop clients.

Figure 6 drives the system with a request rate that climbs above and
falls below the adaptation threshold; these profiles describe such
rate trajectories as functions of time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


class RateProfile:
    """A request rate (requests/second) as a function of time (µs)."""

    def rate_at(self, time_us: float) -> float:
        """Offered rate (req/s) at ``time_us``."""
        raise NotImplementedError

    def peak(self, duration_us: float, step_us: float = 10_000.0) -> float:
        """Maximum rate over [0, duration] (sampled)."""
        t = 0.0
        peak = 0.0
        while t <= duration_us:
            peak = max(peak, self.rate_at(t))
            t += step_us
        return peak


@dataclass(frozen=True)
class ConstantRate(RateProfile):
    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ConfigurationError("rate must be non-negative")

    def rate_at(self, time_us: float) -> float:
        """See :meth:`RateProfile.rate_at`."""
        return self.rate_per_s


class StepProfile(RateProfile):
    """Piecewise-constant rate: [(start_us, rate), ...]."""

    def __init__(self, steps: Sequence[Tuple[float, float]]):
        if not steps:
            raise ConfigurationError("a step profile needs steps")
        ordered = sorted(steps)
        if ordered[0][0] > 0:
            ordered.insert(0, (0.0, 0.0))
        for _, rate in ordered:
            if rate < 0:
                raise ConfigurationError("rates must be non-negative")
        self.steps: List[Tuple[float, float]] = ordered

    def rate_at(self, time_us: float) -> float:
        """See :meth:`RateProfile.rate_at`."""
        current = self.steps[0][1]
        for start, rate in self.steps:
            if time_us >= start:
                current = rate
            else:
                break
        return current


@dataclass(frozen=True)
class RampProfile(RateProfile):
    """Linear ramp from ``start_rate`` to ``end_rate`` over
    [0, duration_us], constant afterwards."""

    start_rate: float
    end_rate: float
    duration_us: float

    def __post_init__(self) -> None:
        if self.duration_us <= 0:
            raise ConfigurationError("ramp duration must be positive")
        if self.start_rate < 0 or self.end_rate < 0:
            raise ConfigurationError("rates must be non-negative")

    def rate_at(self, time_us: float) -> float:
        """See :meth:`RateProfile.rate_at`."""
        if time_us >= self.duration_us:
            return self.end_rate
        fraction = time_us / self.duration_us
        return self.start_rate + fraction * (self.end_rate - self.start_rate)


@dataclass(frozen=True)
class SpikeProfile(RateProfile):
    """Fig. 6-style load: a base rate with a high-rate window in the
    middle — the 'limited window of opportunity' of Section 5."""

    base_rate: float
    spike_rate: float
    spike_start_us: float
    spike_end_us: float

    def __post_init__(self) -> None:
        if self.spike_end_us <= self.spike_start_us:
            raise ConfigurationError("spike end must be after start")
        if self.base_rate < 0 or self.spike_rate < 0:
            raise ConfigurationError("rates must be non-negative")

    def rate_at(self, time_us: float) -> float:
        """See :meth:`RateProfile.rate_at`."""
        if self.spike_start_us <= time_us < self.spike_end_us:
            return self.spike_rate
        return self.base_rate
