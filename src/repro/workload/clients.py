"""Workload drivers: closed-loop and open-loop clients.

The paper's evaluation uses "a CORBA client-server test application
that processes a cycle of 10,000 requests" — a closed loop: each
client sends the next request as soon as the previous reply arrives.
Figure 6 instead needs an open-loop (rate-driven) arrival process that
follows a time-varying profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.orb.giop import GiopReply
from repro.sim.actor import Actor
from repro.workload.profiles import RateProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.testbed import ClientStack


@dataclass
class WorkloadStats:
    """Outcome of one client's run."""

    sent: int = 0
    completed: int = 0
    latencies_us: List[float] = field(default_factory=list)
    completion_times: List[float] = field(default_factory=list)
    timelines: List[Any] = field(default_factory=list)

    @property
    def mean_latency_us(self) -> float:
        if not self.latencies_us:
            return 0.0
        return sum(self.latencies_us) / len(self.latencies_us)

    @property
    def jitter_us(self) -> float:
        values = self.latencies_us
        if len(values) < 2:
            return 0.0
        mean = self.mean_latency_us
        return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5

    def throughput_per_s(self, duration_us: float) -> float:
        """Completions per second over ``duration_us``."""
        if duration_us <= 0:
            return 0.0
        return self.completed / duration_us * 1_000_000.0


class ClosedLoopClient(Actor):
    """The paper's micro-benchmark: a cycle of N requests, each sent
    when the previous reply returns."""

    def __init__(self, stack: "ClientStack", n_requests: int,
                 object_key: str = "counter", operation: str = "add",
                 payload: Any = 1, payload_bytes: int = 512,
                 keep_timelines: bool = False,
                 object_keys: Optional[Sequence[str]] = None):
        super().__init__(stack.process, name=f"load:{stack.process.name}")
        if n_requests < 1:
            raise ConfigurationError("n_requests must be >= 1")
        if object_keys is not None and not object_keys:
            raise ConfigurationError("object_keys must be non-empty")
        self.stack = stack
        self.n_requests = n_requests
        self.object_key = object_key
        #: Optional round-robin key set: request *i* targets key
        #: ``i mod len(object_keys)``.  Sharded workloads use this to
        #: spread one client's cycle across every shard.
        self.object_keys: Optional[Sequence[str]] = object_keys
        self.operation = operation
        self.payload = payload
        self.payload_bytes = payload_bytes
        self.keep_timelines = keep_timelines
        self.stats = WorkloadStats()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def start(self) -> None:
        """Begin the request cycle."""
        if self.started_at is not None:
            raise ConfigurationError("client already started")
        self.started_at = self.sim.now
        self._next()

    def _next(self) -> None:
        if not self.alive:
            return
        if self.stats.sent >= self.n_requests:
            self.finished_at = self.sim.now
            self.trace("workload.done",
                       f"cycle of {self.n_requests} requests complete")
            return
        key = self.object_key
        if self.object_keys is not None:
            key = self.object_keys[self.stats.sent % len(self.object_keys)]
        self.stats.sent += 1
        self.stack.orb_client.invoke(
            key, self.operation, self.payload,
            self.payload_bytes, self._on_reply)

    def _on_reply(self, reply: GiopReply) -> None:
        self.stats.completed += 1
        timeline = reply.timeline
        if timeline.started_at is not None \
                and timeline.completed_at is not None:
            self.stats.latencies_us.append(
                timeline.completed_at - timeline.started_at)
        self.stats.completion_times.append(self.sim.now)
        if self.keep_timelines:
            self.stats.timelines.append(timeline)
        self._next()

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def observed_duration_us(self) -> float:
        """Wall-clock span of the cycle so far."""
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else self.sim.now
        return end - self.started_at


class ThinkTimeClient(Actor):
    """Closed-loop client with a time-varying think time.

    After each reply the client "thinks" for ``1/rate(t)`` before the
    next request, so the *offered* rate tracks the profile while the
    *observed* rate is throttled by response latency — the feedback
    loop behind Fig. 6's result that adaptive replication raises the
    observed request arrival rate: faster replies let clients send
    sooner.
    """

    def __init__(self, stack: "ClientStack", profile: RateProfile,
                 duration_us: float, object_key: str = "counter",
                 operation: str = "add", payload: Any = 1,
                 payload_bytes: int = 512):
        super().__init__(stack.process, name=f"load:{stack.process.name}")
        if duration_us <= 0:
            raise ConfigurationError("duration must be positive")
        self.stack = stack
        self.profile = profile
        self.duration_us = duration_us
        self.object_key = object_key
        self.operation = operation
        self.payload = payload
        self.payload_bytes = payload_bytes
        self.stats = WorkloadStats()
        self.started_at: Optional[float] = None

    def start(self) -> None:
        """Begin the think/send loop."""
        if self.started_at is not None:
            raise ConfigurationError("client already started")
        self.started_at = self.sim.now
        self._send()

    def _elapsed(self) -> float:
        return self.sim.now - (self.started_at or 0.0)

    def _send(self) -> None:
        if not self.alive or self._elapsed() >= self.duration_us:
            return
        self.stats.sent += 1
        self.stack.orb_client.invoke(
            self.object_key, self.operation, self.payload,
            self.payload_bytes, self._on_reply)

    def _on_reply(self, reply: GiopReply) -> None:
        self.stats.completed += 1
        timeline = reply.timeline
        if timeline.started_at is not None \
                and timeline.completed_at is not None:
            self.stats.latencies_us.append(
                timeline.completed_at - timeline.started_at)
        self.stats.completion_times.append(self.sim.now)
        self._think()

    def _think(self) -> None:
        rate = self.profile.rate_at(self._elapsed())
        if rate <= 0:
            # Idle phase: re-check the profile later without sending.
            self.set_timer("think", 50_000.0, self._think)
        else:
            self.set_timer("think", 1_000_000.0 / rate, self._send)


class OpenLoopClient(Actor):
    """Rate-driven arrivals following a :class:`RateProfile`.

    Inter-arrival gaps are deterministic (1/rate) by default or
    exponential with ``poisson=True``.  Arrivals do not wait for
    replies, so offered load is independent of service latency —
    exactly what Fig. 6's request-rate x-axis requires.
    """

    def __init__(self, stack: "ClientStack", profile: RateProfile,
                 duration_us: float, object_key: str = "counter",
                 operation: str = "add", payload: Any = 1,
                 payload_bytes: int = 512, poisson: bool = False):
        super().__init__(stack.process, name=f"load:{stack.process.name}")
        if duration_us <= 0:
            raise ConfigurationError("duration must be positive")
        self.stack = stack
        self.profile = profile
        self.duration_us = duration_us
        self.object_key = object_key
        self.operation = operation
        self.payload = payload
        self.payload_bytes = payload_bytes
        self.poisson = poisson
        self.stats = WorkloadStats()
        self.send_times: List[float] = []
        self.started_at: Optional[float] = None

    def start(self) -> None:
        """Begin profile-driven arrivals."""
        if self.started_at is not None:
            raise ConfigurationError("client already started")
        self.started_at = self.sim.now
        self._schedule_next()

    def _schedule_next(self) -> None:
        elapsed = self.sim.now - (self.started_at or 0.0)
        if elapsed >= self.duration_us:
            return
        rate = self.profile.rate_at(elapsed)
        if rate <= 0:
            # Idle: re-check the profile shortly.
            self.set_timer("arrival", 50_000.0, self._schedule_next)
            return
        gap_us = 1_000_000.0 / rate
        if self.poisson:
            gap_us = self.sim.rng.expovariate(1.0 / gap_us)
        self.set_timer("arrival", gap_us, self._fire)

    def _fire(self) -> None:
        if not self.alive:
            return
        self.stats.sent += 1
        self.send_times.append(self.sim.now)
        self.stack.orb_client.invoke(
            self.object_key, self.operation, self.payload,
            self.payload_bytes, self._on_reply)
        self._schedule_next()

    def _on_reply(self, reply: GiopReply) -> None:
        self.stats.completed += 1
        timeline = reply.timeline
        if timeline.started_at is not None \
                and timeline.completed_at is not None:
            self.stats.latencies_us.append(
                timeline.completed_at - timeline.started_at)
        self.stats.completion_times.append(self.sim.now)
