"""Workload: load profiles and client drivers.

Public surface:

- :class:`ClosedLoopClient` — the paper's 10,000-request cycle driver
- :class:`OpenLoopClient` — rate-driven arrivals (Fig. 6)
- :class:`WorkloadStats` — per-client outcome
- profiles: :class:`ConstantRate`, :class:`StepProfile`,
  :class:`RampProfile`, :class:`SpikeProfile`
"""

from repro.workload.clients import (
    ClosedLoopClient,
    OpenLoopClient,
    ThinkTimeClient,
    WorkloadStats,
)
from repro.workload.profiles import (
    ConstantRate,
    RampProfile,
    RateProfile,
    SpikeProfile,
    StepProfile,
)

__all__ = [
    "ClosedLoopClient",
    "ConstantRate",
    "OpenLoopClient",
    "RampProfile",
    "RateProfile",
    "SpikeProfile",
    "StepProfile",
    "ThinkTimeClient",
    "WorkloadStats",
]
