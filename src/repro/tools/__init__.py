"""Operator tools: trace timelines, ASCII charts, CSV export.

Public surface:

- :func:`render_timeline`, :func:`render_series`,
  :func:`summarize_trace` — human-readable run inspection
- :func:`render_journal`, :func:`journal_summary`,
  :func:`journal_html` — the dependability-journal observatory
- :func:`profile_to_csv`, :func:`policy_to_csv`,
  :func:`scores_to_csv`, :func:`series_to_csv` — data export for
  external plotting
"""

from repro.tools.export import (
    policy_to_csv,
    profile_to_csv,
    scores_to_csv,
    series_to_csv,
)
from repro.tools.observatory import (
    JOURNAL_TAGS,
    journal_html,
    journal_summary,
    render_journal,
)
from repro.tools.timeline import (
    DEFAULT_CATEGORIES,
    render_series,
    render_timeline,
    summarize_trace,
)

__all__ = [
    "DEFAULT_CATEGORIES",
    "JOURNAL_TAGS",
    "journal_html",
    "journal_summary",
    "policy_to_csv",
    "profile_to_csv",
    "render_journal",
    "render_series",
    "render_timeline",
    "scores_to_csv",
    "series_to_csv",
    "summarize_trace",
]
