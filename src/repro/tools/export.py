"""Exporting measurement data for external plotting.

The paper's figures are plots over the Fig. 7 sweep; these helpers
serialize a :class:`Profile` (and scenario results) to CSV so any
plotting tool can regenerate them.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Optional, Sequence, TextIO

from repro.core.measurements import Profile
from repro.core.policies import ScalabilityPolicy

PROFILE_COLUMNS = ("style", "n_replicas", "n_clients", "latency_us",
                   "jitter_us", "bandwidth_mbps", "throughput_per_s",
                   "faults_tolerated")


def profile_to_csv(profile: Profile, out: Optional[TextIO] = None) -> str:
    """Write the sweep as CSV; returns the text (also written to
    ``out`` when given)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(PROFILE_COLUMNS)
    for m in sorted(profile, key=lambda m: (m.config.style.value,
                                            m.config.n_replicas,
                                            m.n_clients)):
        writer.writerow([
            m.config.style.value, m.config.n_replicas, m.n_clients,
            f"{m.latency_us:.2f}", f"{m.jitter_us:.2f}",
            f"{m.bandwidth_mbps:.4f}", f"{m.throughput_per_s:.2f}",
            m.config.faults_tolerated])
    text = buffer.getvalue()
    if out is not None:
        out.write(text)
    return text


def policy_to_csv(policy: ScalabilityPolicy,
                  out: Optional[TextIO] = None) -> str:
    """Write a synthesized Table 2 as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(("n_clients", "config", "latency_us",
                     "bandwidth_mbps", "faults_tolerated", "cost"))
    for entry in policy.table():
        writer.writerow([
            entry.n_clients, entry.config.label,
            f"{entry.latency_us:.2f}", f"{entry.bandwidth_mbps:.4f}",
            entry.faults_tolerated, f"{entry.cost:.4f}"])
    text = buffer.getvalue()
    if out is not None:
        out.write(text)
    return text


SCORE_COLUMNS = ("config", "style", "n_replicas", "checkpoint_interval",
                 "n_trials", "dependability", "availability",
                 "failed_fraction", "late_fraction", "mean_recovery_us",
                 "latency_us", "bandwidth_mbps", "resource_cost")


def scores_to_csv(scores: Sequence, out: Optional[TextIO] = None) -> str:
    """Write campaign :class:`~repro.campaign.DependabilityScore` rows
    as CSV (best dependability first)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(SCORE_COLUMNS)
    for s in sorted(scores, key=lambda s: -s.dependability):
        writer.writerow([
            s.config_key, s.style, s.n_replicas, s.checkpoint_interval,
            s.n_trials, f"{s.dependability:.6f}", f"{s.availability:.6f}",
            f"{s.failed_fraction:.6f}", f"{s.late_fraction:.6f}",
            f"{s.mean_recovery_us:.2f}", f"{s.latency_us:.2f}",
            f"{s.bandwidth_mbps:.4f}", f"{s.resource_cost:.4f}"])
    text = buffer.getvalue()
    if out is not None:
        out.write(text)
    return text


def series_to_csv(series: Iterable[tuple], header: tuple,
                  out: Optional[TextIO] = None) -> str:
    """Write any (x, y, ...) series as CSV with the given header."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    for row in series:
        writer.writerow(row)
    text = buffer.getvalue()
    if out is not None:
        out.write(text)
    return text
