"""The operator observatory: human-readable views of a journal.

Renders a dependability event journal (live, or reloaded from its
JSONL artifact) the way an operator consumes it: an annotated
timeline, a summary with the derived availability/MTTR figures and
the injected-fault cross-check, and a self-contained HTML report for
sharing — ``python -m repro observe`` is the CLI wrapper.
"""

from __future__ import annotations

import html
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.journal.availability import (
    AvailabilityReport,
    availability_report,
    discover_shards,
    match_faults,
    per_shard_reports,
)
from repro.journal.events import JournalEvent

#: Display tag per event-kind prefix, in match order.
JOURNAL_TAGS: Tuple[Tuple[str, str], ...] = (
    ("fault.inject", "FAULT"),
    ("fault.restart_skipped", "FAULT"),
    ("partition", "PARTITION"),
    ("client.breaker_open", "BREAKER"),
    ("detector.suspect", "DETECT"),
    ("membership.view", "GROUP"),
    ("daemon.install", "VIEW"),
    ("checkpoint", "CKPT"),
    ("switch", "SWITCH"),
    ("failover", "FAILOVER"),
    ("state.sync", "SYNC"),
    ("adaptation.decision", "ADAPT"),
    ("contract", "CONTRACT"),
    ("client.giveup", "GIVEUP"),
    ("journal.truncated", "TRUNC"),
)

_STATE_COLOURS = {"up": "#2e7d32", "degraded": "#f9a825",
                  "down": "#c62828"}


def _tag(kind: str) -> str:
    for prefix, tag in JOURNAL_TAGS:
        if kind == prefix or kind.startswith(prefix + "."):
            return tag
    return "EVENT"


def _describe(event: JournalEvent) -> str:
    """One-line human description of an event's payload."""
    attrs = event.attrs
    if event.kind == "fault.inject":
        until = attrs.get("until_us")
        window = (f" until {float(until) / 1e6:.3f} s"
                  if until else "")
        return (f"inject {attrs.get('fault')} on {attrs.get('target')}"
                f" at {float(attrs.get('at_us', 0.0)) / 1e6:.3f} s{window}")
    if event.kind == "detector.suspect":
        return f"suspect {attrs.get('newly')}"
    if event.kind == "membership.view":
        parts = [f"group {attrs.get('group')} view {attrs.get('view_id')}"]
        if attrs.get("joined"):
            parts.append(f"+{attrs['joined']}")
        if attrs.get("left"):
            parts.append(f"-{attrs['left']}"
                         + (" (crashed)" if attrs.get("crashed") else ""))
        return " ".join(parts)
    if event.kind == "daemon.install":
        return (f"daemon view {attrs.get('view_id')} "
                f"members {attrs.get('members')} dead {attrs.get('dead')}")
    if event.kind.startswith("checkpoint"):
        return (f"{event.kind.split('.', 1)[1]} #{attrs.get('ckpt_id')} "
                f"({attrs.get('state_bytes', attrs.get('source', ''))})")
    if event.kind.startswith("switch"):
        return (f"{attrs.get('switch_id')} "
                f"[{event.kind.split('.', 1)[1]}]")
    if event.kind == "adaptation.decision":
        return (f"{attrs.get('from_style')} -> {attrs.get('to_style')} "
                f"at {attrs.get('rate_per_s', 0.0):.0f} req/s "
                f"({attrs.get('voters', 1)} voter(s))")
    if event.kind.startswith("contract."):
        return (f"{attrs.get('contract')} {event.kind.split('.', 1)[1]} "
                f"({attrs.get('metric')}={attrs.get('value')})")
    if event.kind == "failover":
        return f"{attrs.get('member')} takes over as primary"
    if event.kind == "state.sync":
        return f"{attrs.get('member')} synced"
    if event.kind == "fault.restart_skipped":
        return (f"restart of {attrs.get('target')} skipped (host down); "
                f"crash-only semantics apply")
    if event.kind == "partition.detected":
        return (f"minority component {attrs.get('live')} of "
                f"{attrs.get('members')}")
    if event.kind == "partition.wedged":
        return (f"wedged with {attrs.get('live')}; "
                f"groups {attrs.get('groups')} degraded")
    if event.kind == "partition.healed":
        return (f"merged into daemon view {attrs.get('view_id')} "
                f"members {attrs.get('members')}")
    if event.kind == "client.breaker_open":
        return (f"circuit open on {attrs.get('endpoint')} after "
                f"{attrs.get('timeouts')} timeout(s); rerouting")
    if event.kind == "client.giveup":
        return (f"gave up on {attrs.get('request_id')} after "
                f"{attrs.get('attempts')} attempts")
    if event.kind == "journal.truncated":
        return (f"flight recorder dropped {attrs.get('dropped')} "
                f"event(s) (ring size {attrs.get('ring_size')}); "
                f"excerpt incomplete")
    return " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))


def render_journal(events: Iterable[JournalEvent],
                   limit: Optional[int] = None,
                   kind: Optional[str] = None) -> str:
    """The journal as ``[   t.tttt s] TAG  host  description`` lines."""
    chosen: List[JournalEvent] = sorted(
        events, key=lambda e: (e.time_us, e.seq))
    if kind:
        chosen = [e for e in chosen
                  if e.kind == kind or e.kind.startswith(kind + ".")]
    if limit is not None:
        chosen = chosen[:limit]
    return "\n".join(
        f"[{e.time_us / 1e6:10.4f} s] {_tag(e.kind):9s} "
        f"{e.host:8s} "
        + (f"[{e.shard}] " if e.shard is not None else "")
        + _describe(e)
        for e in chosen)


def journal_summary(events: Sequence[JournalEvent],
                    window_start_us: Optional[float] = None,
                    window_end_us: Optional[float] = None) -> str:
    """Availability accounting plus fault cross-check, as text."""
    report = availability_report(events, window_start_us=window_start_us,
                                 window_end_us=window_end_us)
    matches = match_faults(events)
    lines = [
        f"{len(list(events))} events over "
        f"{report.span_us / 1e6:.3f} s",
        f"availability {report.availability * 100:.3f} % "
        f"(down {report.downtime_us / 1e6:.3f} s over "
        f"{report.n_outages} outage(s), "
        f"degraded {report.degraded_fraction * 100:.2f} %)",
        f"MTTR {report.mttr_us / 1e6:.3f} s, "
        f"MTTF {report.mttf_us / 1e6:.3f} s, "
        f"{report.false_positives} false positive(s)",
    ]
    truncated = {e.host: e.attrs.get("dropped", 0)
                 for e in events if e.kind == "journal.truncated"}
    if truncated:
        detail = ", ".join(f"{host} lost {n}"
                           for host, n in sorted(truncated.items()))
        lines.append(f"WARNING: flight-recorder rings truncated "
                     f"({detail}); per-host excerpts are incomplete")
    # Per-shard rollup, only for journals whose events carry
    # first-class shard tags (cluster runs) — single-group artifacts
    # keep the exact pre-shard summary.
    if any(e.shard is not None for e in events):
        shards = discover_shards(events)
        reports = per_shard_reports(events,
                                    window_start_us=window_start_us,
                                    window_end_us=window_end_us,
                                    shards=shards)
        if reports:
            lines.append("")
            lines.append(f"{'shard':12s} {'avail %':>8s} "
                         f"{'down [s]':>9s} {'MTTR [s]':>9s} "
                         f"{'outages':>8s}")
            for shard in sorted(reports):
                r = reports[shard]
                lines.append(f"{shard:12s} {r.availability * 100:8.3f} "
                             f"{r.downtime_us / 1e6:9.3f} "
                             f"{r.mttr_us / 1e6:9.3f} "
                             f"{r.n_outages:8d}")
    if matches:
        lines.append("")
        lines.append(f"{'fault':14s} {'target':18s} {'at [s]':>8s} "
                     f"{'detected by':22s} {'latency [s]':>12s}")
        for m in matches:
            if m.detected:
                detected = m.detected_kind or ""
                latency = f"{m.detection_latency_us / 1e6:12.3f}"
            else:
                detected, latency = "MISSED", f"{'-':>12s}"
            lines.append(f"{m.fault_kind:14s} {m.target:18s} "
                         f"{m.at_us / 1e6:8.3f} {detected:22s} {latency}")
    return "\n".join(lines)


def journal_html(events: Sequence[JournalEvent],
                 title: str = "Dependability journal",
                 window_start_us: Optional[float] = None,
                 window_end_us: Optional[float] = None) -> str:
    """A self-contained HTML report: summary, availability band,
    fault cross-check and the full event table."""
    report = availability_report(events, window_start_us=window_start_us,
                                 window_end_us=window_end_us)
    matches = match_faults(events)
    ordered = sorted(events, key=lambda e: (e.time_us, e.seq))

    band = _availability_band(report)
    fault_rows = "".join(
        "<tr><td>{}</td><td>{}</td><td>{:.3f}</td><td>{}</td>"
        "<td>{}</td></tr>".format(
            html.escape(m.fault_kind), html.escape(m.target),
            m.at_us / 1e6,
            html.escape(m.detected_kind) if m.detected
            else "<b>MISSED</b>",
            f"{m.detection_latency_us / 1e6:.3f} s" if m.detected else "—")
        for m in matches)
    event_rows = "".join(
        "<tr><td>{:.4f}</td><td>{}</td><td>{}</td><td>{}</td>"
        "<td>{}</td></tr>".format(
            e.time_us / 1e6, html.escape(e.host),
            html.escape(f"{e.component}/{e.kind}"),
            html.escape(_describe(e)),
            e.trace_id if e.trace_id is not None else "")
        for e in ordered)
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>
body {{ font-family: sans-serif; margin: 2em; }}
table {{ border-collapse: collapse; margin: 1em 0; }}
td, th {{ border: 1px solid #ccc; padding: 2px 8px;
          font-size: 13px; text-align: left; }}
.band {{ display: flex; height: 18px; width: 100%;
         border: 1px solid #888; }}
.figures td {{ border: none; padding-right: 2em; }}
</style></head><body>
<h1>{html.escape(title)}</h1>
<table class="figures"><tr>
<td><b>availability</b> {report.availability * 100:.3f} %</td>
<td><b>MTTR</b> {report.mttr_us / 1e6:.3f} s</td>
<td><b>MTTF</b> {report.mttf_us / 1e6:.3f} s</td>
<td><b>outages</b> {report.n_outages}</td>
<td><b>degraded</b> {report.degraded_fraction * 100:.2f} %</td>
<td><b>false positives</b> {report.false_positives}</td>
<td><b>events</b> {len(ordered)}</td>
</tr></table>
<div class="band">{band}</div>
<h2>Injected faults vs detection</h2>
<table><tr><th>fault</th><th>target</th><th>at [s]</th>
<th>detected by</th><th>latency</th></tr>{fault_rows}</table>
<h2>Events</h2>
<table><tr><th>t [s]</th><th>host</th><th>kind</th><th>detail</th>
<th>trace</th></tr>{event_rows}</table>
</body></html>
"""


def _availability_band(report: AvailabilityReport) -> str:
    """The up/degraded/down windows as proportional coloured strips."""
    if report.span_us <= 0:
        return ""
    strips = []
    for window in report.windows:
        width = 100.0 * window.duration_us / report.span_us
        colour = _STATE_COLOURS.get(window.state, "#999")
        strips.append(
            f'<div style="width:{width:.2f}%;background:{colour}" '
            f'title="{window.state} '
            f'{window.start_us / 1e6:.3f}-{window.end_us / 1e6:.3f} s">'
            f"</div>")
    return "".join(strips)
