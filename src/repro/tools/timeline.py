"""Human-readable rendering of simulation traces.

The trace log records everything significant a run did (view changes,
switches, checkpoints, faults).  These helpers turn it into the kind
of annotated timeline an experimenter pastes into a lab notebook, and
into simple ASCII charts for rate/latency series.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sim.trace import TraceLog, TraceRecord

#: Categories worth showing in a default timeline, with display tags.
DEFAULT_CATEGORIES = (
    ("host.crash", "FAULT"),
    ("process.crash", "FAULT"),
    ("host.restart", "RECOVER"),
    ("gcs.suspect", "DETECT"),
    ("gcs.install", "VIEW"),
    ("gcs.view", "GROUP"),
    ("repl.switch", "SWITCH"),
    ("repl.failover", "FAILOVER"),
    ("repl.recovery", "RECOVER"),
    ("repl.sync", "SYNC"),
    ("adapt.switch", "ADAPT"),
    ("telemetry.drop", "TELEM"),
    ("workload.done", "DONE"),
)


def render_timeline(trace: TraceLog,
                    categories: Optional[Sequence[Tuple[str, str]]] = None,
                    since_us: float = 0.0,
                    limit: Optional[int] = None) -> str:
    """Render trace records as ``[   t.tttt s] TAG       message`` lines."""
    chosen = list(categories or DEFAULT_CATEGORIES)
    rows: List[Tuple[float, str, str]] = []
    for prefix, tag in chosen:
        for record in trace.query(prefix, since=since_us):
            rows.append((record.time, tag, record.message))
    rows.sort(key=lambda row: row[0])
    if limit is not None:
        rows = rows[:limit]
    lines = [f"[{time / 1e6:10.4f} s] {tag:9s} {message}"
             for time, tag, message in rows]
    return "\n".join(lines)


def render_series(series: Iterable[Tuple[float, float]],
                  width: int = 50, label: str = "value",
                  time_divisor: float = 1e6,
                  time_unit: str = "s") -> str:
    """Render an (time, value) series as a horizontal ASCII bar chart."""
    points = list(series)
    if not points:
        return "(empty series)"
    peak = max(value for _, value in points)
    scale = (width / peak) if peak > 0 else 0.0
    lines = [f"{label} (peak {peak:.1f})"]
    for time, value in points:
        bar = "#" * int(value * scale)
        lines.append(f"{time / time_divisor:9.2f}{time_unit} "
                     f"{value:10.1f} |{bar}")
    return "\n".join(lines)


def summarize_trace(trace: TraceLog) -> dict:
    """Headline counters for a run: faults, view changes, switches."""
    return {
        "records": len(trace),
        "host_crashes": trace.count("host.crash"),
        "process_crashes": trace.count("process.crash"),
        "daemon_view_changes": trace.count("gcs.install"),
        "group_view_changes": trace.count("gcs.view"),
        "style_switches": sum(
            1 for record in trace.query("repl.switch")
            if "step III" in record.message or "rollback" in record.message),
        "failovers": trace.count("repl.failover"),
        "adaptations": trace.count("adapt.switch"),
    }
