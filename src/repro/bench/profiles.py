"""The fixed bench suite: calibrated performance profiles.

Eight profiles, each reporting wall-clock-grounded throughput numbers
plus peak RSS:

- ``kernel_events`` — pure event-loop throughput: an event-chain
  workload (the dispatch fast path) and a timer-churn workload (the
  cancel/compaction path), each run on both the optimized kernel and
  the :class:`~repro.bench.reference.ReferenceSimulator`, so the
  artifact carries a same-machine ``speedup_vs_reference``;
- ``rtt`` — the paper's round-trip scenario (active and warm-passive
  replication over the full GCS/ORB stack), reporting events/sec and
  simulated-µs per wall-ms;
- ``campaign`` — a small fault-injection campaign through the
  persistent worker pool, reporting trials/sec;
- ``check`` — the ``repro.check`` canonical scenario with and without
  verification, reporting the schedule-exploration overhead ratio;
- ``cluster`` — the sharded closed-loop load at 1 vs. 4 shards on the
  same host set, reporting the aggregate-throughput scaling factor;
- ``slo`` — the same sharded fault trial with and without the SLO
  plane, asserting the journal bytes are identical (observation-only)
  and reporting the post-hoc error-budget evaluation throughput;
- ``partition`` — the per-link topology-filter path: a clean trial vs
  the same trial with an idle filter installed (byte-identical
  journal required) plus a live split-and-heal trial;
- ``snapshot`` — the :class:`repro.sim.SimSnapshot` warm-start fast
  path: fresh vs. forked exploration and campaign loops, asserting
  byte-identical outcomes and reporting the fork speedups plus the
  end-to-end ``repro check --explore`` schedules/sec.

``quick=True`` shrinks every workload to CI-smoke size (seconds, not
minutes); the metric *names* are identical either way so baselines
stay diffable.
"""

from __future__ import annotations

import resource
import tempfile
import time
from typing import Any, Callable, Dict, List, Tuple

from repro.bench.artifact import BenchReport
from repro.bench.reference import ReferenceSimulator
from repro.sim.kernel import Simulator

__all__ = ["PROFILE_NAMES", "profile_summaries", "run_profile",
           "run_suite"]


def _peak_rss_kb() -> float:
    """Peak resident set size of this process, in KiB."""
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


# ---------------------------------------------------------------------------
# kernel_events: raw event-loop throughput
# ---------------------------------------------------------------------------

def _chain_workload(sim: Simulator, n_chains: int, length: int) -> int:
    """``n_chains`` interleaved event chains, each ``length`` deep —
    the shape of cascaded network/CPU completions.  Returns the event
    count dispatched."""

    def tick(remaining: int) -> None:
        if remaining:
            sim.schedule_fast(1.0, tick, remaining - 1)

    for lane in range(n_chains):
        sim.schedule_fast(float(lane % 7) * 0.25, tick, length - 1)
    sim.run()
    return sim.events_dispatched


def _churn_workload(sim: Simulator, n_ticks: int, horizon: float) -> int:
    """Retransmit-timer churn: every tick arms a far-future timeout
    and cancels the previous one, exactly the pattern the reliable
    links and failure detectors produce.  Cancelled timers accumulate
    ahead of the clock, which is what heap compaction targets.
    Returns the event count dispatched."""
    live: List[Any] = [None]

    def timeout() -> None:
        """The timer body that (almost) never runs."""

    def tick(remaining: int) -> None:
        if live[0] is not None:
            live[0].cancel()
        live[0] = sim.schedule_fast(horizon, timeout)
        if remaining:
            sim.schedule_fast(1.0, tick, remaining - 1)

    sim.schedule_fast(0.0, tick, n_ticks - 1)
    sim.run()
    return sim.events_dispatched


def _kernel_events(quick: bool) -> BenchReport:
    """Run chain + churn on both kernels; report throughput ratios."""
    n_chains, length = (8, 25_000) if not quick else (8, 5_000)
    n_ticks, horizon = (200_000, 10_000.0) if not quick else (40_000, 10_000.0)

    metrics: Dict[str, float] = {}
    total_events = 0
    total_wall = 0.0
    total_ref_wall = 0.0
    for key, run in (
            ("chain", lambda sim: _chain_workload(sim, n_chains, length)),
            ("churn", lambda sim: _churn_workload(sim, n_ticks, horizon))):
        fast_events, fast_wall = _timed(lambda: run(Simulator(seed=1)))
        ref_events, ref_wall = _timed(lambda: run(ReferenceSimulator(seed=1)))
        fast_rate = fast_events / max(fast_wall, 1e-9)
        ref_rate = ref_events / max(ref_wall, 1e-9)
        metrics[f"{key}_events_per_sec"] = fast_rate
        metrics[f"{key}_reference_events_per_sec"] = ref_rate
        metrics[f"{key}_speedup_vs_reference"] = fast_rate / ref_rate
        total_events += fast_events
        total_wall += fast_wall
        total_ref_wall += ref_wall

    metrics["events_per_sec"] = total_events / max(total_wall, 1e-9)
    # Both kernels dispatch the same events, so the suite-level
    # speedup reduces to the wall-clock ratio.
    metrics["speedup_vs_reference"] = total_ref_wall / max(total_wall, 1e-9)
    metrics["wall_s"] = total_wall
    metrics["peak_rss_kb"] = _peak_rss_kb()
    return BenchReport(
        profile="kernel_events", quick=quick,
        parameters={"n_chains": n_chains, "chain_length": length,
                    "churn_ticks": n_ticks, "churn_horizon_us": horizon},
        metrics=metrics)


# ---------------------------------------------------------------------------
# rtt: the full-stack round-trip scenario
# ---------------------------------------------------------------------------

def _rtt(quick: bool) -> BenchReport:
    """Active vs. warm-passive closed-loop round trips over the whole
    GCS/ORB stack — the workload every figure in the paper runs."""
    from repro.experiments.scenarios import run_replicated_load
    from repro.replication import ReplicationStyle

    n_requests = 60 if quick else 250
    metrics: Dict[str, float] = {}
    total_events = 0
    total_sim_us = 0.0
    total_wall = 0.0
    for style in (ReplicationStyle.ACTIVE, ReplicationStyle.WARM_PASSIVE):
        result, wall = _timed(lambda: run_replicated_load(
            style, n_replicas=3, n_clients=2, n_requests=n_requests,
            seed=1))
        key = style.value
        metrics[f"{key}_latency_mean_us"] = result.latency_mean_us
        metrics[f"{key}_events_per_sec"] = (result.events_dispatched
                                            / max(wall, 1e-9))
        total_events += result.events_dispatched
        total_sim_us += result.duration_us
        total_wall += wall

    metrics["events_per_sec"] = total_events / max(total_wall, 1e-9)
    metrics["sim_us_per_wall_ms"] = total_sim_us / max(total_wall * 1e3, 1e-9)
    metrics["wall_s"] = total_wall
    metrics["peak_rss_kb"] = _peak_rss_kb()
    return BenchReport(
        profile="rtt", quick=quick,
        parameters={"n_replicas": 3, "n_clients": 2,
                    "n_requests": n_requests},
        metrics=metrics)


# ---------------------------------------------------------------------------
# campaign: worker-pool wall clock
# ---------------------------------------------------------------------------

def _campaign(quick: bool) -> BenchReport:
    """A small fault-injection sweep through the persistent worker
    pool (2 workers), measuring end-to-end campaign wall clock."""
    from repro.campaign import CampaignSpec, ResultsStore, run_campaign

    seeds = [0] if quick else [0, 1]
    duration_us = 250_000.0 if quick else 500_000.0
    spec = CampaignSpec(
        name="bench", styles=["active", "warm_passive"],
        replica_counts=[2], checkpoint_intervals=[1],
        fault_loads=["none", "process_crash"], seeds=seeds,
        n_clients=2, duration_us=duration_us, rate_per_s=150.0,
        settle_us=250_000.0)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        store = ResultsStore(f"{tmp}/results.jsonl")
        summary, wall = _timed(
            lambda: run_campaign(spec, store, workers=2))
    metrics = {
        "trials": float(summary.total),
        "failed": float(summary.failed),
        "trials_per_sec": summary.total / max(wall, 1e-9),
        "sim_us_per_wall_ms": (summary.total * (duration_us + 250_000.0)
                               / max(wall * 1e3, 1e-9)),
        "wall_s": wall,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return BenchReport(
        profile="campaign", quick=quick,
        parameters={"trials": summary.total, "workers": 2,
                    "duration_us": duration_us, "seeds": len(seeds)},
        metrics=metrics)


# ---------------------------------------------------------------------------
# cluster: throughput scaling with shard count
# ---------------------------------------------------------------------------

def _cluster(quick: bool) -> BenchReport:
    """Aggregate closed-loop throughput at 1 vs. 4 shards.

    Both runs use the same host set, client fleet and key universe —
    only the shard count changes — so ``scaling_x`` isolates the win
    of parallel primaries.  ``styles_distinct`` asserts, from the
    journal's per-shard deployment events, that the 4-shard run really
    mixes replication styles (one active, three warm-passive).
    """
    from repro.cluster import run_cluster_load

    n_requests = 15 if quick else 40
    n_clients = 12
    n_server_hosts = 5

    r1, wall1 = _timed(lambda: run_cluster_load(
        n_shards=1, n_clients=n_clients, n_requests=n_requests,
        n_server_hosts=n_server_hosts, seed=1, journal=True))
    r4, wall4 = _timed(lambda: run_cluster_load(
        n_shards=4, n_clients=n_clients, n_requests=n_requests,
        n_server_hosts=n_server_hosts, seed=1, journal=True))
    assert r4.journal is not None
    deployed_styles = {event.attrs.get("style")
                       for event in r4.journal.events
                       if event.component == "cluster"
                       and event.kind == "shard"}
    total_events = r1.events_dispatched + r4.events_dispatched
    total_wall = wall1 + wall4
    metrics = {
        "shards1_throughput_per_s": r1.throughput_per_s,
        "shards4_throughput_per_s": r4.throughput_per_s,
        "scaling_x": (r4.throughput_per_s
                      / max(r1.throughput_per_s, 1e-9)),
        "styles_distinct": float(len(deployed_styles)),
        "latency_mean_us": r4.latency_mean_us,
        "events_per_sec": total_events / max(total_wall, 1e-9),
        "wall_s": total_wall,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return BenchReport(
        profile="cluster", quick=quick,
        parameters={"n_requests": n_requests, "n_clients": n_clients,
                    "n_server_hosts": n_server_hosts,
                    "shard_counts": [1, 4]},
        metrics=metrics)


# ---------------------------------------------------------------------------
# check: schedule-exploration overhead
# ---------------------------------------------------------------------------

def _check(quick: bool) -> BenchReport:
    """The ``repro.check`` canonical scenario, plain vs. verified.

    The *baseline* loop runs the scenario under the kernel's native
    ordering with no history capture; the *checked* loop runs it the
    way ``python -m repro check --explore`` does — one captured
    warm-up snapshot, then per schedule a fork, a random-walk policy,
    history recording and linearizability + invariant verification —
    so ``check_overhead_ratio`` is the price of one verified schedule.
    """
    from repro.check import (
        RandomWalkPolicy,
        canonical_scenario,
        finish_schedule,
        run_schedule,
        snapshot_schedule,
    )
    from repro.check.explorer import verify_outcome

    n_schedules = 8 if quick else 40
    scenario = canonical_scenario()

    def baseline_loop() -> int:
        events = 0
        for _ in range(n_schedules):
            events += run_schedule(scenario).events_dispatched
        return events

    def checked_loop() -> int:
        snapshot = snapshot_schedule(scenario)
        events = 0
        for i in range(n_schedules):
            outcome = finish_schedule(
                snapshot.fork(),
                RandomWalkPolicy(seed=i, tie_choices=4,
                                 delay_bound_us=150.0))
            if verify_outcome(outcome):
                raise AssertionError("bench scenario must verify clean")
            events += outcome.events_dispatched
        return events

    base_events, base_wall = _timed(baseline_loop)
    checked_events, checked_wall = _timed(checked_loop)
    base_rate = base_events / max(base_wall, 1e-9)
    checked_rate = checked_events / max(checked_wall, 1e-9)
    metrics = {
        "events_per_sec": checked_rate,
        "baseline_events_per_sec": base_rate,
        "check_overhead_ratio": base_rate / max(checked_rate, 1e-9),
        "schedules_per_sec": n_schedules / max(checked_wall, 1e-9),
        "wall_s": base_wall + checked_wall,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return BenchReport(
        profile="check", quick=quick,
        parameters={"n_schedules": n_schedules, "tie_choices": 4,
                    "delay_bound_us": 150.0},
        metrics=metrics)


# ---------------------------------------------------------------------------
# slo: observability-plane overhead and evaluation throughput
# ---------------------------------------------------------------------------

def _slo(quick: bool) -> BenchReport:
    """The SLO plane priced against the trial it observes.

    The *baseline* run captures a sharded crash trial's journal with
    no SLO evaluation; the *slo* run is the identical trial with the
    per-shard error-budget/alert evaluation on.  The journal streams
    must match byte for byte — the plane is post-hoc and observation-
    only, so turning it on cannot perturb the simulation — and
    ``slo_overhead_ratio`` is then pure evaluation cost.
    ``events_per_sec`` is the re-evaluation throughput over the
    captured stream (the ``repro slo`` CLI's hot path).
    """
    from repro.cluster import run_cluster_trial
    from repro.journal.io import events_to_jsonl
    from repro.replication import ReplicationStyle
    from repro.slo import evaluate_slos

    duration_us = 400_000.0 if quick else 1_500_000.0
    n_rounds = 10 if quick else 50

    def trial(slo: bool):
        return run_cluster_trial(
            style=ReplicationStyle.WARM_PASSIVE, n_shards=3,
            n_clients=6, duration_us=duration_us, rate_per_s=200.0,
            seed=1, fault_load="process_crash", journal=True, slo=slo)

    base, base_wall = _timed(lambda: trial(False))
    tagged, slo_wall = _timed(lambda: trial(True))
    assert base.journal_events is not None
    assert tagged.journal_events is not None
    if (events_to_jsonl(base.journal_events)
            != events_to_jsonl(tagged.journal_events)):
        raise AssertionError(
            "SLO evaluation must not perturb the journal")
    assert tagged.slo is not None
    events = tagged.journal_events

    def eval_loop() -> int:
        seen = 0
        for _ in range(n_rounds):
            evaluate_slos(events)
            seen += len(events)
        return seen

    evaluated, eval_wall = _timed(eval_loop)
    metrics = {
        "events_per_sec": evaluated / max(eval_wall, 1e-9),
        "slo_overhead_ratio": slo_wall / max(base_wall, 1e-9),
        "journal_events": float(len(events)),
        "budgets": float(tagged.slo["slos"]),
        "alerts": float(tagged.slo["alerts"]),
        "wall_s": base_wall + slo_wall + eval_wall,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return BenchReport(
        profile="slo", quick=quick,
        parameters={"n_shards": 3, "n_clients": 6,
                    "duration_us": duration_us, "n_rounds": n_rounds,
                    "fault_load": "process_crash"},
        metrics=metrics)


# ---------------------------------------------------------------------------
# partition: per-link topology-filter path overhead
# ---------------------------------------------------------------------------

def _partition(quick: bool) -> BenchReport:
    """Price the per-link topology-filter path against a clean trial.

    The *baseline* trial runs with no topology faults at all; the
    *filtered* trial is the identical workload with a never-active
    :class:`~repro.net.PartitionFilter` installed directly on the
    network (its window lies beyond the run, and bypassing the
    injector keeps the ground-truth journal untouched).  Every frame
    now pays the filter consultation, but the journal streams must
    match byte for byte — the filter path may not consume RNG or
    perturb timing while inactive — and ``filter_overhead_ratio`` is
    then the pure cost of consulting installed-but-idle filters.  A
    third trial runs a real mid-window split-and-heal to report the
    live partition path's throughput.
    """
    from repro.experiments.trial import run_fault_trial
    from repro.journal.io import events_to_jsonl
    from repro.net import PartitionFilter
    from repro.replication import ReplicationStyle

    duration_us = 400_000.0 if quick else 1_500_000.0
    rate_per_s = 200.0

    def trial(inject=None):
        return run_fault_trial(
            ReplicationStyle.ACTIVE, n_replicas=3, n_clients=2,
            duration_us=duration_us, rate_per_s=rate_per_s, seed=1,
            inject=inject, journal=True)

    def install_idle(ctx) -> None:
        """An installed filter whose window never opens."""
        names = sorted(ctx.testbed.network.hosts)
        horizon = ctx.t0 + 1_000.0 * ctx.duration_us
        ctx.testbed.network.add_link_filter(PartitionFilter(
            (frozenset(names[:1]), frozenset(names[1:])),
            horizon, horizon + 1.0))

    def split_and_heal(ctx) -> None:
        """A real one-host split for the middle third of the window."""
        minority = ctx.replicas[-1].process.host.name
        start = ctx.t0 + 0.3 * ctx.duration_us
        ctx.injector.partition_at([[minority]], start,
                                  start + 0.3 * ctx.duration_us)

    base, base_wall = _timed(lambda: trial())
    idle, idle_wall = _timed(lambda: trial(install_idle))
    assert base.journal_events is not None
    assert idle.journal_events is not None
    if (events_to_jsonl(base.journal_events)
            != events_to_jsonl(idle.journal_events)):
        raise AssertionError(
            "an inactive topology filter must not perturb the journal")
    live, live_wall = _timed(lambda: trial(split_and_heal))
    assert live.journal_events is not None

    metrics = {
        "events_per_sec": (len(idle.journal_events)
                           / max(idle_wall, 1e-9)),
        "filter_overhead_ratio": idle_wall / max(base_wall, 1e-9),
        "journal_events": float(len(idle.journal_events)),
        "partition_events_per_sec": (len(live.journal_events)
                                     / max(live_wall, 1e-9)),
        "partition_completed": float(live.completed),
        "wall_s": base_wall + idle_wall + live_wall,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return BenchReport(
        profile="partition", quick=quick,
        parameters={"n_replicas": 3, "n_clients": 2,
                    "duration_us": duration_us,
                    "rate_per_s": rate_per_s},
        metrics=metrics)


# ---------------------------------------------------------------------------
# snapshot: warm-start fork vs fresh prefix replay
# ---------------------------------------------------------------------------

def _snapshot(quick: bool) -> BenchReport:
    """Price the :class:`repro.sim.SimSnapshot` fast path.

    Two consumer shapes, each run fresh (full setup + warmup per
    iteration) and forked (one captured snapshot, one fork per
    iteration), asserting byte-identical outcomes before reporting
    the speedups:

    - *exploration*: random-walk schedules of the ``repro.check``
      canonical scenario (the explorer's loop);
    - *campaign*: fault-variation trials over one warmed
      configuration (the campaign worker's loop).

    ``explore_schedules_per_sec`` is the end-to-end
    ``repro check --explore`` throughput (fork path plus full
    verification) — the number the ISSUE's 1.5x acceptance bar
    compares against the committed ``BENCH_check.json`` baseline.
    """
    from repro.check import (
        RandomWalkPolicy,
        canonical_scenario,
        explore,
        finish_schedule,
        prepare_schedule,
        snapshot_schedule,
        run_schedule,
    )
    from repro.experiments.trial import (
        finish_fault_trial,
        prepare_fault_trial,
        run_fault_trial,
    )
    from repro.journal.io import events_to_jsonl
    from repro.replication import ReplicationStyle
    from repro.sim import SimSnapshot

    n_walks = 8 if quick else 24
    n_trials = 4 if quick else 10
    scenario = canonical_scenario()

    # Micro-costs: what a prefix costs fresh vs captured vs forked.
    prepared, prepare_wall = _timed(lambda: prepare_schedule(scenario))
    snap, capture_wall = _timed(lambda: SimSnapshot.capture(
        prepared, sim=prepared.testbed.sim))
    _, fork_wall = _timed(snap.fork)

    def walk(i: int) -> RandomWalkPolicy:
        return RandomWalkPolicy(seed=i, tie_choices=4,
                                delay_bound_us=150.0)

    def fresh_explore() -> Tuple[int, List[str]]:
        events, digests = 0, []
        for i in range(n_walks):
            outcome = run_schedule(scenario, walk(i))
            events += outcome.events_dispatched
            digests.append(outcome.digest)
        return events, digests

    def fork_explore() -> Tuple[int, List[str]]:
        events, digests = 0, []
        for i in range(n_walks):
            outcome = finish_schedule(snap.fork(), walk(i))
            events += outcome.events_dispatched
            digests.append(outcome.digest)
        return events, digests

    (fresh_events, fresh_digests), fresh_wall = _timed(fresh_explore)
    (fork_events, fork_digests), forked_wall = _timed(fork_explore)
    if fork_digests != fresh_digests:
        raise AssertionError(
            "forked schedules must be byte-identical to fresh runs")

    # End-to-end explorer throughput (fork path + verification).
    explored, explore_wall = _timed(lambda: explore(
        scenario, budget=n_walks, stop_on_violation=False))
    if not explored.ok:
        raise AssertionError("bench scenario must verify clean")

    # Campaign shape: one configuration, cycled fault variations.
    def crash_at(fraction: float):
        def inject(ctx) -> None:
            ctx.injector.crash_process_at(
                ctx.replicas[0].process,
                ctx.t0 + fraction * ctx.duration_us)
        return inject

    variations = [None] + [crash_at(0.2 + 0.6 * i / max(n_trials - 1, 1))
                           for i in range(n_trials - 1)]
    style = ReplicationStyle.WARM_PASSIVE
    duration_us = 250_000.0

    def fresh_campaign() -> List[str]:
        journals = []
        for inject in variations:
            result = run_fault_trial(
                style, n_replicas=3, n_clients=2,
                duration_us=duration_us, rate_per_s=150.0, seed=1,
                inject=inject, journal=True)
            journals.append(events_to_jsonl(result.journal_events))
        return journals

    def fork_campaign() -> List[str]:
        prepared_trial = prepare_fault_trial(
            style, n_replicas=3, n_clients=2, seed=1, journal=True)
        trial_snap = SimSnapshot.capture(
            prepared_trial, sim=prepared_trial.testbed.sim)
        journals = []
        for inject in variations:
            result = finish_fault_trial(
                trial_snap.fork(), duration_us=duration_us,
                rate_per_s=150.0, inject=inject)
            journals.append(events_to_jsonl(result.journal_events))
        return journals

    fresh_journals, fresh_campaign_wall = _timed(fresh_campaign)
    fork_journals, fork_campaign_wall = _timed(fork_campaign)
    if fork_journals != fresh_journals:
        raise AssertionError(
            "forked trials must journal byte-identically to fresh runs")

    metrics = {
        "events_per_sec": fork_events / max(forked_wall, 1e-9),
        "explore_schedules_per_sec": n_walks / max(explore_wall, 1e-9),
        "fresh_schedules_per_sec": n_walks / max(fresh_wall, 1e-9),
        "fork_schedules_per_sec": n_walks / max(forked_wall, 1e-9),
        "explore_speedup_x": fresh_wall / max(forked_wall, 1e-9),
        "trials_per_sec": len(variations) / max(fork_campaign_wall, 1e-9),
        "fresh_trials_per_sec": (len(variations)
                                 / max(fresh_campaign_wall, 1e-9)),
        "campaign_speedup_x": (fresh_campaign_wall
                               / max(fork_campaign_wall, 1e-9)),
        "prepare_ms": prepare_wall * 1e3,
        "capture_ms": capture_wall * 1e3,
        "fork_ms": fork_wall * 1e3,
        "wall_s": (fresh_wall + forked_wall + explore_wall
                   + fresh_campaign_wall + fork_campaign_wall),
        "peak_rss_kb": _peak_rss_kb(),
    }
    return BenchReport(
        profile="snapshot", quick=quick,
        parameters={"n_walks": n_walks, "n_trials": len(variations),
                    "tie_choices": 4, "delay_bound_us": 150.0,
                    "duration_us": duration_us},
        metrics=metrics)


_PROFILES: Dict[str, Callable[[bool], BenchReport]] = {
    "kernel_events": _kernel_events,
    "rtt": _rtt,
    "campaign": _campaign,
    "check": _check,
    "cluster": _cluster,
    "slo": _slo,
    "partition": _partition,
    "snapshot": _snapshot,
}

#: Names of the fixed suite, in run order.
PROFILE_NAMES: Tuple[str, ...] = tuple(_PROFILES)


def profile_summaries() -> Dict[str, str]:
    """Map each profile name to the first line of its docstring."""
    return {name: (fn.__doc__ or "").strip().splitlines()[0]
            for name, fn in _PROFILES.items()}


def run_profile(name: str, quick: bool = False) -> BenchReport:
    """Run one profile by name; raises ``KeyError`` on unknown names."""
    return _PROFILES[name](quick)


def run_suite(names: Tuple[str, ...] = PROFILE_NAMES,
              quick: bool = False) -> List[BenchReport]:
    """Run the given profiles in order and return their reports."""
    return [run_profile(name, quick=quick) for name in names]
