"""Performance-benchmark harness (``python -m repro bench``).

A fixed suite of calibrated profiles measuring the hot paths this
repository optimizes: kernel event throughput (against a same-machine
pre-optimization reference kernel), the full-stack round-trip
scenario, and campaign wall clock through the worker pool.  Results
are written as canonical sorted-keys JSON artifacts
(``BENCH_<profile>.json``) that CI diffs against committed baselines.
"""

from repro.bench.artifact import (
    BenchReport,
    artifact_path,
    read_artifact,
    write_artifact,
)
from repro.bench.profiles import (
    PROFILE_NAMES,
    profile_summaries,
    run_profile,
    run_suite,
)
from repro.bench.reference import ReferenceSimulator

__all__ = [
    "BenchReport",
    "PROFILE_NAMES",
    "ReferenceSimulator",
    "artifact_path",
    "profile_summaries",
    "read_artifact",
    "run_profile",
    "run_suite",
    "write_artifact",
]
