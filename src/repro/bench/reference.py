"""Reference (pre-fast-path) kernel used as the benchmark baseline.

:class:`ReferenceSimulator` restores the naive kernel semantics this
repository shipped before the hot-path work: every internal schedule
goes through full validation, the run loop pays a ``step()`` call per
event, cancelled handles stay in the heap until their scheduled time
(no compaction), and ``pending_events`` is an O(n) heap scan.

Two uses:

- the ``kernel_events`` bench profile runs the same workload on both
  kernels on the same machine, so the reported speedup is a real
  same-host ratio rather than a number copied from an older commit;
- the determinism regression test swaps it into the testbed and
  asserts byte-identical traces, telemetry and journals — proving the
  fast path is a pure optimization.

Event *ordering* is identical to :class:`repro.sim.Simulator` by
construction: sequence numbers are allocated in the same order and
event times are computed with the same arithmetic, so a seeded run
produces the same trace on either kernel (the regression test pins
this).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.kernel import EventHandle, Simulator

__all__ = ["ReferenceSimulator"]


class ReferenceSimulator(Simulator):
    """Drop-in :class:`Simulator` with the pre-optimization hot path."""

    def schedule_fast(self, delay: float, callback: Callable[..., None],
                      *args: Any) -> EventHandle:
        """Validated scheduling, exactly what internal callers used
        before the fast path existed."""
        return self.schedule(delay, callback, *args)

    def schedule_at_fast(self, time: float, callback: Callable[..., None],
                         *args: Any) -> EventHandle:
        """Validated absolute-time scheduling (see
        :meth:`schedule_fast`)."""
        return self.schedule_at(time, callback, *args)

    def _note_cancelled(self) -> None:
        """Keep the live counter honest but never compact the heap:
        cancelled handles ride along until their scheduled time, as
        they did before compaction existed."""
        self._pending -= 1

    def run(self, until: float = math.inf,
            max_events: Optional[int] = None) -> float:
        """The pre-optimization dispatch loop: peek, then delegate each
        event to :meth:`Simulator.step` (one extra call per event)."""
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        dispatched = 0
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled -= 1
                    continue
                if head.time > until:
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                self.step()
                dispatched += 1
        finally:
            self._running = False
        if until is not math.inf and until > self.now:
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        """O(n) heap scan, as before the live counter."""
        return sum(1 for h in self._heap if not h.cancelled)

    def __repr__(self) -> str:
        return (f"<ReferenceSimulator now={self.now:.1f}us "
                f"pending={self.pending_events} seed={self.seed}>")
