"""Canonical JSON artifacts for bench results.

Every profile run is written as ``BENCH_<profile>.json`` with sorted
keys and a fixed layout, so two runs of the same profile diff cleanly
— the CI smoke job compares a fresh run's throughput against the
committed baseline artifact this module wrote.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["BenchReport", "artifact_path", "read_artifact",
           "write_artifact"]

#: Artifact schema version; bump when the layout changes.
ARTIFACT_VERSION = 1


@dataclass
class BenchReport:
    """Outcome of one bench profile run."""

    profile: str
    quick: bool
    parameters: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, ready for canonical serialization."""
        return {
            "version": ARTIFACT_VERSION,
            "profile": self.profile,
            "quick": self.quick,
            "parameters": dict(self.parameters),
            "metrics": {key: round(float(value), 3)
                        for key, value in self.metrics.items()},
        }


def artifact_path(out_dir: str, profile: str) -> str:
    """Path of the canonical artifact for ``profile`` in ``out_dir``."""
    return os.path.join(out_dir, f"BENCH_{profile}.json")


def write_artifact(report: BenchReport, out_dir: str = ".") -> str:
    """Serialize ``report`` as canonical sorted-keys JSON; returns the
    path written."""
    os.makedirs(out_dir, exist_ok=True)
    path = artifact_path(out_dir, report.profile)
    rendered = json.dumps(report.to_dict(), sort_keys=True, indent=2)
    with open(path, "w") as handle:
        handle.write(rendered + "\n")
    return path


def read_artifact(path: str) -> Dict[str, Any]:
    """Load one artifact back as a dict (raises on malformed JSON)."""
    with open(path) as handle:
        return json.load(handle)
