"""Client-side replicator: routes invocations to the replica group.

Implements the :class:`ClientTransport` seam, so an unmodified
:class:`OrbClient` talks to a replicated service exactly as it would
to a single server (the paper's transparency requirement).

Routing policy
--------------
- **Active style**: requests are multicast AGREED to the group; the
  first reply wins (or, with voting enabled, a majority of identical
  replies — the Byzantine-client option of Section 3.1).  Duplicate
  replies from the other replicas are discarded.
- **Passive styles**: requests go point-to-point to the primary.
- The current style and primary are *learned*, not configured: every
  reply piggybacks them, and the client also watches the group so it
  knows the membership (and the join-order primary) before the first
  reply.
- **Retries** go AGREED to the whole group, which is correct in every
  style and during style switches; server-side duplicate suppression
  makes retries safe.
- **Resilience** (optional, :class:`ResiliencePolicy`): retries back
  off exponentially with deterministic hash-derived jitter, requests
  carry propagated deadlines, and a per-endpoint circuit breaker stops
  first attempts from chasing a primary that has stopped answering
  (e.g. one wedged in a minority partition) — they fall back to the
  group multicast the reachable majority serves.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReplicationError
from repro.gcs.client import GcsClient
from repro.gcs.messages import Grade, GroupView, MemberId
from repro.orb.accounting import COMPONENT_GCS, COMPONENT_REPLICATOR
from repro.orb.giop import GiopReply, GiopRequest
from repro.orb.transport import ClientTransport, ReplyHandler
from repro.replication.messages import RepReply, RepRequest
from repro.replication.styles import (
    ClientReplicationConfig,
    ReplicationStyle,
)
from repro.sim.actor import Actor
from repro.sim.config import InterposeCalibration
from repro.telemetry.context import context_of, set_context
from repro.telemetry.metrics import DEFAULT_LATENCY_BUCKETS_US


class _Outstanding:
    """Book-keeping for one not-yet-answered invocation."""

    __slots__ = ("rep", "on_reply", "attempts", "votes", "failed",
                 "last_target")

    def __init__(self, rep: RepRequest, on_reply: ReplyHandler):
        self.rep = rep
        self.on_reply = on_reply
        self.attempts = 0
        self.votes: List[RepReply] = []
        self.failed = False
        #: Endpoint of the last point-to-point attempt (circuit-breaker
        #: attribution); None when the attempt went to the group.
        self.last_target: Optional[MemberId] = None


class _Breaker:
    """Per-endpoint circuit breaker state."""

    __slots__ = ("consecutive_timeouts", "open_until_us")

    def __init__(self) -> None:
        self.consecutive_timeouts = 0
        self.open_until_us = 0.0


class ClientReplicator(Actor, ClientTransport):
    """Replication middleware under one client's ORB."""

    def __init__(self, gcs: GcsClient, config: ClientReplicationConfig,
                 interpose_cal: Optional[InterposeCalibration] = None,
                 on_failure: Optional[Callable[[GiopRequest], None]] = None):
        super().__init__(gcs.process, name=f"repl:{gcs.process.name}")
        self.gcs = gcs
        self.config = config
        self.ical = interpose_cal or InterposeCalibration()
        self.group = config.group
        # Shard attribution (set by the shard router in sharded
        # deployments): journal events and the round-trip latency
        # histogram carry the shard name when set.
        self.shard: Optional[str] = None
        self.style: ReplicationStyle = config.expected_style
        self.primary: Optional[MemberId] = None
        self.broadcast = False
        self.members: tuple = ()
        self.on_failure = on_failure
        self._outstanding: Dict[str, _Outstanding] = {}
        # Per-endpoint circuit breakers (only populated when a
        # ResiliencePolicy is configured).
        self._breakers: Dict[MemberId, _Breaker] = {}
        self.requests_sent = 0
        self.retries = 0
        self.replies_received = 0
        self.duplicate_replies = 0
        self.failures = 0
        self.deadline_giveups = 0
        self.breaker_trips = 0
        self.breaker_rerouted = 0
        gcs.on_direct(self._on_direct)
        gcs.watch(self.group, _WatchShim(self))

    # ==================================================================
    # ClientTransport interface (called by OrbClient)
    # ==================================================================
    def send_request(self, request: GiopRequest,
                     on_reply: ReplyHandler) -> None:
        """ClientTransport hook: route one invocation to the group."""
        if not self.alive:
            raise ReplicationError(f"{self.process.name} is dead")
        policy = self.config.resilience
        deadline = None
        if policy is not None and policy.deadline_us is not None:
            deadline = self.sim.now + policy.deadline_us
        rep = RepRequest(request=request, client=self.gcs.member,
                         deadline_us=deadline)
        entry = _Outstanding(rep, on_reply)
        if not request.oneway:
            self._outstanding[request.request_id] = entry
        request.timeline.add(COMPONENT_REPLICATOR, self.ical.redirect_us)
        telemetry = self.sim.telemetry
        redirect_span = None
        if telemetry.enabled:
            ctx = context_of(request)
            if ctx is not None:
                redirect_span = telemetry.begin(
                    ctx, "client.redirect", COMPONENT_REPLICATOR,
                    host=self.process.host.name,
                    process=self.process.name, now=self.sim.now)

        def dispatch() -> None:
            if telemetry.enabled:
                telemetry.end(redirect_span, self.sim.now)
            if not self.alive:
                return
            self._transmit(entry, first_attempt=True)

        self.process.host.cpu.execute(self.ical.redirect_us, dispatch)

    def close(self) -> None:
        """Drop all outstanding invocations."""
        self._outstanding.clear()

    def recall(self, predicate: Callable[[GiopRequest], bool]
               ) -> List[Tuple[GiopRequest, ReplyHandler]]:
        """Withdraw outstanding invocations matching ``predicate``.

        Pops each matching entry and cancels its retry timer, so this
        replicator stops re-sending it; the caller (the shard router,
        after a partition-map flip) re-issues the invocation through
        the group that now owns its key.  A reply already in flight
        from the old group arrives as a harmless duplicate.
        """
        recalled: List[Tuple[GiopRequest, ReplyHandler]] = []
        for request_id in [rid for rid, entry in self._outstanding.items()
                           if predicate(entry.rep.request)]:
            entry = self._outstanding.pop(request_id)
            self.cancel_timer(f"retry:{request_id}")
            recalled.append((entry.rep.request, entry.on_reply))
        return recalled

    # ==================================================================
    # Transmission and retry
    # ==================================================================
    def _transmit(self, entry: _Outstanding, first_attempt: bool) -> None:
        entry.attempts += 1
        request = entry.rep.request
        request.timeline.mark_handoff(self.sim.now)
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            ctx = context_of(request)
            if ctx is not None:
                # A retry opens a fresh transit span; the copy that
                # reaches a replica first closes the one it carried,
                # any earlier (lost) attempt's span stays open.
                _, carried = telemetry.begin_transit(
                    ctx.at_root(), "gcs.request", COMPONENT_GCS,
                    self.sim.now, host=self.process.host.name,
                    process=self.process.name,
                    attempt=str(entry.attempts))
                if carried is not None:
                    set_context(request, carried)
        target = self._routing_target() if first_attempt else None
        entry.last_target = target
        if target is not None:
            self.gcs.send_direct(target, entry.rep, entry.rep.wire_bytes)
        else:
            # Active style, unknown primary, or a retry: the safe path
            # is an AGREED multicast to the whole group.
            self.gcs.multicast(self.group, entry.rep, entry.rep.wire_bytes,
                               grade=Grade.AGREED)
        if first_attempt:
            self.requests_sent += 1
        else:
            self.retries += 1
        if not request.oneway:
            self.set_timer(f"retry:{request.request_id}",
                           self._retry_delay_us(request.request_id,
                                                entry.attempts),
                           self._on_timeout, request.request_id)

    def _retry_delay_us(self, request_id: str, attempts: int) -> float:
        """Rearm interval after the ``attempts``-th transmission.

        Legacy (no resilience policy): the fixed configured timeout.
        With a policy: exponential backoff capped at ``backoff_cap_us``
        plus deterministic jitter hashed from (request id, attempt) —
        never the simulation RNG, so the rest of the run is
        byte-identical whether or not this client backs off.
        """
        policy = self.config.resilience
        base = self.config.retry_timeout_us
        if policy is None:
            return base
        delay = min(base * policy.backoff_factor ** (attempts - 1),
                    policy.backoff_cap_us)
        if policy.jitter_frac > 0.0:
            h = zlib.crc32(f"{request_id}:{attempts}".encode()) % 1024
            delay *= 1.0 + policy.jitter_frac * (2.0 * h / 1023.0 - 1.0)
        return delay

    def _routing_target(self) -> Optional[MemberId]:
        """Point-to-point target for the first attempt, or None for
        group multicast."""
        if self.broadcast:
            # Broadcast-mode warm passive: the whole group must see
            # requests so the backups can log them for replay.
            return None
        if self.style.is_passive and self.primary is not None:
            if self._breaker_open(self.primary):
                # The primary stopped answering (crashed, wedged in a
                # minority partition, or unreachable): route around it
                # via the group multicast until its breaker cools off.
                self.breaker_rerouted += 1
                return None
            return self.primary
        return None

    # ------------------------------------------------------------------
    # Circuit breaker (resilience policy only)
    # ------------------------------------------------------------------
    def _breaker_open(self, endpoint: MemberId) -> bool:
        if self.config.resilience is None:
            return False
        breaker = self._breakers.get(endpoint)
        return breaker is not None and self.sim.now < breaker.open_until_us

    def _breaker_timeout(self, endpoint: MemberId) -> None:
        policy = self.config.resilience
        if policy is None:
            return
        breaker = self._breakers.setdefault(endpoint, _Breaker())
        breaker.consecutive_timeouts += 1
        if breaker.consecutive_timeouts < policy.breaker_threshold \
                or self.sim.now < breaker.open_until_us:
            return
        breaker.open_until_us = self.sim.now + policy.breaker_cooldown_us
        self.breaker_trips += 1
        self.trace("repl.client.breaker",
                   f"breaker open for {endpoint} "
                   f"({breaker.consecutive_timeouts} consecutive timeouts)")
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now, self.process.host.name,
                           "replicator", "client.breaker_open",
                           shard=self.shard, process=self.process.name,
                           endpoint=str(endpoint),
                           timeouts=breaker.consecutive_timeouts,
                           until_us=breaker.open_until_us)

    def _breaker_reset(self, endpoint: MemberId) -> None:
        breaker = self._breakers.get(endpoint)
        if breaker is not None:
            breaker.consecutive_timeouts = 0
            breaker.open_until_us = 0.0

    def _on_timeout(self, request_id: str) -> None:
        entry = self._outstanding.get(request_id)
        if entry is None or entry.failed:
            return
        if entry.last_target is not None:
            self._breaker_timeout(entry.last_target)
        policy = self.config.resilience
        expired = (policy is not None
                   and entry.rep.deadline_us is not None
                   and self.sim.now >= entry.rep.deadline_us)
        if expired or entry.attempts > self.config.max_retries:
            entry.failed = True
            self._outstanding.pop(request_id, None)
            self.failures += 1
            if expired:
                self.deadline_giveups += 1
            reason = "deadline" if expired else "retries"
            self.trace("repl.client.failure",
                       f"giving up on {request_id} after "
                       f"{entry.attempts} attempts ({reason})")
            journal = self.sim.journal
            if journal.enabled:
                # The ``reason`` attribute only appears on the deadline
                # path, which only exists under a resilience policy —
                # legacy journals stay byte-identical.
                extra = {"reason": "deadline"} if expired else {}
                journal.record(self.sim.now, self.process.host.name,
                               "replicator", "client.giveup",
                               shard=self.shard,
                               process=self.process.name,
                               request_id=request_id,
                               attempts=entry.attempts, **extra)
            if self.on_failure is not None:
                self.on_failure(entry.rep.request)
            return
        self._transmit(entry, first_attempt=False)

    # ==================================================================
    # Replies
    # ==================================================================
    def _on_direct(self, sender: MemberId, payload: Any,
                   nbytes: int) -> None:
        if not isinstance(payload, RepReply):
            return
        self._learn(payload)
        if self.config.resilience is not None:
            # Any answer closes the replica's breaker.
            self._breaker_reset(payload.replica)
        request_id = payload.reply.request_id
        entry = self._outstanding.get(request_id)
        if entry is None:
            self.duplicate_replies += 1
            return
        if self.config.voting:
            self._vote(entry, payload)
        else:
            self._accept(entry, payload)

    def _learn(self, reply: RepReply) -> None:
        """Track the group's current configuration from piggybacks."""
        self.style = reply.style
        self.broadcast = reply.broadcast
        if reply.primary is not None:
            self.primary = reply.primary

    def _vote(self, entry: _Outstanding, rep_reply: RepReply) -> None:
        """Majority voting over reply payloads (Byzantine option)."""
        if any(v.replica == rep_reply.replica for v in entry.votes):
            return  # one vote per replica
        entry.votes.append(rep_reply)
        electorate = max(len(self.members), 1)
        needed = electorate // 2 + 1
        tallies: Dict[Any, int] = {}
        for vote in entry.votes:
            key = repr(vote.reply.payload)
            tallies[key] = tallies.get(key, 0) + 1
            if tallies[key] >= needed:
                self._accept(entry, vote)
                return

    def _accept(self, entry: _Outstanding, rep_reply: RepReply) -> None:
        request_id = rep_reply.reply.request_id
        self._outstanding.pop(request_id, None)
        self.cancel_timer(f"retry:{request_id}")
        self.replies_received += 1
        reply = rep_reply.reply
        reply.timeline.absorb_transit(COMPONENT_GCS, self.sim.now)
        reply.timeline.add(COMPONENT_REPLICATOR, self.ical.redirect_us)
        telemetry = self.sim.telemetry
        accept_span = None
        if telemetry.enabled:
            ctx = context_of(reply)
            if ctx is not None:
                telemetry.finish_inflight(ctx, self.sim.now)
                ctx = ctx.at_root()
                set_context(reply, ctx)
                accept_span = telemetry.begin(
                    ctx, "client.accept", COMPONENT_REPLICATOR,
                    host=self.process.host.name,
                    process=self.process.name, now=self.sim.now)
            latency_hist = self._latency_hist()
            if latency_hist is not None \
                    and reply.timeline.started_at is not None:
                latency_hist.observe(self.sim.now
                                     - reply.timeline.started_at)

        def deliver() -> None:
            if telemetry.enabled:
                telemetry.end(accept_span, self.sim.now)
            if self.alive:
                entry.on_reply(reply)

        self.process.host.cpu.execute(self.ical.redirect_us, deliver)

    def _latency_hist(self):
        """Round-trip latency histogram in the telemetry registry, or
        None when telemetry is off."""
        registry = getattr(self.sim.telemetry, "metrics", None)
        if registry is None:
            return None
        labels = {"host": self.process.host.name,
                  "process": self.process.name}
        if self.shard is not None:
            labels["shard"] = self.shard
        return registry.histogram(
            "request_latency_us", bounds=DEFAULT_LATENCY_BUCKETS_US,
            **labels)

    # ==================================================================
    # Group view tracking
    # ==================================================================
    def _on_view(self, view: GroupView) -> None:
        self.members = view.members
        if view.members:
            if self.primary not in view.members:
                self.primary = view.members[0]
        else:
            self.primary = None

    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)

    def on_stop(self) -> None:
        """Drop outstanding invocations when the process dies."""
        self._outstanding.clear()


class _WatchShim:
    """Group-view watcher feeding the client replicator."""

    def __init__(self, replicator: ClientReplicator):
        self._replicator = replicator

    def on_message(self, group: str, sender: MemberId, payload: Any,
                   nbytes: int) -> None:
        """Watchers receive no data."""

    def on_view(self, view: GroupView, joined, left, crashed) -> None:
        self._replicator._on_view(view)
