"""Server-side replicator: the middle layer of the paper's replicator
stack.

One :class:`ServerReplicator` runs under each server replica's ORB
(it implements the :class:`ServerTransport` seam, so the server
application and ORB are replication-unaware).  It joins the replica
group, delivers totally-ordered requests to the local ORB, manages
checkpoints, elects primaries, transfers state to joining replicas,
and runs the Fig. 5 runtime style-switch protocol.

Roles by style
--------------
- **Active**: every replica processes every (AGREED-ordered) request
  and replies directly to the client; the client keeps the first
  response (or votes).
- **Warm passive**: the longest-standing member is the primary; it
  alone processes requests and multicasts a checkpoint every
  ``checkpoint_interval_requests`` requests.  With ``sync_checkpoints``
  the primary quiesces until its own checkpoint is delivered back on
  the total order — the quiescence cost the paper identifies as the
  price of passive replication.
- **Cold passive**: like warm passive, but checkpoints go to stable
  storage and no live backups exist; a :class:`ReplicaFactory`
  launches a replacement on failure.
- **Hybrid**: the first ``active_head`` members behave actively; the
  remainder are warm backups of the head's oldest member (the
  Bakken-style extension the paper's related work sketches).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import AdaptationError, ReplicationError
from repro.gcs.client import GcsClient
from repro.gcs.messages import Grade, GroupView, MemberId
from repro.orb.accounting import COMPONENT_GCS, COMPONENT_REPLICATOR
from repro.orb.giop import GiopReply, GiopRequest
from repro.orb.transport import ReplyHandler, RequestHandler, ServerTransport, ServiceAddress
from repro.replication.messages import (
    Checkpoint,
    Fence,
    RepReply,
    RepRequest,
    SwitchCommand,
    SyncRequest,
)
from repro.replication.store import StableStore
from repro.replication.styles import ReplicationConfig, ReplicationStyle
from repro.replication.switch import SwitchPhase, SwitchRecord, SwitchState
from repro.sim.actor import Actor
from repro.sim.config import InterposeCalibration, ReplicationCalibration
from repro.telemetry.context import context_of, set_context
from repro.telemetry.metrics import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_US,
)

#: Reply-cache bound (duplicate suppression window).
SEEN_CACHE_LIMIT = 8192

#: Joiner state-transfer request retry period.
SYNC_RETRY_US = 120_000.0


class ServerReplicator(Actor, ServerTransport):
    """Replication middleware for one server replica."""

    def __init__(self, gcs: GcsClient, config: ReplicationConfig,
                 replication_cal: Optional[ReplicationCalibration] = None,
                 interpose_cal: Optional[InterposeCalibration] = None,
                 store: Optional[StableStore] = None,
                 sync_checkpoints: bool = True):
        super().__init__(gcs.process,
                         name=f"repl:{gcs.process.name}")
        self.gcs = gcs
        self.config = config
        self.rcal = replication_cal or ReplicationCalibration()
        self.ical = interpose_cal or InterposeCalibration()
        self.store = store
        self.sync_checkpoints = sync_checkpoints
        if config.style is ReplicationStyle.COLD_PASSIVE and store is None:
            raise ReplicationError("cold passive replication needs a store")

        self.member = gcs.member
        self.group = config.group
        self.style = config.style
        self.view: Optional[GroupView] = None

        self._on_request: Optional[RequestHandler] = None
        self._state_provider: Optional[Any] = None
        self._started = False

        # Duplicate suppression + reply cache: req_id -> reply (None
        # while the request is still in flight).
        self._seen: "OrderedDict[str, Optional[RepReply]]" = OrderedDict()
        # Requests logged since the last checkpoint (broadcast mode).
        self._request_log: List[RepRequest] = []
        self._since_ckpt = 0
        self._ckpt_ids = 0
        # Pause/queue machinery (switches, sync fences, quiescence).
        self._paused = 0
        self._queue: List[RepRequest] = []
        self._inflight = 0
        self._drain_waiters: List[Callable[[], None]] = []
        # Passive primaries with synchronous checkpoints hold replies
        # until the covering checkpoint is stable, so a reply implies
        # the state it reflects survives the primary's crash.
        self._held_replies: List[Tuple[MemberId, RepReply]] = []
        # Switch protocol.
        self._switch: Optional[SwitchState] = None
        self._switches_seen: set = set()
        self.switch_history: List[SwitchRecord] = []
        # Joiner state transfer.
        self._synced = False
        # Cluster seams (installed by repro.cluster's ShardAdmin; both
        # stay None in non-sharded deployments, costing one comparison).
        # fence_handler(fence) runs at the fence's total-order position
        # with intake already paused; owned_filter(key) -> False drops
        # requests for keys this shard no longer owns.
        self.fence_handler: Optional[Callable[[Fence], None]] = None
        self.owned_filter: Optional[Callable[[str], bool]] = None
        # Shard attribution (set by repro.cluster's deploy): journal
        # events and metric labels carry the shard name when set.
        self.shard: Optional[str] = None
        # Arrival-rate sensor (feeds the adaptation layer, Fig. 6).
        from repro.monitoring.sensors import RateSensor
        self.arrivals = RateSensor(window_us=500_000.0)
        # Statistics.
        self.requests_processed = 0
        self.replies_sent = 0
        self.duplicates_suppressed = 0
        self.checkpoints_sent = 0
        self.checkpoints_applied = 0
        self.relays = 0

    # ==================================================================
    # Telemetry metrics (registry-backed; all no-ops when disabled)
    # ==================================================================
    def _registry(self):
        """Telemetry metrics registry, or None when telemetry is off."""
        return getattr(self.sim.telemetry, "metrics", None)

    def _labels(self) -> Dict[str, str]:
        labels = {"host": self.process.host.name,
                  "process": self.process.name}
        if self.shard is not None:
            labels["shard"] = self.shard
        return labels

    def _count(self, name: str, amount: int = 1) -> None:
        registry = self._registry()
        if registry is not None:
            registry.counter(name, **self._labels()).inc(amount)

    def _observe(self, name: str, value: float, bounds) -> None:
        registry = self._registry()
        if registry is not None:
            registry.histogram(name, bounds=bounds,
                               **self._labels()).observe(value)

    def _note_queue(self) -> None:
        registry = self._registry()
        if registry is not None:
            registry.gauge("replicator_queue_depth",
                           **self._labels()).set(len(self._queue))

    def _journal(self, kind: str, trace_id=None, **attrs) -> None:
        """Record a dependability event (no-op when the journal is off)."""
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now, self.process.host.name,
                           "replicator", kind, trace_id=trace_id,
                           shard=self.shard,
                           process=self.process.name, **attrs)

    # ==================================================================
    # ServerTransport interface (called by OrbServer)
    # ==================================================================
    def start(self, on_request: RequestHandler) -> ServiceAddress:
        """ServerTransport hook: join the group and begin serving."""
        if self._started:
            raise ReplicationError("replicator already started")
        self._on_request = on_request
        self._started = True
        self.gcs.on_direct(self._on_direct)
        self.gcs.join(self.group, _ListenerShim(self))
        self.set_periodic_timer("sync", SYNC_RETRY_US, self._sync_tick)
        return ServiceAddress.replicated(self.group)

    def stop(self) -> None:
        """Leave the replica group."""
        if self._started and self.alive:
            self.gcs.leave(self.group)
            self._started = False

    def bind_state_provider(self, provider: Any) -> None:
        """Attach the object exposing ``capture_state``/``restore_state``
        (normally the :class:`OrbServer`)."""
        self._state_provider = provider

    # ==================================================================
    # Role computation
    # ==================================================================
    @property
    def primary(self) -> Optional[MemberId]:
        """Deterministic primary: the longest-standing group member
        (for hybrid: the longest-standing member of the active head)."""
        if self.view is None or not self.view.members:
            return None
        return self.view.members[0]

    @property
    def is_primary(self) -> bool:
        return self.primary == self.member

    @property
    def processes_requests(self) -> bool:
        """Does this replica execute application requests right now?"""
        if self.style.executes_everywhere:
            return True
        if self.style is ReplicationStyle.HYBRID:
            return self._hybrid_rank() < self.config.active_head
        return self.is_primary

    @property
    def transmits_replies(self) -> bool:
        """Semi-active (Delta-4 XPA leader-follower): every replica
        executes, but only the leader transmits output responses."""
        if self.style is ReplicationStyle.SEMI_ACTIVE:
            return self.is_primary
        return True

    def _hybrid_rank(self) -> int:
        if self.view is None:
            return 0
        try:
            return self.view.members.index(self.member)
        except ValueError:
            return 0

    @property
    def switching(self) -> bool:
        return self._switch is not None

    # ==================================================================
    # Group delivery
    # ==================================================================
    def _on_group_message(self, sender: MemberId, payload: Any) -> None:
        if isinstance(payload, RepRequest):
            self._receive_request(payload, via_group=True)
        elif isinstance(payload, Checkpoint):
            self._receive_checkpoint(payload)
        elif isinstance(payload, SwitchCommand):
            self._on_switch_command(payload)
        elif isinstance(payload, Fence):
            self._on_fence(payload)

    def _on_direct(self, sender: MemberId, payload: Any,
                   nbytes: int) -> None:
        if isinstance(payload, RepRequest):
            self._receive_request(payload, via_group=False)
        elif isinstance(payload, SyncRequest):
            self._on_sync_request(payload)

    # ==================================================================
    # Request path
    # ==================================================================
    def _receive_request(self, rep: RepRequest, via_group: bool) -> None:
        if not self.alive or not self._started:
            return
        self.arrivals.record_arrival(self.sim.now)
        if self._switch is not None or self._paused or not self._synced:
            if via_group:
                self._queue.append(rep)
                self._note_queue()
            else:
                # Point-to-point requests arriving mid-switch are
                # re-multicast so every (soon-to-be-active) replica
                # sees them at the same place in the total order.
                self._republish(rep)
            return
        if not via_group and not self.style.is_passive:
            # A point-to-point request reached an active replica (the
            # client has stale style knowledge, e.g. right after a
            # passive-to-active switch).  Republish on the total order
            # so every replica executes it — processing it alone would
            # diverge the state machines.
            self._republish(rep)
            return
        if not self.processes_requests:
            if via_group:
                if self.config.broadcast_requests:
                    self._request_log.append(rep)
                return
            # Misdirected point-to-point request (stale primary info at
            # the client): relay once to the current primary.
            if not rep.relayed and self.primary is not None \
                    and self.primary != self.member:
                self.relays += 1
                relay = RepRequest(request=rep.request, client=rep.client,
                                   relayed=True, deadline_us=rep.deadline_us)
                self.gcs.send_direct(self.primary, relay, relay.wire_bytes)
            return
        self._process(rep)

    def _republish(self, rep: RepRequest) -> None:
        again = RepRequest(request=rep.request, client=rep.client,
                           relayed=True, deadline_us=rep.deadline_us)
        self.gcs.multicast(self.group, again, again.wire_bytes,
                           grade=Grade.AGREED)

    def _process(self, rep: RepRequest) -> None:
        request = rep.request
        req_id = request.request_id
        if rep.deadline_us is not None and self.sim.now > rep.deadline_us:
            # The propagated deadline passed in flight: the client has
            # given up, so executing (or even resending a cached reply)
            # is wasted work — shed it.
            self._count("replicator_expired_total")
            return
        if self.owned_filter is not None \
                and not self.owned_filter(request.object_key):
            # A request for a key this shard no longer owns (it raced
            # a migration commit).  Stay silent: the client's retry
            # goes through the router's fresh map to the new owner,
            # whose transferred seen-cache keeps it at-most-once.
            self._count("replicator_disowned_total")
            return
        if req_id in self._seen:
            cached = self._seen[req_id]
            if cached is not None:
                # At-most-once semantics: resend the cached reply.
                self.duplicates_suppressed += 1
                self._count("replicator_duplicates_total")
                self.gcs.send_direct(rep.client, cached, cached.wire_bytes)
            return
        self._remember(req_id, None)
        tracked = not request.oneway
        if tracked:
            self._inflight += 1

        local = request.fork()
        local.timeline.absorb_transit(COMPONENT_GCS, self.sim.now)
        overhead = (self.ical.redirect_us + self.rcal.duplicate_check_us
                    + self.rcal.logging_us)
        local.timeline.add(COMPONENT_REPLICATOR, overhead)
        telemetry = self.sim.telemetry
        process_span = None
        ctx = None
        service_start = self.sim.now
        if telemetry.enabled:
            ctx = context_of(local)
            if ctx is not None:
                telemetry.finish_inflight(ctx, self.sim.now)
                ctx = ctx.at_root()
                set_context(local, ctx)
                process_span = telemetry.begin(
                    ctx, "server.process", COMPONENT_REPLICATOR,
                    host=self.process.host.name,
                    process=self.process.name, now=self.sim.now,
                    style=self.style.value)

        def hand_to_orb() -> None:
            if not self.alive:
                return
            if telemetry.enabled:
                telemetry.end(process_span, self.sim.now)
            assert self._on_request is not None
            self._on_request(local, lambda reply: finish(reply))

        def finish(reply: GiopReply) -> None:
            if not self.alive:
                return
            if tracked:
                self._inflight -= 1
            self.requests_processed += 1
            self._count("replicator_requests_total")
            rep_reply = RepReply(reply=reply, replica=self.member,
                                 style=self.style, primary=self.primary,
                                 broadcast=self.config.broadcast_requests)
            self._remember(req_id, rep_reply)
            reply.timeline.add(COMPONENT_REPLICATOR, self.ical.redirect_us)
            reply_ctx = context_of(reply) if telemetry.enabled else None
            if reply_ctx is not None:
                # The redirect cost above is charged without elapsing
                # simulated time (it overlaps the reply transit), so
                # the matching span is emitted pre-closed rather than
                # measured.
                telemetry.emit(
                    reply_ctx, "server.redirect", COMPONENT_REPLICATOR,
                    self.sim.now, self.sim.now + self.ical.redirect_us,
                    host=self.process.host.name,
                    process=self.process.name, style=self.style.value)
            if telemetry.enabled:
                self._observe("replica_service_us",
                              self.sim.now - service_start,
                              DEFAULT_LATENCY_BUCKETS_US)
            if not self.transmits_replies:
                # Semi-active follower: execute for state consistency
                # and fast failover, but suppress the output (it is
                # cached for duplicate-triggered resends).
                pass
            elif self._must_hold_reply():
                # The covering checkpoint goes out first; the reply is
                # released when that checkpoint is stable.
                self._held_replies.append((rep.client, rep_reply))
            else:
                reply.timeline.mark_handoff(self.sim.now)
                if reply_ctx is not None:
                    _, carried = telemetry.begin_transit(
                        reply_ctx.at_root(), "gcs.reply", COMPONENT_GCS,
                        self.sim.now, host=self.process.host.name,
                        process=self.process.name)
                    if carried is not None:
                        set_context(reply, carried)
                self.gcs.send_direct(rep.client, rep_reply,
                                     rep_reply.wire_bytes)
                self.replies_sent += 1
                self._count("replicator_replies_total")
            self._after_request()
            if tracked and self._inflight == 0:
                self._fire_drain_waiters()

        self.process.host.cpu.execute(overhead, hand_to_orb)

    def _remember(self, req_id: str, reply: Optional[RepReply]) -> None:
        self._seen[req_id] = reply
        self._seen.move_to_end(req_id)
        while len(self._seen) > SEEN_CACHE_LIMIT:
            self._seen.popitem(last=False)

    def _must_hold_reply(self) -> bool:
        """True when the reply must wait for checkpoint stability:
        synchronous-checkpoint passive primary whose next checkpoint
        is due now (it will cover this request's state change)."""
        if not self.sync_checkpoints:
            return False
        if not self.style.is_passive:
            return False
        if not self.is_primary or not self.processes_requests:
            return False
        return (self._since_ckpt + 1
                >= self.config.checkpoint_interval_requests)

    def _release_held_replies(self) -> None:
        held, self._held_replies = self._held_replies, []
        telemetry = self.sim.telemetry
        for client, rep_reply in held:
            reply = rep_reply.reply
            reply.timeline.mark_handoff(self.sim.now)
            if telemetry.enabled:
                ctx = context_of(reply)
                if ctx is not None:
                    _, carried = telemetry.begin_transit(
                        ctx.at_root(), "gcs.reply", COMPONENT_GCS,
                        self.sim.now, host=self.process.host.name,
                        process=self.process.name, held="1")
                    if carried is not None:
                        set_context(reply, carried)
            self.gcs.send_direct(client, rep_reply, rep_reply.wire_bytes)
            self.replies_sent += 1
            self._count("replicator_replies_total")

    def _after_request(self) -> None:
        """Post-processing hook: periodic checkpointing for the styles
        that need it."""
        if self.style.executes_everywhere:
            if self._held_replies:
                self._release_held_replies()
            return
        if not self.processes_requests or not self.is_primary:
            return
        self._since_ckpt += 1
        if self._since_ckpt >= self.config.checkpoint_interval_requests:
            self._checkpoint()
        elif self._held_replies:
            self._release_held_replies()

    # ==================================================================
    # Checkpointing and state transfer
    # ==================================================================
    def _capture(self) -> Tuple[Any, int]:
        if self._state_provider is None:
            return None, 0
        return self._state_provider.capture_state()

    def _checkpoint(self, final_for: Optional[str] = None,
                    sync_for: Optional[MemberId] = None) -> None:
        """Capture state now; publish after the serialization cost."""
        state, nbytes = self._capture()
        self._since_ckpt = 0
        self._request_log.clear()
        self._ckpt_ids += 1
        # Periodic checkpoints ship incremental state updates; the
        # final (switch) and sync (state-transfer) checkpoints must be
        # complete snapshots.
        if final_for is None and sync_for is None:
            wire_state = int(nbytes * self.config.checkpoint_delta_fraction)
        else:
            wire_state = nbytes
        # Ship the completed reply cache with the snapshot: any request
        # whose effect is in this state must be suppressed (and its
        # cached reply resent) by whoever restores from it.
        seen = self.completed_seen()
        ckpt = Checkpoint(ckpt_id=self._ckpt_ids, state=state,
                          state_bytes=wire_state, source=self.member,
                          final_for=final_for, sync_for=sync_for,
                          seen=seen)
        if self.sim.telemetry.enabled:
            self._count("replicator_checkpoints_total")
            self._observe("checkpoint_bytes", wire_state,
                          DEFAULT_BYTES_BUCKETS)
        backups = max(0, len(self.view.members) - 1) if self.view else 0
        cost = (self.rcal.checkpoint_fixed_us
                + self.rcal.checkpoint_per_byte_us * nbytes  # full state
                + self.rcal.checkpoint_per_target_us * backups)

        def publish() -> None:
            if not self.alive:
                return
            if (self.style is ReplicationStyle.COLD_PASSIVE
                    and final_for is None and sync_for is None):
                assert self.store is not None
                if self.sync_checkpoints:
                    self._pause()
                    self.store.write(self.group, ckpt.ckpt_id, ckpt.state,
                                     ckpt.state_bytes,
                                     on_done=self._on_checkpoint_stable)
                else:
                    self.store.write(self.group, ckpt.ckpt_id, ckpt.state,
                                     ckpt.state_bytes)
                self.checkpoints_sent += 1
                self._journal("checkpoint.publish", ckpt_id=ckpt.ckpt_id,
                              state_bytes=wire_state, final_for=None,
                              sync_for=None, stable_store=True)
                return
            grade = (Grade.SAFE if self.config.safe_checkpoints
                     else Grade.AGREED)
            self.gcs.multicast(self.group, ckpt, ckpt.wire_bytes,
                               grade=grade)
            self.checkpoints_sent += 1
            self._journal("checkpoint.publish", ckpt_id=ckpt.ckpt_id,
                          state_bytes=wire_state, final_for=final_for,
                          sync_for=str(sync_for) if sync_for else None)
            if self.sync_checkpoints and final_for is None:
                # Quiesce until the checkpoint is delivered back on the
                # total order (the passive-style latency cost).
                self._pause()

        self.process.host.cpu.execute(cost, publish)

    def _receive_checkpoint(self, ckpt: Checkpoint) -> None:
        if ckpt.source == self.member:
            # Self-delivery: the checkpoint is stable in the total
            # order; release held replies and quiescence, or complete
            # the switch it finalizes.
            if self._switch is not None \
                    and ckpt.final_for == self._switch.switch_id:
                self._complete_switch()
            elif self.sync_checkpoints and ckpt.final_for is None:
                self._on_checkpoint_stable()
            return
        apply_cost = (self.rcal.state_apply_fixed_us
                      + self.rcal.state_apply_per_byte_us * ckpt.state_bytes)

        def apply() -> None:
            if not self.alive:
                return
            if self._state_provider is not None and ckpt.state is not None:
                self._state_provider.restore_state(ckpt.state)
            self.checkpoints_applied += 1
            self._journal("checkpoint.apply", ckpt_id=ckpt.ckpt_id,
                          source=str(ckpt.source))
            self._request_log.clear()
            for rid, cached in ckpt.seen:
                self._remember(rid, cached)
            if not self._synced:
                if ckpt.sync_for in (None, self.member):
                    self._mark_synced()
            if self._switch is not None \
                    and ckpt.final_for == self._switch.switch_id:
                self._switch.final_checkpoint_seen = True
                self._complete_switch()

        self.process.host.cpu.execute(apply_cost, apply)

    def _restore_from_store(self) -> None:
        """Cold-passive recovery: load the last persisted checkpoint."""
        assert self.store is not None

        def loaded(snapshot) -> None:
            if not self.alive:
                return
            if snapshot is not None and self._state_provider is not None:
                apply_cost = (self.rcal.state_apply_fixed_us
                              + self.rcal.state_apply_per_byte_us
                              * snapshot.state_bytes)
                self.process.host.cpu.execute(
                    apply_cost,
                    self._guarded_restore(snapshot.state))
            else:
                self._mark_synced()

        self.store.read(self.group, loaded)

    def _guarded_restore(self, state: Any) -> Callable[[], None]:
        def run() -> None:
            if not self.alive:
                return
            if self._state_provider is not None:
                self._state_provider.restore_state(state)
            self.trace("repl.recovery",
                       f"{self.member} restored from stable store")
            self._mark_synced()
        return run

    def _on_checkpoint_stable(self) -> None:
        """A synchronous checkpoint reached stability: replies whose
        state it covers may go out, and intake resumes."""
        if not self.alive:
            return
        self._release_held_replies()
        self._resume()

    def _mark_synced(self) -> None:
        if self._synced:
            return
        self._synced = True
        self.cancel_timer("sync-retry")
        self.trace("repl.sync", f"{self.member} synced into {self.group}")
        self._journal("state.sync", member=str(self.member),
                      style=self.style.value)
        self._drain_queue()

    def _sync_tick(self) -> None:
        """Joiner-driven state transfer: until synced, periodically ask
        the oldest member for a checkpoint (survives donor crashes)."""
        if self._synced or self.view is None:
            return
        if self.view.members and self.view.members[0] == self.member:
            # Everyone older than us is gone; adopt our own state.
            self._mark_synced()
            return
        donor = self.view.members[0] if self.view.members else None
        if donor is not None:
            req = SyncRequest(joiner=self.member)
            self.gcs.send_direct(donor, req, req.wire_bytes)

    def _on_sync_request(self, request: SyncRequest) -> None:
        if not self._synced or not self.alive:
            return
        if not self.style.is_passive:
            # Fence: quiesce, drain in-flight work, checkpoint at a
            # total-order-consistent point, then resume.
            self._pause()
            self._when_drained(
                lambda: (self._checkpoint(sync_for=request.joiner),
                         self._resume()))
        else:
            if self.is_primary:
                self._checkpoint(sync_for=request.joiner)

    # ==================================================================
    # Cluster fence and seen-cache transfer (repro.cluster seams)
    # ==================================================================
    def _on_fence(self, fence: Fence) -> None:
        """A cluster fence reached its total-order position: pause
        request intake here and hand control to the installed handler.
        A replicator without a handler ignores the fence entirely —
        stray fences in non-sharded groups are harmless."""
        if self.fence_handler is None:
            return
        self._pause()
        self._journal("fence", fence_id=fence.fence_id,
                      initiator=str(fence.initiator))
        self.fence_handler(fence)

    def absorb_seen(self, entries) -> None:
        """Install completed duplicate-suppression entries transferred
        from another group (shard migration): a retry of a request the
        old owner already acknowledged must be suppressed — and its
        cached reply resent — by the new owner too."""
        for rid, cached in entries:
            self._remember(rid, cached)

    def completed_seen(self) -> Tuple[Tuple[str, Any], ...]:
        """Completed (answered) entries of the duplicate-suppression
        cache, in insertion order — what checkpoints and migrations
        ship alongside the state snapshot."""
        return tuple((rid, cached) for rid, cached in self._seen.items()
                     if cached is not None)

    # ==================================================================
    # Pause / drain machinery
    # ==================================================================
    def _pause(self) -> None:
        self._paused += 1

    def _resume(self) -> None:
        if self._paused > 0:
            self._paused -= 1
        if self._paused == 0 and self._switch is None:
            self._drain_queue()

    def _drain_queue(self) -> None:
        while self._queue and not self._paused and self._switch is None \
                and self._synced:
            rep = self._queue.pop(0)
            if self.processes_requests:
                self._process(rep)
            elif self.config.broadcast_requests:
                self._request_log.append(rep)
        self._note_queue()

    def _when_drained(self, action: Callable[[], None]) -> None:
        if self._inflight == 0:
            action()
        else:
            self._drain_waiters.append(action)

    def _fire_drain_waiters(self) -> None:
        waiters, self._drain_waiters = self._drain_waiters, []
        for action in waiters:
            action()

    # ==================================================================
    # Style switching (paper Fig. 5)
    # ==================================================================
    def request_switch(self, target: ReplicationStyle) -> str:
        """Step I: initiate a switch by multicasting the command.

        Any replica may initiate; concurrent initiations of the same
        transition produce the same switch id and are discarded as
        duplicates, exactly as Fig. 5 prescribes.
        """
        if target is self.style and self._switch is None:
            raise AdaptationError(f"already running style {target.value}")
        epoch = len(self._switches_seen)
        switch_id = f"{self.group}:{self.style.short}->{target.short}:{epoch}"
        command = SwitchCommand(switch_id=switch_id, target=target,
                                initiator=self.member)
        self.gcs.multicast(self.group, command, command.wire_bytes,
                           grade=Grade.AGREED)
        return switch_id

    def _on_switch_command(self, command: SwitchCommand) -> None:
        if command.switch_id in self._switches_seen:
            return  # duplicate switch message discarded
        self._switches_seen.add(command.switch_id)
        if command.target is self.style or self._switch is not None:
            return
        if command.target is ReplicationStyle.COLD_PASSIVE \
                and self.store is None:
            self.trace("repl.switch",
                       "refusing switch to cold passive without a store")
            return
        telemetry = self.sim.telemetry
        switch_ctx = None
        if telemetry.enabled:
            # A style switch gets its own trace: the root span covers
            # steps II-III at this replica (Fig. 6's switch delay).
            switch_ctx = telemetry.start_trace(
                f"switch:{command.switch_id}:{self.process.name}",
                name="switch", host=self.process.host.name,
                process=self.process.name, now=self.sim.now,
                from_style=self.style.value,
                to_style=command.target.value)
        self._switch = SwitchState(switch_id=command.switch_id,
                                   from_style=self.style,
                                   target=command.target,
                                   started_at=self.sim.now,
                                   trace_ctx=switch_ctx)
        self.trace("repl.switch",
                   f"step II: preparing {self.style.value} -> "
                   f"{command.target.value}", switch_id=command.switch_id)
        self._journal("switch.prepare",
                      trace_id=(switch_ctx.trace_id
                                if switch_ctx is not None else None),
                      switch_id=command.switch_id,
                      from_style=self.style.value,
                      to_style=command.target.value,
                      initiator=str(command.initiator))
        # Step II: everyone starts enqueueing application messages
        # (handled by the _switch check in _receive_request).
        if self._switch.passive_to_active:
            if self.is_primary:
                # Case 1: primary sends one more checkpoint.
                self._when_drained(
                    lambda: self._checkpoint(
                        final_for=command.switch_id))
            # Backups: wait for that checkpoint (or the primary's
            # crash, handled in _on_view).
        else:
            # Case 2 (and active->cold / passive<->passive): drain
            # in-flight work, then adopt the new roles.
            self._when_drained(self._complete_switch)

    def _complete_switch(self) -> None:
        switch = self._switch
        if switch is None or switch.phase is not SwitchPhase.PREPARING:
            return
        queued = len(self._queue)
        switch.phase = SwitchPhase.COMPLETE
        switch.completed_at = self.sim.now
        if switch.trace_ctx is not None:
            self.sim.telemetry.finish_trace(switch.trace_ctx, self.sim.now)
        self.style = switch.target
        self._switch = None
        self._since_ckpt = 0
        self._release_held_replies()
        self.switch_history.append(SwitchRecord(
            switch_id=switch.switch_id, from_style=switch.from_style,
            to_style=switch.target, started_at=switch.started_at,
            completed_at=self.sim.now, queued_requests=queued))
        self.trace("repl.switch",
                   f"step III: switched to {self.style.value} "
                   f"({queued} queued requests)",
                   switch_id=switch.switch_id, queued=queued)
        self._journal("switch.complete",
                      trace_id=(switch.trace_ctx.trace_id
                                if switch.trace_ctx is not None else None),
                      switch_id=switch.switch_id,
                      from_style=switch.from_style.value,
                      to_style=switch.target.value, queued=queued,
                      duration_us=self.sim.now - switch.started_at)
        # Step III: process the outstanding requests in the message
        # queue under the new style.  Under active->passive the paper
        # has the new backups process outstanding requests *and then*
        # become completely passive — _drain_passive_queue does that.
        if self.style.is_passive and not self.processes_requests:
            self._drain_outstanding_then_go_passive()
        else:
            self._drain_queue()

    def _drain_outstanding_then_go_passive(self) -> None:
        """Fig. 5 case 2: a new backup processes the requests enqueued
        during the switch (keeping its state aligned with the new
        primary at the switch point), then stops processing."""
        outstanding, self._queue = self._queue, []
        self._note_queue()
        for rep in outstanding:
            self._process(rep)

    def _rollback_switch(self) -> None:
        """Fig. 5 case 1, crash branch: the passive primary died before
        its final checkpoint.  Become active immediately and process
        everything in the message queue (the rollback)."""
        switch = self._switch
        if switch is None:
            return
        queued = len(self._queue)
        switch.phase = SwitchPhase.ROLLED_BACK
        switch.completed_at = self.sim.now
        if switch.trace_ctx is not None:
            self.sim.telemetry.finish_trace(switch.trace_ctx, self.sim.now)
        self.style = switch.target
        self._switch = None
        self._release_held_replies()
        self.switch_history.append(SwitchRecord(
            switch_id=switch.switch_id, from_style=switch.from_style,
            to_style=switch.target, started_at=switch.started_at,
            completed_at=self.sim.now, rolled_back=True,
            queued_requests=queued))
        self.trace("repl.switch",
                   f"rollback: primary crashed mid-switch; processing "
                   f"{queued} outstanding requests",
                   switch_id=switch.switch_id)
        self._journal("switch.rollback",
                      trace_id=(switch.trace_ctx.trace_id
                                if switch.trace_ctx is not None else None),
                      switch_id=switch.switch_id,
                      from_style=switch.from_style.value,
                      to_style=switch.target.value, queued=queued,
                      duration_us=self.sim.now - switch.started_at)
        # Broadcast-mode backups logged requests since the last
        # checkpoint; the rollback promotes them to executors, so the
        # log must replay (mirroring _take_over_as_primary) or those
        # acknowledged requests are lost.
        log, self._request_log = self._request_log, []
        for rep in log:
            self._process(rep)
        self._drain_queue()

    # ==================================================================
    # View changes
    # ==================================================================
    def _on_view(self, view: GroupView, joined: List[MemberId],
                 left: List[MemberId], crashed: bool) -> None:
        previous = self.view
        self.view = view
        if self.member in joined:
            if previous is not None:
                # Re-admission after a partition: this replica held a
                # view before, was excluded while wedged in the
                # minority, and has now been re-joined by its healed
                # daemon.  Its state missed everything the majority
                # processed meanwhile — drop back to unsynced and pull
                # a fresh checkpoint before serving again.
                self._synced = False
            if len(view.members) == 1:
                # First member: no live peer to sync from.  A cold
                # passive (re)start recovers from stable storage first.
                if self.style is ReplicationStyle.COLD_PASSIVE \
                        and self.store is not None:
                    self._restore_from_store()
                else:
                    self._mark_synced()
            else:
                self.set_timer("sync-retry", 1.0, self._sync_tick)
            return
        if not left:
            return
        old_primary = previous.members[0] if previous and previous.members \
            else None
        primary_lost = old_primary is not None and old_primary in left
        if self._switch is not None and self._switch.passive_to_active \
                and primary_lost and not self._switch.final_checkpoint_seen:
            self._rollback_switch()
            return
        if primary_lost and self.style.is_passive and self.is_primary:
            self._take_over_as_primary()

    def _take_over_as_primary(self) -> None:
        """Warm-passive failover: the oldest surviving backup becomes
        primary — its state is the last applied checkpoint, plus the
        replay of logged requests in broadcast mode."""
        self.trace("repl.failover",
                   f"{self.member} taking over as primary")
        self._journal("failover", member=str(self.member),
                      style=self.style.value,
                      logged_requests=len(self._request_log))

        def promoted() -> None:
            if not self.alive:
                return
            log, self._request_log = self._request_log, []
            for rep in log:
                self._process(rep)
            # A fresh checkpoint re-arms the remaining backups.
            if len(self.view.members) > 1 if self.view else False:
                self._checkpoint()

        self.process.host.cpu.execute(self.rcal.election_us, promoted)

    # ==================================================================
    # Runtime knob setters
    # ==================================================================
    def set_checkpoint_interval(self, interval_requests: int) -> None:
        """Low-level knob: checkpoint frequency, adjustable live."""
        if interval_requests < 1:
            raise ReplicationError("checkpoint interval must be >= 1")
        from dataclasses import replace
        self.config = replace(
            self.config,
            checkpoint_interval_requests=interval_requests)

    # ==================================================================
    # Introspection
    # ==================================================================
    @property
    def synced(self) -> bool:
        return self._synced

    @property
    def queued_requests(self) -> int:
        return len(self._queue)

    def on_stop(self) -> None:
        """Drop queued work when the process dies."""
        self._queue.clear()
        self._drain_waiters.clear()
        self._held_replies.clear()


class _ListenerShim:
    """Adapts GroupListener callbacks onto the replicator's methods."""

    def __init__(self, replicator: ServerReplicator):
        self._replicator = replicator

    def on_message(self, group: str, sender: MemberId, payload: Any,
                   nbytes: int) -> None:
        self._replicator._on_group_message(sender, payload)

    def on_view(self, view: GroupView, joined: List[MemberId],
                left: List[MemberId], crashed: bool) -> None:
        self._replicator._on_view(view, joined, left, crashed)
