"""Replication layer: the paper's tunable replicator.

Public surface:

- :class:`ReplicationStyle`, :class:`ReplicationConfig`,
  :class:`ClientReplicationConfig` — the low-level knob values
- :class:`ServerReplicator` — server-side replication middleware
  (active / warm passive / cold passive / hybrid, runtime switching)
- :class:`ClientReplicator` — client-side routing, retries, voting
- :class:`ReplicaFactory` — redundancy-level maintenance & cold spawn
- :class:`StableStore` — checkpoint persistence for cold passive
- :class:`SwitchRecord`, :class:`SwitchState`, :class:`SwitchPhase` —
  Fig. 5 protocol state
- message types: :class:`RepRequest`, :class:`RepReply`,
  :class:`Checkpoint`, :class:`SwitchCommand`, :class:`SyncRequest`
"""

from repro.replication.client import ClientReplicator
from repro.replication.factory import ReplicaFactory
from repro.replication.messages import (
    Checkpoint,
    REP_HEADER_BYTES,
    RepReply,
    RepRequest,
    SwitchCommand,
    SyncRequest,
)
from repro.replication.server import ServerReplicator
from repro.replication.store import StableStore, StoredCheckpoint
from repro.replication.styles import (
    ClientReplicationConfig,
    ReplicationConfig,
    ReplicationStyle,
)
from repro.replication.switch import SwitchPhase, SwitchRecord, SwitchState

__all__ = [
    "Checkpoint",
    "ClientReplicationConfig",
    "ClientReplicator",
    "REP_HEADER_BYTES",
    "RepReply",
    "RepRequest",
    "ReplicaFactory",
    "ReplicationConfig",
    "ReplicationStyle",
    "ServerReplicator",
    "StableStore",
    "StoredCheckpoint",
    "SwitchCommand",
    "SwitchPhase",
    "SwitchRecord",
    "SwitchState",
    "SyncRequest",
]
