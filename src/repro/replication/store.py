"""Stable storage for cold-passive replication.

In cold passive replication no backup process exists at fault time:
the primary persists its state to stable storage, and a replacement is
launched only after the primary crashes, restoring from the last
persisted checkpoint.  The store models a shared disk (or logging
site) with per-byte write/read costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class StoredCheckpoint:
    """One persisted snapshot."""

    ckpt_id: int
    state: Any
    state_bytes: int
    written_at: float


class StableStore:
    """A shared, crash-surviving checkpoint store keyed by group name."""

    def __init__(self, sim: Simulator, write_fixed_us: float = 900.0,
                 write_per_byte_us: float = 0.03,
                 read_fixed_us: float = 500.0,
                 read_per_byte_us: float = 0.015):
        self.sim = sim
        self.write_fixed_us = write_fixed_us
        self.write_per_byte_us = write_per_byte_us
        self.read_fixed_us = read_fixed_us
        self.read_per_byte_us = read_per_byte_us
        self._checkpoints: Dict[str, StoredCheckpoint] = {}
        self.writes = 0
        self.reads = 0
        self.bytes_written = 0

    def write(self, group: str, ckpt_id: int, state: Any, state_bytes: int,
              on_done: Optional[Callable[[], None]] = None) -> None:
        """Persist a checkpoint asynchronously (overwrite semantics:
        only the latest snapshot matters for recovery)."""
        delay = self.write_fixed_us + self.write_per_byte_us * state_bytes

        def commit() -> None:
            self._checkpoints[group] = StoredCheckpoint(
                ckpt_id=ckpt_id, state=state, state_bytes=state_bytes,
                written_at=self.sim.now)
            self.writes += 1
            self.bytes_written += state_bytes
            if on_done is not None:
                on_done()

        self.sim.schedule(delay, commit)

    def read(self, group: str,
             on_done: Callable[[Optional[StoredCheckpoint]], None]) -> None:
        """Fetch the latest checkpoint asynchronously (None if absent)."""
        snapshot = self._checkpoints.get(group)
        nbytes = snapshot.state_bytes if snapshot is not None else 0
        delay = self.read_fixed_us + self.read_per_byte_us * nbytes

        def finish() -> None:
            self.reads += 1
            on_done(snapshot)

        self.sim.schedule(delay, finish)

    def latest(self, group: str) -> Optional[StoredCheckpoint]:
        """Synchronous peek used by tests and metrics."""
        return self._checkpoints.get(group)
