"""State of an in-progress replication-style switch (paper Fig. 5).

The protocol itself is driven by :class:`ServerReplicator`; this
module holds the per-replica switch state machine so the three steps
of Figure 5 are explicit and testable:

I.   INITIATE — a "switch" command is multicast AGREED; duplicates
     are discarded.
II.  PREPARE — on delivering the command, every replica starts
     enqueueing application messages; the warm-passive primary
     prepares to send one more checkpoint, backups prepare to wait for
     it; for active→passive a new primary is chosen deterministically.
III. SWITCH — the final checkpoint (or its absence, if the primary
     crashed: rollback by processing the enqueued requests) completes
     the transition and the queue is drained under the new style.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.replication.styles import ReplicationStyle


class SwitchPhase(enum.Enum):
    """Progress of an in-flight style switch at one replica."""
    PREPARING = "preparing"
    COMPLETE = "complete"
    ROLLED_BACK = "rolled_back"


@dataclass
class SwitchState:
    """One replica's view of an in-flight switch."""

    switch_id: str
    from_style: ReplicationStyle
    target: ReplicationStyle
    started_at: float
    phase: SwitchPhase = SwitchPhase.PREPARING
    #: Warm-passive → active: set when the "one more checkpoint"
    #: (Fig. 5 case 1) has been observed.
    final_checkpoint_seen: bool = False
    completed_at: Optional[float] = None
    #: Telemetry trace context covering the switch (None when
    #: telemetry is off); the root span is closed at step III.
    trace_ctx: Optional[Any] = None

    @property
    def passive_to_active(self) -> bool:
        """Fig. 5 case 1: a final checkpoint must hand the primary's
        state to replicas that will start executing."""
        return (self.from_style.is_passive
                and self.target.executes_everywhere)

    @property
    def active_to_passive(self) -> bool:
        """Fig. 5 case 2: pick a new primary; others drain and stop."""
        return (self.from_style.executes_everywhere
                and self.target.is_passive)

    def duration_us(self) -> Optional[float]:
        """Switch duration, or None while still in progress."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclass(frozen=True)
class SwitchRecord:
    """Completed-switch statistics, kept for the monitoring layer and
    the Fig. 6 benchmark ("observed delays required to complete the
    switch are comparable to the average response time")."""

    switch_id: str
    from_style: ReplicationStyle
    to_style: ReplicationStyle
    started_at: float
    completed_at: float
    rolled_back: bool = False
    queued_requests: int = 0

    @property
    def duration_us(self) -> float:
        return self.completed_at - self.started_at
