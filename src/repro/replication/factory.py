"""Replica factory: maintains a target redundancy level.

The factory is the mechanism behind two of the paper's needs:

- **cold passive replication** — "a backup is launched only when the
  primary crashes" (Section 3.1): with a target of one replica, the
  factory respawns the service (which then restores from stable
  storage);
- the **number-of-replicas low-level knob** at runtime: raising the
  target spawns additional replicas (which state-transfer in via the
  group's sync protocol); lowering it retires the youngest replicas.

The factory watches the replica group through the GCS, so it reacts to
real membership changes (including host crashes) rather than guesses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ReplicationError
from repro.gcs.client import GcsClient
from repro.gcs.messages import GroupView, MemberId
from repro.sim.actor import Actor
from repro.sim.config import ReplicationCalibration
from repro.sim.host import Host

#: A spawn function builds one replica process on a host and returns a
#: handle with ``replicator`` (ServerReplicator) and ``process`` attrs.
SpawnFn = Callable[[Host], object]


class ReplicaFactory(Actor):
    """Keeps ``target`` replicas of one group alive on a host pool."""

    def __init__(self, gcs: GcsClient, group: str, hosts: List[Host],
                 spawn: SpawnFn, target: int,
                 calibration: Optional[ReplicationCalibration] = None):
        super().__init__(gcs.process, name=f"factory:{group}")
        if target < 0:
            raise ReplicationError("target replica count must be >= 0")
        self.gcs = gcs
        self.group = group
        self.hosts = list(hosts)
        self.spawn = spawn
        self._target = target
        self.cal = calibration or ReplicationCalibration()
        self._members: tuple = ()
        #: Hosts with a spawn pending or a freshly launched replica
        #: that has not yet appeared in the group view.
        self._spawning_hosts: Dict[str, float] = {}
        self.spawned = 0
        self.retired = 0
        self._handles: List[object] = []
        gcs.watch(group, _FactoryWatch(self))
        # The watch only fires once the group exists; bootstrap (and
        # guard against missed views) with a periodic reconcile.
        self.set_timer("bootstrap", 1.0, self._reconcile)
        self.set_periodic_timer("reconcile", 500_000.0, self._reconcile)

    # ------------------------------------------------------------------
    # The number-of-replicas knob
    # ------------------------------------------------------------------
    @property
    def target(self) -> int:
        return self._target

    def set_target(self, target: int) -> None:
        """Adjust the redundancy level at runtime (low-level knob)."""
        if target < 0:
            raise ReplicationError("target replica count must be >= 0")
        self._target = target
        self._reconcile()

    @property
    def live_count(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def _on_view(self, view: GroupView) -> None:
        self._members = view.members
        # A spawn has fully landed once its host appears in the view.
        for member in view.members:
            self._spawning_hosts.pop(member.host, None)
        self._reconcile()

    def _reconcile(self) -> None:
        if not self.alive:
            return
        self._expire_stale_spawns()
        deficit = (self._target - self.live_count
                   - len(self._spawning_hosts))
        while deficit > 0:
            host = self._free_host()
            if host is None:
                self.trace("repl.factory",
                           f"no free host to spawn a {self.group} replica")
                break
            self._spawn_on(host)
            deficit -= 1
        surplus = self.live_count - self._target
        if surplus > 0:
            self._retire(surplus)

    def _expire_stale_spawns(self) -> None:
        """Forget spawns that never joined (e.g. the host died)."""
        deadline = 8 * self.cal.spawn_replica_us
        stale = [host for host, started in self._spawning_hosts.items()
                 if self.sim.now - started > deadline]
        for host in stale:
            del self._spawning_hosts[host]

    def _free_host(self) -> Optional[Host]:
        occupied = {m.host for m in self._members}
        occupied |= set(self._spawning_hosts)
        for host in self.hosts:
            if host.alive and host.name not in occupied:
                return host
        return None

    def _spawn_on(self, host: Host) -> None:
        self._spawning_hosts[host.name] = self.sim.now
        self.trace("repl.factory",
                   f"spawning {self.group} replica on {host.name}",
                   host=host.name)

        def launch() -> None:
            if not self.alive or not host.alive:
                self._spawning_hosts.pop(host.name, None)
                return
            handle = self.spawn(host)
            self._handles.append(handle)
            self.spawned += 1

        # Process launch + initialization cost.
        self.sim.schedule(self.cal.spawn_replica_us, launch)

    def _retire(self, count: int) -> None:
        """Retire the youngest replicas (never the primary)."""
        victims = list(self._members)[-count:] if count else []
        for member in victims:
            if member == self._members[0]:
                continue  # never retire the longest-standing member
            self._kill_member(member)

    def _kill_member(self, member: MemberId) -> None:
        for handle in self._handles:
            process = getattr(handle, "process", None)
            if process is not None and process.alive \
                    and process.pid == member.pid:
                process.kill(reason="retired by factory")
                self.retired += 1
                return
        # Replica not spawned by us: ask politely via its host.
        for host in self.hosts:
            if host.name == member.host:
                for process in list(host.processes):
                    if process.pid == member.pid:
                        process.kill(reason="retired by factory")
                        self.retired += 1
                        return


class _FactoryWatch:
    def __init__(self, factory: ReplicaFactory):
        self._factory = factory

    def on_message(self, group, sender, payload, nbytes) -> None:
        """Watchers receive no data."""

    def on_view(self, view: GroupView, joined, left, crashed) -> None:
        self._factory._on_view(view)
