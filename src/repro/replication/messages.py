"""Replication-layer messages carried over the GCS.

These are the payloads the replicator instances exchange: replicated
requests and replies, checkpoints, style-switch commands (Fig. 5) and
state-transfer traffic for joining replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.gcs.messages import MemberId
from repro.orb.giop import GiopReply, GiopRequest
from repro.replication.styles import ReplicationStyle
from repro.telemetry.context import context_of

#: Fixed replication-layer header added to every message's wire size.
REP_HEADER_BYTES = 40


@dataclass(frozen=True)
class RepRequest:
    """A client invocation wrapped for the replica group."""

    request: GiopRequest
    client: MemberId
    #: Set when a backup relays a misdirected request to the primary,
    #: so the relay cannot loop.
    relayed: bool = False
    #: Absolute simulated-time deadline propagated from the client's
    #: :class:`~repro.replication.styles.ResiliencePolicy`; replicas
    #: shed requests that arrive already expired (the client has given
    #: up, so processing them is wasted work).  None = no deadline.
    deadline_us: Optional[float] = None

    @property
    def wire_bytes(self) -> int:
        return self.request.payload_bytes + REP_HEADER_BYTES

    @property
    def trace_context(self):
        """Telemetry context, read through to the wrapped GIOP request
        (the GCS daemons use this to join a frame to its trace)."""
        return context_of(self.request)


@dataclass(frozen=True)
class RepReply:
    """A server reply sent point-to-point back to the client.

    ``style`` and ``primary`` piggyback the group's current
    configuration so the client-side replicator tracks the low-level
    knob settings without extra round trips.
    """

    reply: GiopReply
    replica: MemberId
    style: ReplicationStyle
    primary: Optional[MemberId]
    #: True when the group runs broadcast-mode warm passive: clients
    #: should multicast requests so the backups can log them.
    broadcast: bool = False

    @property
    def wire_bytes(self) -> int:
        return self.reply.payload_bytes + REP_HEADER_BYTES

    @property
    def trace_context(self):
        """Telemetry context, read through to the wrapped GIOP reply."""
        return context_of(self.reply)


@dataclass(frozen=True)
class Checkpoint:
    """A state snapshot multicast (AGREED) within the replica group.

    ``final_for`` carries a switch id when this is the "one more
    checkpoint" of the warm-passive-to-active switch (Fig. 5), and
    ``sync_for`` carries a member id when the checkpoint exists to
    bring a newly joined replica up to date.
    """

    ckpt_id: int
    state: Any
    state_bytes: int
    source: MemberId
    final_for: Optional[str] = None
    sync_for: Optional[MemberId] = None
    #: Completed entries of the primary's duplicate-suppression cache
    #: (request id -> cached reply).  A backup that takes over after
    #: applying this checkpoint must suppress retries of requests whose
    #: effects the checkpointed state already contains — re-executing
    #: them would double-apply acknowledged work.  The entries ride in
    #: the same checkpoint message (their cost is part of the state
    #: snapshot already accounted in ``state_bytes``).
    seen: Tuple[Tuple[str, Any], ...] = ()

    @property
    def wire_bytes(self) -> int:
        return self.state_bytes + REP_HEADER_BYTES + 24


@dataclass(frozen=True)
class SyncRequest:
    """A newly joined replica asks the group's oldest member for a
    state-transfer checkpoint (sent point-to-point, retried on a timer
    so a crashed donor cannot strand the joiner)."""

    joiner: MemberId

    @property
    def wire_bytes(self) -> int:
        return 48


@dataclass(frozen=True)
class Fence:
    """Quiesce the group at one point of its request total order.

    Multicast AGREED within a replica group by the shard-migration
    machinery (:mod:`repro.cluster`): every replica pauses request
    intake exactly at the fence's delivery position, so the state the
    primary captures afterwards reflects the same request prefix on
    every replica.  What happens at the fence is decided by the
    replicator's pluggable fence handler; replicators without one
    ignore the message.
    """

    fence_id: str
    initiator: MemberId

    @property
    def wire_bytes(self) -> int:
        return 56


@dataclass(frozen=True)
class SwitchCommand:
    """Step I of the Fig. 5 protocol: initiate a style switch.

    Multicast AGREED so every replica sees it at the same point in the
    request stream; duplicates (same ``switch_id``) are discarded.
    """

    switch_id: str
    target: ReplicationStyle
    initiator: MemberId

    @property
    def wire_bytes(self) -> int:
        return 64
