"""Replication styles and configurations (the low-level knob values).

The paper's low-level knobs are "the replication style, the number of
replicas, the checkpointing style and frequency" (Section 3.1).  A
:class:`ReplicationConfig` bundles one setting of those knobs; the
knob layer in :mod:`repro.core` manipulates these values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError


class ReplicationStyle(enum.Enum):
    """The canonical styles of Section 3.1 plus two extensions from
    the paper's related work: HYBRID (Bakken et al.: some replicas
    active, some passive) and SEMI_ACTIVE (Delta-4 XPA's
    leader-follower model: all replicas execute, only the leader
    transmits output responses)."""

    ACTIVE = "active"
    WARM_PASSIVE = "warm_passive"
    COLD_PASSIVE = "cold_passive"
    HYBRID = "hybrid"
    SEMI_ACTIVE = "semi_active"

    @property
    def is_passive(self) -> bool:
        return self in (ReplicationStyle.WARM_PASSIVE,
                        ReplicationStyle.COLD_PASSIVE)

    @property
    def executes_everywhere(self) -> bool:
        """Styles where every replica runs the application."""
        return self in (ReplicationStyle.ACTIVE,
                        ReplicationStyle.SEMI_ACTIVE)

    @property
    def short(self) -> str:
        """Paper Table 2 notation: A / P / C / H / S."""
        return {"active": "A", "warm_passive": "P",
                "cold_passive": "C", "hybrid": "H",
                "semi_active": "S"}[self.value]


@dataclass(frozen=True)
class ReplicationConfig:
    """One setting of the server-side low-level knobs.

    Attributes
    ----------
    style:
        Initial replication style (switchable at runtime, Fig. 5).
    group:
        GCS group name for the replica group.
    checkpoint_interval_requests:
        Warm/cold passive: checkpoint after every N processed requests.
    broadcast_requests:
        Warm passive only.  When True, client requests are multicast to
        the whole group and backups log them, enabling log-replay
        recovery exactly as Section 4.2 describes ("replaying the
        messages received since the last checkpoint").  When False
        (default), clients send directly to the primary and recovery
        relies on checkpoint state plus client retransmission — this is
        the bandwidth-frugal mode.
    checkpoint_delta_fraction:
        Fraction of the state size actually shipped per checkpoint.
        Capturing a checkpoint always costs CPU proportional to the
        full state, but the on-wire "state update" (Section 3.1) is
        incremental: only the part of the state that changed since the
        previous checkpoint travels.  1.0 ships full snapshots.
    active_head:
        Hybrid style: the first ``active_head`` members (in join order)
        run actively; the rest are warm backups of the head.
    """

    style: ReplicationStyle
    group: str
    checkpoint_interval_requests: int = 1
    broadcast_requests: bool = False
    checkpoint_delta_fraction: float = 1.0
    #: Multicast checkpoints with the SAFE grade: the primary's
    #: stability point then additionally guarantees every backup's
    #: daemon holds the state update before any covered reply leaves.
    safe_checkpoints: bool = False
    active_head: int = 1

    def __post_init__(self) -> None:
        if self.checkpoint_interval_requests < 1:
            raise ConfigurationError(
                "checkpoint interval must be >= 1 request")
        if not 0.0 < self.checkpoint_delta_fraction <= 1.0:
            raise ConfigurationError(
                "checkpoint delta fraction must be in (0, 1]")
        if self.active_head < 1:
            raise ConfigurationError("active_head must be >= 1")
        if not self.group:
            raise ConfigurationError("replica group name required")

    def with_style(self, style: ReplicationStyle) -> "ReplicationConfig":
        """Copy of this config with a different style."""
        return replace(self, style=style)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Partition-aware client resilience knobs.

    Attached to :class:`ClientReplicationConfig` (``resilience=``) to
    replace the legacy fixed-interval retransmission with the three
    mechanisms a partition or gray failure calls for:

    - **Backoff**: retry ``n`` waits
      ``retry_timeout_us * backoff_factor**(n-1)`` (capped at
      ``backoff_cap_us``) plus deterministic jitter of up to
      ``±jitter_frac`` — derived by hashing the request id and attempt
      number, never from the simulation RNG, so enabling resilience on
      one client perturbs nothing else.
    - **Deadlines**: each invocation carries an absolute deadline
      (first-send time + ``deadline_us``) on the wire; the client stops
      retrying past it and replicas shed requests that arrive already
      expired instead of burning CPU on answers nobody awaits.
    - **Circuit breaker**: ``breaker_threshold`` consecutive timeouts
      against one point-to-point endpoint open a breaker for
      ``breaker_cooldown_us``; while open, first attempts fall back to
      the AGREED group multicast, which the reachable majority serves.
      Any reply from the endpoint closes its breaker.
    """

    backoff_factor: float = 2.0
    backoff_cap_us: float = 2_000_000.0
    jitter_frac: float = 0.1
    deadline_us: Optional[float] = None
    breaker_threshold: int = 3
    breaker_cooldown_us: float = 1_000_000.0

    def __post_init__(self) -> None:
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff factor must be >= 1")
        if self.backoff_cap_us <= 0:
            raise ConfigurationError("backoff cap must be positive")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ConfigurationError("jitter fraction must be in [0, 1)")
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ConfigurationError("deadline must be positive")
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker threshold must be >= 1")
        if self.breaker_cooldown_us <= 0:
            raise ConfigurationError("breaker cooldown must be positive")


@dataclass(frozen=True)
class ClientReplicationConfig:
    """Client-side replicator settings.

    Attributes
    ----------
    group:
        Server replica group to invoke.
    expected_style:
        What the client assumes until the first reply teaches it the
        real style (replies piggyback the current style and primary).
    voting:
        Active replication with client-side majority voting (the
        Byzantine-failure option of Section 3.1).  The client waits for
        matching replies from a majority of replicas instead of
        accepting the first response.
    retry_timeout_us:
        Outstanding-request retransmission timeout.  Retries always go
        as an AGREED multicast to the whole group, which is safe in
        every style and during style switches.
    max_retries:
        After this many retries the invocation is reported failed.
    resilience:
        Optional :class:`ResiliencePolicy` enabling exponential
        backoff, request deadlines and per-endpoint circuit breaking.
        ``None`` (the default) keeps the legacy fixed-interval rearm
        exactly, event for event.
    """

    group: str
    expected_style: ReplicationStyle = ReplicationStyle.ACTIVE
    voting: bool = False
    retry_timeout_us: float = 200_000.0
    max_retries: int = 25
    resilience: Optional[ResiliencePolicy] = None

    def __post_init__(self) -> None:
        if self.retry_timeout_us <= 0:
            raise ConfigurationError("retry timeout must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
