"""Fault injection.

The assumed fault model (Section 3.1): "hardware and software crash
faults, transient communication faults, performance and timing
faults".  A :class:`FaultInjector` schedules any mix of those against
a running testbed; every injected fault is recorded for the
experiment report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.net.loss import BurstLoss, DelaySpike
from repro.net.network import Network
from repro.sim.host import Host, Process
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class InjectedFault:
    """Record of one injected fault."""

    kind: str
    target: str
    at_us: float
    until_us: Optional[float] = None


class FaultInjector:
    """Schedules crash/communication/timing faults on a testbed."""

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self.injected: List[InjectedFault] = []

    def _record(self, fault: InjectedFault, host: str) -> None:
        """Book-keep one injection; also journal it as ground truth
        for the detection cross-check (no-op when the journal is off)."""
        self.injected.append(fault)
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now, host, "injector", "fault.inject",
                           fault=fault.kind, target=fault.target,
                           at_us=fault.at_us, until_us=fault.until_us)

    # ------------------------------------------------------------------
    # Crash faults
    # ------------------------------------------------------------------
    def crash_process_at(self, process: Process, at_us: float) -> None:
        """Software crash fault: kill one process at an absolute time."""
        self._check_future(at_us)
        self.sim.schedule_at(at_us, process.kill, "injected fault")
        self._record(InjectedFault(
            kind="process_crash", target=process.name, at_us=at_us),
            host=process.host.name)

    def crash_host_at(self, host: Host, at_us: float) -> None:
        """Hardware crash fault: kill a whole host at an absolute time."""
        self._check_future(at_us)
        self.sim.schedule_at(at_us, host.crash)
        self._record(InjectedFault(
            kind="host_crash", target=host.name, at_us=at_us),
            host=host.name)

    def crash_and_restart_at(self, process: Process, at_us: float,
                             restart_after_us: float,
                             restart: Optional[Callable[[], None]] = None
                             ) -> None:
        """Recovery fault: kill ``process`` at ``at_us`` and bring the
        service back ``restart_after_us`` later.

        The simulated process cannot literally be revived (its
        middleware stack died with it), so recovery is delegated to
        ``restart`` — typically a closure that redeploys the replica on
        the same host (see ``TrialContext.respawn_replica``).  The
        restart is skipped when the host itself is down at restart
        time; crash-only semantics then apply.
        """
        self._check_future(at_us)
        if restart_after_us <= 0:
            raise ConfigurationError("restart delay must be positive")
        self.sim.schedule_at(at_us, process.kill, "injected fault")

        def do_restart() -> None:
            if process.host.alive and restart is not None:
                restart()

        self.sim.schedule_at(at_us + restart_after_us, do_restart)
        self._record(InjectedFault(
            kind="crash_restart", target=process.name, at_us=at_us,
            until_us=at_us + restart_after_us), host=process.host.name)

    # ------------------------------------------------------------------
    # Communication faults
    # ------------------------------------------------------------------
    def loss_burst(self, start_us: float, end_us: float,
                   rate: float = 1.0) -> BurstLoss:
        """Transient communication fault: drop frames in a window."""
        self._check_future(start_us)
        self._check_window(start_us, end_us)
        model = BurstLoss(start_us, end_us, rate)
        self.network.add_loss_model(model)
        self._record(InjectedFault(
            kind="loss_burst", target=f"rate={rate}", at_us=start_us,
            until_us=end_us), host="net")
        return model

    # ------------------------------------------------------------------
    # Performance / timing faults
    # ------------------------------------------------------------------
    def delay_spike(self, start_us: float, end_us: float,
                    extra_us: float) -> DelaySpike:
        """Timing fault: messages arrive, but late."""
        self._check_future(start_us)
        self._check_window(start_us, end_us)
        model = DelaySpike(start_us, end_us, extra_us)
        self.network.add_loss_model(model)
        self._record(InjectedFault(
            kind="delay_spike", target=f"extra={extra_us}us",
            at_us=start_us, until_us=end_us), host="net")
        return model

    def cpu_hog_at(self, host: Host, at_us: float,
                   busy_us: float) -> None:
        """Performance fault: steal the CPU for ``busy_us`` (models a
        runaway co-located task)."""
        self._check_future(at_us)
        if busy_us <= 0:
            raise ConfigurationError("busy time must be positive")

        def hog() -> None:
            if host.alive:
                host.cpu.execute(busy_us, lambda: None)

        self.sim.schedule_at(at_us, hog)
        self._record(InjectedFault(
            kind="cpu_hog", target=host.name, at_us=at_us,
            until_us=at_us + busy_us), host=host.name)

    def _check_future(self, at_us: float) -> None:
        if at_us < self.sim.now:
            raise ConfigurationError(
                f"cannot inject a fault in the past (t={at_us}, "
                f"now={self.sim.now})")

    @staticmethod
    def _check_window(start_us: float, end_us: float) -> None:
        if end_us <= start_us:
            raise ConfigurationError(
                f"fault window must end after it starts "
                f"(start={start_us}, end={end_us})")
