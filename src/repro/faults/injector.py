"""Fault injection.

The assumed fault model (Section 3.1): "hardware and software crash
faults, transient communication faults, performance and timing
faults".  A :class:`FaultInjector` schedules any mix of those against
a running testbed; every injected fault is recorded for the
experiment report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.loss import BurstLoss, DelaySpike
from repro.net.network import Network
from repro.net.topology import (
    AsymmetricPartition,
    FlakyLink,
    LinkFilter,
    PartitionFilter,
    SlowHost,
)
from repro.sim.host import Host, Process
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class InjectedFault:
    """Record of one injected fault."""

    kind: str
    target: str
    at_us: float
    until_us: Optional[float] = None


class FaultInjector:
    """Schedules crash/communication/timing faults on a testbed."""

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self.injected: List[InjectedFault] = []

    def _record(self, fault: InjectedFault, host: str, **attrs) -> None:
        """Book-keep one injection; also journal it as ground truth
        for the detection cross-check (no-op when the journal is off).
        Extra ``attrs`` ride along on the journal event — the topology
        faults record their resolved component cover this way so the
        split-brain checker has machine-readable ground truth."""
        self.injected.append(fault)
        journal = self.sim.journal
        if journal.enabled:
            journal.record(self.sim.now, host, "injector", "fault.inject",
                           fault=fault.kind, target=fault.target,
                           at_us=fault.at_us, until_us=fault.until_us,
                           **attrs)

    # ------------------------------------------------------------------
    # Crash faults
    # ------------------------------------------------------------------
    def crash_process_at(self, process: Process, at_us: float) -> None:
        """Software crash fault: kill one process at an absolute time."""
        self._check_future(at_us)
        self.sim.schedule_at(at_us, process.kill, "injected fault")
        self._record(InjectedFault(
            kind="process_crash", target=process.name, at_us=at_us),
            host=process.host.name)

    def crash_host_at(self, host: Host, at_us: float) -> None:
        """Hardware crash fault: kill a whole host at an absolute time."""
        self._check_future(at_us)
        self.sim.schedule_at(at_us, host.crash)
        self._record(InjectedFault(
            kind="host_crash", target=host.name, at_us=at_us),
            host=host.name)

    def crash_and_restart_at(self, process: Process, at_us: float,
                             restart_after_us: float,
                             restart: Optional[Callable[[], None]] = None
                             ) -> None:
        """Recovery fault: kill ``process`` at ``at_us`` and bring the
        service back ``restart_after_us`` later.

        The simulated process cannot literally be revived (its
        middleware stack died with it), so recovery is delegated to
        ``restart`` — typically a closure that redeploys the replica on
        the same host (see ``TrialContext.respawn_replica``).  The
        restart is skipped when the host itself is down at restart
        time; crash-only semantics then apply.
        """
        self._check_future(at_us)
        if restart_after_us <= 0:
            raise ConfigurationError("restart delay must be positive")
        self.sim.schedule_at(at_us, process.kill, "injected fault")

        def do_restart() -> None:
            if process.host.alive and restart is not None:
                restart()
                return
            if not process.host.alive:
                # The ground-truth fault.inject event promised recovery
                # at until_us; it never happened.  Record the skip so
                # availability accounting can fall back to crash-only
                # semantics instead of under-billing MTTR.
                journal = self.sim.journal
                if journal.enabled:
                    journal.record(
                        self.sim.now, process.host.name, "injector",
                        "fault.restart_skipped", target=process.name,
                        at_us=at_us, until_us=at_us + restart_after_us)

        self.sim.schedule_at(at_us + restart_after_us, do_restart)
        self._record(InjectedFault(
            kind="crash_restart", target=process.name, at_us=at_us,
            until_us=at_us + restart_after_us), host=process.host.name)

    # ------------------------------------------------------------------
    # Communication faults
    # ------------------------------------------------------------------
    def loss_burst(self, start_us: float, end_us: float,
                   rate: float = 1.0) -> BurstLoss:
        """Transient communication fault: drop frames in a window."""
        self._check_future(start_us)
        self._check_window(start_us, end_us)
        model = BurstLoss(start_us, end_us, rate)
        self.network.add_loss_model(model)
        self._record(InjectedFault(
            kind="loss_burst", target=f"rate={rate}", at_us=start_us,
            until_us=end_us), host="net")
        return model

    # ------------------------------------------------------------------
    # Topology faults: partitions and gray failures
    # ------------------------------------------------------------------
    def _install_filter(self, filt: LinkFilter, end_us: float) -> None:
        """Install a topology filter and schedule its removal at heal
        time, so a healed network pays nothing per frame."""
        self.network.add_link_filter(filt)
        self.sim.schedule_at(
            end_us, self.network.remove_link_filter, filt)

    def _check_hosts(self, names: Iterable[str]) -> Tuple[str, ...]:
        ordered = tuple(sorted(names))
        for name in ordered:
            if name not in self.network.hosts:
                raise ConfigurationError(
                    f"unknown host in topology fault: {name}")
        return ordered

    def partition_at(self, components: Iterable[Iterable[str]],
                     start_us: float, end_us: float) -> PartitionFilter:
        """Symmetric network split: hosts in different components
        cannot exchange frames in ``[start_us, end_us)``; the split
        heals at ``end_us``.

        ``components`` lists disjoint host-name groups.  Attached
        hosts named in no group form one implicit remainder component,
        so ``partition_at([["s03"]], t0, t1)`` isolates ``s03`` from
        everyone else.  The journal ground truth records the *resolved*
        cover, which is what the split-brain invariant checks against.
        """
        self._check_future(start_us)
        self._check_window(start_us, end_us)
        resolved = [frozenset(self._check_hosts(c))
                    for c in components if tuple(c)]
        named = set().union(*resolved) if resolved else set()
        remainder = frozenset(h for h in self.network.hosts
                              if h not in named)
        if remainder:
            resolved.append(remainder)
        if len(resolved) < 2:
            raise ConfigurationError(
                "a partition needs at least two components")
        cover = tuple(sorted(resolved, key=sorted))
        filt = PartitionFilter(cover, start_us, end_us)
        self._install_filter(filt, end_us)
        label = "|".join("+".join(sorted(c)) for c in cover)
        self._record(InjectedFault(
            kind="partition", target=label, at_us=start_us,
            until_us=end_us), host="net",
            components=[sorted(c) for c in cover])
        return filt

    def asymmetric_partition_at(self, src_hosts: Iterable[str],
                                dst_hosts: Iterable[str],
                                start_us: float,
                                end_us: float) -> AsymmetricPartition:
        """One-way reachability failure: frames from ``src_hosts`` to
        ``dst_hosts`` are dropped in the window; the reverse direction
        still works."""
        self._check_future(start_us)
        self._check_window(start_us, end_us)
        src = self._check_hosts(src_hosts)
        dst = self._check_hosts(dst_hosts)
        filt = AsymmetricPartition(frozenset(src), frozenset(dst),
                                   start_us, end_us)
        self._install_filter(filt, end_us)
        self._record(InjectedFault(
            kind="asym_partition",
            target=f"{'+'.join(src)}->{'+'.join(dst)}",
            at_us=start_us, until_us=end_us), host="net",
            src_hosts=list(src), dst_hosts=list(dst))
        return filt

    def flaky_link(self, a: str, b: str, rate: float,
                   start_us: float, end_us: float,
                   symmetric: bool = True) -> FlakyLink:
        """Per-link Bernoulli loss on the ``a``/``b`` host pair."""
        self._check_future(start_us)
        self._check_window(start_us, end_us)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"loss rate must be in [0, 1], got {rate}")
        self._check_hosts((a, b))
        filt = FlakyLink(a, b, rate, start_us, end_us,
                         symmetric=symmetric)
        self._install_filter(filt, end_us)
        arrow = "<->" if symmetric else "->"
        self._record(InjectedFault(
            kind="flaky_link", target=f"{a}{arrow}{b}",
            at_us=start_us, until_us=end_us), host="net",
            rate=rate, symmetric=symmetric)
        return filt

    def slow_host(self, host: Host, extra_us: float,
                  start_us: float, end_us: float) -> SlowHost:
        """Gray failure: every frame into or out of ``host`` is
        delayed by ``extra_us`` in the window — the host is up but
        late, the fault class a binary up/down detector mishandles."""
        self._check_future(start_us)
        self._check_window(start_us, end_us)
        if extra_us < 0:
            raise ConfigurationError("extra delay must be non-negative")
        self._check_hosts((host.name,))
        filt = SlowHost(host.name, extra_us, start_us, end_us)
        self._install_filter(filt, end_us)
        self._record(InjectedFault(
            kind="slow_host", target=host.name, at_us=start_us,
            until_us=end_us), host=host.name, extra_us=extra_us)
        return filt

    # ------------------------------------------------------------------
    # Performance / timing faults
    # ------------------------------------------------------------------
    def delay_spike(self, start_us: float, end_us: float,
                    extra_us: float) -> DelaySpike:
        """Timing fault: messages arrive, but late."""
        self._check_future(start_us)
        self._check_window(start_us, end_us)
        model = DelaySpike(start_us, end_us, extra_us)
        self.network.add_loss_model(model)
        self._record(InjectedFault(
            kind="delay_spike", target=f"extra={extra_us}us",
            at_us=start_us, until_us=end_us), host="net")
        return model

    def cpu_hog_at(self, host: Host, at_us: float,
                   busy_us: float) -> None:
        """Performance fault: steal the CPU for ``busy_us`` (models a
        runaway co-located task)."""
        self._check_future(at_us)
        if busy_us <= 0:
            raise ConfigurationError("busy time must be positive")

        def hog() -> None:
            if host.alive:
                host.cpu.execute(busy_us, lambda: None)

        self.sim.schedule_at(at_us, hog)
        self._record(InjectedFault(
            kind="cpu_hog", target=host.name, at_us=at_us,
            until_us=at_us + busy_us), host=host.name)

    def _check_future(self, at_us: float) -> None:
        if at_us < self.sim.now:
            raise ConfigurationError(
                f"cannot inject a fault in the past (t={at_us}, "
                f"now={self.sim.now})")

    @staticmethod
    def _check_window(start_us: float, end_us: float) -> None:
        if end_us <= start_us:
            raise ConfigurationError(
                f"fault window must end after it starts "
                f"(start={start_us}, end={end_us})")
