"""Fault injection for the paper's fault model.

Public surface:

- :class:`FaultInjector` — schedule crash / loss / timing faults
- :class:`InjectedFault` — record of one injection
"""

from repro.faults.injector import FaultInjector, InjectedFault

__all__ = ["FaultInjector", "InjectedFault"]
