"""Command-line interface.

``python -m repro <command>``:

- ``breakdown`` — Fig. 3 round-trip component breakdown
- ``profile``   — run the Fig. 7 sweep; print (and optionally CSV-export)
- ``policy``    — synthesize and print the Table 2 scalability policy
- ``adaptive``  — run the Fig. 6 adaptive-replication scenario
- ``report``    — regenerate the full EXPERIMENTS.md report
- ``campaign``  — run a fault-injection campaign from a spec file
- ``trace``     — record a traced run; export spans/metrics
- ``observe``   — render a dependability journal (timeline/summary/HTML)
- ``bench``     — run the performance suite; write BENCH_*.json artifacts
- ``check``     — explore schedule space; verify linearizability and
  protocol invariants; replay/minimize repro artifacts
- ``cluster``   — sharded deployments: summary, key routing, live
  rebalance check, journal replay
- ``slo``       — per-shard error budgets, burn-rate alerts, and the
  fault/alert cross-check over a captured journal
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import Constraints, CostFunction, ScalabilityPolicy, ThresholdSwitchPolicy
from repro.errors import ConfigurationError
from repro.experiments import (
    build_profile,
    run_adaptive_scenario,
    run_rtt_breakdown,
)
from repro.replication import ReplicationStyle
from repro.sim import PAPER_FIG3_BREAKDOWN
from repro.tools import policy_to_csv, profile_to_csv, render_series
from repro.workload import SpikeProfile


#: One-line summary per subcommand: the single source for the
#: ``--help`` listing and the unknown-command error listing.
_SUMMARIES = {
    "breakdown": "Fig. 3 round-trip breakdown",
    "profile": "Fig. 7 sweep",
    "policy": "Table 2 scalability policy",
    "adaptive": "Fig. 6 adaptive scenario",
    "campaign": "run a fault-injection campaign from a spec",
    "trace": "record a traced run and export spans/metrics",
    "observe": "render a dependability journal "
               "(timeline, availability, fault cross-check)",
    "bench": "run the performance suite; write canonical "
             "BENCH_<profile>.json artifacts",
    "check": "explore schedule space and verify linearizability + "
             "protocol invariants; replay/minimize repro artifacts",
    "cluster": "sharded deployments: summary, key routing, live "
               "rebalance check, journal replay",
    "slo": "per-shard SLO error budgets, burn-rate alerts, and the "
           "fault/alert cross-check over a captured journal",
    "report": "regenerate EXPERIMENTS.md on stdout",
    "verify": "self-check calibration + Table 2 pattern",
}


def _usage_error(command: str, message: str) -> int:
    """Report a usage error uniformly: one line on stderr, exit 2."""
    print(f"{command}: {message}", file=sys.stderr)
    return 2


def _cmd_breakdown(args: argparse.Namespace) -> int:
    breakdown = run_rtt_breakdown(n_requests=args.requests, seed=args.seed)
    print(f"{'component':24s} {'measured [us]':>14s} {'paper [us]':>12s}")
    for component, paper_value in PAPER_FIG3_BREAKDOWN.items():
        print(f"{component:24s} {breakdown.get(component, 0.0):14.1f} "
              f"{paper_value:12.1f}")
    print(f"{'TOTAL':24s} {sum(breakdown.values()):14.1f} "
          f"{sum(PAPER_FIG3_BREAKDOWN.values()):12.1f}")
    return 0


def _sweep(args: argparse.Namespace):
    return build_profile(n_requests=args.requests, seed=args.seed)


def _cmd_profile(args: argparse.Namespace) -> int:
    profile, _ = _sweep(args)
    print(f"{'config':8s} {'clients':>8s} {'latency[us]':>12s} "
          f"{'jitter[us]':>11s} {'bw[MB/s]':>9s}")
    for m in sorted(profile, key=lambda m: (m.config.style.value,
                                            m.config.n_replicas,
                                            m.n_clients)):
        print(f"{m.config.label:8s} {m.n_clients:8d} "
              f"{m.latency_us:12.1f} {m.jitter_us:11.1f} "
              f"{m.bandwidth_mbps:9.3f}")
    if args.csv:
        with open(args.csv, "w") as handle:
            profile_to_csv(profile, out=handle)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_policy(args: argparse.Namespace) -> int:
    profile, _ = _sweep(args)
    policy = ScalabilityPolicy.synthesize(
        profile,
        Constraints(max_latency_us=args.max_latency,
                    max_bandwidth_mbps=args.max_bandwidth),
        CostFunction(latency_weight=args.weight,
                     latency_norm_us=args.max_latency,
                     bandwidth_norm_mbps=args.max_bandwidth))
    print(f"{'Ncli':>4s} {'config':>8s} {'latency[us]':>12s} "
          f"{'bw[MB/s]':>9s} {'faults':>7s} {'cost':>7s}")
    for entry in policy.table():
        print(f"{entry.n_clients:4d} {entry.config.label:>8s} "
              f"{entry.latency_us:12.1f} {entry.bandwidth_mbps:9.3f} "
              f"{entry.faults_tolerated:7d} {entry.cost:7.3f}")
    if args.csv:
        with open(args.csv, "w") as handle:
            policy_to_csv(policy, out=handle)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    profile = SpikeProfile(base_rate=args.base_rate,
                           spike_rate=args.spike_rate,
                           spike_start_us=1_500_000.0,
                           spike_end_us=5_500_000.0)
    policy = ThresholdSwitchPolicy(rate_high_per_s=args.high,
                                   rate_low_per_s=args.low)
    adaptive = run_adaptive_scenario(profile, 7_000_000.0, policy=policy,
                                     n_clients=2, seed=args.seed)
    static = run_adaptive_scenario(
        profile, 7_000_000.0, n_clients=2,
        static_style=ReplicationStyle.WARM_PASSIVE, seed=args.seed)
    print(render_series(adaptive.rate_series[::5], width=40,
                        label="request rate [req/s]"))
    print("\nswitches:")
    for record in adaptive.switch_events:
        print(f"  {record.switch_id}: {record.from_style.short} -> "
              f"{record.to_style.short} in {record.duration_us:.0f} us")
    gain = (adaptive.observed_arrival_rate_per_s
            / static.observed_arrival_rate_per_s - 1.0)
    print(f"\nobserved arrival rate gain over static passive: "
          f"{gain * 100:+.1f} % (paper: +4.1 %)")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignSpec,
        ResultsStore,
        aggregate_scores,
        render_pareto,
        render_scores,
        run_campaign,
        write_markdown,
    )
    from repro.tools import scores_to_csv

    try:
        spec = CampaignSpec.from_file(args.spec)
    except (ConfigurationError, OSError) as exc:
        return _usage_error("campaign", f"bad spec {args.spec}: {exc}")
    results_path = args.results or f"{args.spec}.results.jsonl"
    store = ResultsStore(results_path)
    if args.fresh:
        store.clear()

    def progress(done: int, total: int, record) -> None:
        if record is None or args.quiet:
            return
        marker = "ok" if record.ok else record.status.upper()
        print(f"  [{done:3d}/{total}] {record.trial_id:40s} {marker}")

    print(f"campaign {spec.name!r}: {spec.n_trials()} trials, "
          f"{args.workers} worker(s), results -> {results_path}")
    try:
        summary = run_campaign(spec, store, workers=args.workers,
                               trial_timeout_s=args.trial_timeout,
                               progress=progress,
                               telemetry=args.telemetry,
                               journal_dir=args.journal,
                               check=args.check, slo=args.slo)
    except ConfigurationError as exc:
        return _usage_error("campaign", str(exc))
    print(f"ran {summary.ran}, skipped {summary.skipped} "
          f"(already recorded), failed {summary.failed}, "
          f"in {summary.elapsed_s:.1f}s")

    records = [r for r in store.records() if r.ok]
    if not records:
        print("no successful trials recorded; nothing to score")
        return 1
    check_failures = [r for r in records
                      if args.check
                      and not r.metrics.get("check", {}).get("ok", True)]
    for record in check_failures:
        verdict = record.metrics["check"]
        print(f"CHECK FAILED {record.trial_id}: "
              f"{len(verdict.get('violations', []))} violation(s), "
              f"linearizable={verdict.get('linearizable')}",
              file=sys.stderr)
    # SLO breaches are campaign *data* (a fault load exhausting a
    # budget is the expected outcome), but a fault/alert cross-check
    # inconsistency means the alerting itself misfired — that fails.
    slo_failures = []
    if args.slo:
        breached = 0
        for record in records:
            verdict = record.metrics.get("slo", {})
            breached += int(verdict.get("breached", 0))
            if not verdict.get("cross_check", {}).get("ok", True):
                slo_failures.append(record)
                print(f"SLO CROSS-CHECK FAILED {record.trial_id}: "
                      f"budget-exhausting fault without exactly one "
                      f"alert", file=sys.stderr)
        print(f"slo: {breached} budget breach(es) across "
              f"{len(records)} trial(s), "
              f"{len(slo_failures)} cross-check failure(s)")
    scores = aggregate_scores(records)
    print()
    print(render_scores(scores))
    print()
    print(render_pareto(scores))
    if args.csv:
        with open(args.csv, "w") as handle:
            scores_to_csv(scores, out=handle)
        print(f"\nwrote {args.csv}")
    if args.markdown:
        with open(args.markdown, "w") as handle:
            write_markdown(spec, scores, out=handle)
        print(f"wrote {args.markdown}")
    return (0 if summary.failed == 0 and not check_failures
            and not slo_failures else 1)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Record one traced run and export its spans/metrics."""
    from repro.experiments.scenarios import run_replicated_load
    from repro.telemetry import (
        breakdown_table,
        chrome_trace_json,
        component_breakdown,
        prometheus_text,
        spans_to_csv,
        telemetry_summary,
    )

    if args.replicas < 1 or args.clients < 1 or args.requests < 1:
        return _usage_error(
            "trace", "replicas, clients and requests must be >= 1")
    style = ReplicationStyle(args.style)
    result = run_replicated_load(
        style, n_replicas=args.replicas, n_clients=args.clients,
        n_requests=args.requests, seed=args.seed,
        keep_timelines=True, telemetry=True)
    recorder = result.telemetry
    assert recorder is not None

    if args.format == "chrome":
        rendered = chrome_trace_json(recorder.spans)
    elif args.format == "prometheus":
        rendered = prometheus_text(recorder.metrics)
    elif args.format == "csv":
        rendered = spans_to_csv(recorder.spans)
    else:  # summary
        summary = telemetry_summary(recorder)
        lines = [f"traced {summary['traces']} requests "
                 f"({summary['spans']} spans, "
                 f"{summary['dropped']} dropped, "
                 f"{summary['open_spans']} left open)",
                 f"latency p50 {summary['latency_p50_us']:.0f} us, "
                 f"p99 {summary['latency_p99_us']:.0f} us", ""]
        lines.append(f"{'component':<22}{'measured us':>12}"
                     f"{'paper us':>10}")
        for component, measured, ref in breakdown_table(
                component_breakdown(recorder.spans),
                PAPER_FIG3_BREAKDOWN):
            paper = f"{ref:>10.1f}" if ref is not None else " " * 10
            lines.append(f"{component:<22}{measured:>12.1f}{paper}")
        rendered = "\n".join(lines) + "\n"

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(rendered)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Explore schedule space; replay or minimize repro artifacts."""
    from repro.check import (
        MUTATIONS,
        canonical_partition_scenario,
        canonical_scenario,
        explore,
        load_artifact,
        minimize,
        render_exploration,
        write_artifact,
    )
    from repro.check import replay as replay_artifact
    from repro.check.artifact import artifact_from_report
    from repro.errors import VerificationError

    if args.budget < 1:
        return _usage_error("check", "--budget must be >= 1")
    if args.tie_choices < 1:
        return _usage_error("check", "--tie-choices must be >= 1")
    if args.delay_bound < 0:
        return _usage_error("check", "--delay-bound must be >= 0")
    if args.mutation is not None and args.mutation not in MUTATIONS:
        return _usage_error(
            "check", f"unknown --mutation {args.mutation!r} "
                     f"(known: {', '.join(sorted(MUTATIONS))})")

    if args.replay or args.minimize:
        path = args.replay or args.minimize
        try:
            artifact = load_artifact(path)
        except (OSError, VerificationError) as exc:
            return _usage_error(
                "check", f"cannot load artifact {path}: {exc}")
        if args.minimize:
            artifact = minimize(artifact)
            out = args.artifact or path
            _write_check_artifact(artifact, out, write_artifact)
            print(f"minimized to {artifact.scenario.n_requests} "
                  f"request(s), horizon "
                  f"{artifact.scenario.horizon_us / 1e6:.1f} s, "
                  f"{len(artifact.decisions)} decision(s)")
            print(f"wrote {out}")
        try:
            result = replay_artifact(artifact)
        except VerificationError as exc:
            print(f"check: replay drifted off the recorded decision "
                  f"trace: {exc}", file=sys.stderr)
            return 1
        print(f"replay digest {result.digest[:16]} "
              f"{'==' if result.identical else '!='} recorded "
              f"{result.expected_digest[:16]}")
        for violation in result.violations:
            print(f"  [{violation.invariant}] {violation.message}")
        if result.reproduced:
            print("verdict: REPRODUCED — byte-identical replay, "
                  "violations reappear")
            return 0
        print("verdict: NOT REPRODUCED")
        return 1

    # Explore mode (the default).
    if args.scenario == "partition":
        scenario = canonical_partition_scenario(seed=args.seed,
                                                mutation=args.mutation)
    else:
        scenario = canonical_scenario(seed=args.seed,
                                      mutation=args.mutation)
    result = explore(scenario, budget=args.budget,
                     base_walk_seed=args.walk_seed,
                     tie_choices=args.tie_choices,
                     delay_bound_us=args.delay_bound,
                     stop_on_violation=not args.keep_going)
    print(render_exploration(result))
    violating = result.violating
    if not violating:
        return 0
    artifact = artifact_from_report(violating[0], args.tie_choices,
                                    args.delay_bound)
    artifact = minimize(artifact)
    out = args.artifact or "repro_violation.json"
    _write_check_artifact(artifact, out, write_artifact)
    print(f"wrote minimized repro artifact {out} "
          f"(replay with: python -m repro check --replay {out})")
    return 1


def _write_check_artifact(artifact, out: str, write_artifact) -> None:
    """Write a repro artifact, creating its parent directory."""
    import os
    parent = os.path.dirname(out)
    if parent:
        os.makedirs(parent, exist_ok=True)
    write_artifact(artifact, out)


def _cmd_observe(args: argparse.Namespace) -> int:
    """Render a dependability journal captured as JSONL."""
    from repro.journal import discover_shards, event_shard, read_jsonl
    from repro.tools import journal_html, journal_summary, render_journal

    if args.limit is not None and args.limit < 1:
        return _usage_error("observe", "--limit must be >= 1")
    try:
        events = read_jsonl(args.journal)
    except (OSError, ValueError) as exc:
        return _usage_error(
            "observe", f"cannot read {args.journal}: {exc}")
    if args.shard:
        shards = discover_shards(events)
        if args.shard not in shards:
            return _usage_error(
                "observe", f"unknown shard {args.shard!r} "
                           f"(journal has: {', '.join(shards) or 'none'})")
        events = [e for e in events
                  if event_shard(e, shards) == args.shard]
    if not events:
        print(f"observe: {args.journal} holds no events",
              file=sys.stderr)
        return 1

    print(journal_summary(events))
    if not args.no_timeline:
        print()
        print(render_journal(events, limit=args.limit, kind=args.kind))
    if args.html:
        with open(args.html, "w") as handle:
            handle.write(journal_html(events, title=args.journal))
        print(f"\nwrote {args.html}")
    return 0


def _profile_listing() -> str:
    """One line per bench profile: name plus docstring summary."""
    from repro.bench import profile_summaries

    lines = ["available profiles:"]
    for name, summary in profile_summaries().items():
        lines.append(f"  {name:16s} {summary}")
    return "\n".join(lines)


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the calibrated performance suite and write artifacts."""
    import os

    from repro.bench import PROFILE_NAMES, run_profile, write_artifact

    if args.list_profiles:
        print(_profile_listing())
        return 0
    names = tuple(args.profile) if args.profile else PROFILE_NAMES
    unknown = [name for name in names if name not in PROFILE_NAMES]
    if unknown:
        print(_profile_listing(), file=sys.stderr)
        return _usage_error(
            "bench", f"unknown profile(s): {', '.join(unknown)}")
    if not os.path.isdir(args.out_dir):
        return _usage_error(
            "bench", f"--out-dir {args.out_dir!r} is not a directory")
    mode = "quick" if args.quick else "full"
    print(f"bench ({mode}): {', '.join(names)}")
    for name in names:
        report = run_profile(name, quick=args.quick)
        print(f"\n[{name}]")
        for key in sorted(report.metrics):
            print(f"  {key:32s} {report.metrics[key]:>14.1f}")
        path = write_artifact(report, args.out_dir)
        print(f"  wrote {path}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Sharded-deployment operations (summary/route/rebalance/replay)."""
    from repro.cluster import (
        build_map,
        run_cluster_load,
        run_cluster_rebalance_check,
    )

    if args.action == "route":
        if args.shards < 1:
            return _usage_error("cluster", "--shards must be >= 1")
        pmap = build_map([f"shard{i}" for i in range(args.shards)])
        print(f"map of {args.shards} shard(s), "
              f"digest {pmap.digest()[:16]}")
        for key in args.keys:
            print(f"  {key:24s} -> {pmap.owner_of(key)}")
        return 0

    if args.action == "summary":
        if args.shards < 1:
            return _usage_error("cluster", "--shards must be >= 1")
        if args.clients < 1 or args.cycle < 1:
            return _usage_error(
                "cluster", "--clients and --cycle must be >= 1")
        result = run_cluster_load(
            n_shards=args.shards, n_clients=args.clients,
            n_requests=args.cycle, seed=args.seed, journal=True)
        print(f"{args.shards} shard(s), {args.clients} client(s), "
              f"{result.completed}/{result.sent} completed")
        print(f"  throughput {result.throughput_per_s:10.1f} req/s")
        print(f"  latency    {result.latency_mean_us:10.1f} us "
              f"(jitter {result.jitter_us:.1f})")
        print(f"  map epoch {result.map_epoch}, routers agree: "
              f"{result.routers_agree}, rerouted {result.rerouted}")
        print(f"\n{'shard':10s} {'style':14s} {'processed':>10s} "
              f"{'replies':>8s} {'ckpts':>6s}")
        for name in sorted(result.per_shard):
            stats = result.per_shard[name]
            print(f"{name:10s} {result.shard_styles[name]:14s} "
                  f"{stats['processed']:10d} {stats['replies']:8d} "
                  f"{stats['checkpoints']:6d}")
        return 0

    if args.action == "rebalance":
        if args.shards < 2:
            return _usage_error(
                "cluster", "a rebalance check needs --shards >= 2")
        out = run_cluster_rebalance_check(
            n_shards=args.shards, n_clients=args.clients,
            n_requests=args.cycle, seed=args.seed)
        print(f"live rebalance over {args.shards} shard(s): "
              f"{out.migrations_committed} migration(s) committed, "
              f"{out.rerouted} request(s) re-routed in flight")
        print(f"  {out.operations} acked operation(s), survivors "
              f"{ {k: max(v) if v else 0 for k, v in sorted(out.survivor_values.items())} }")
        print(f"  digest {out.digest[:16]}")
        if out.ok:
            print("verdict: OK — no acked update lost, none "
                  "double-applied")
            return 0
        for violation in out.violations:
            print(f"  [{violation.get('invariant')}] "
                  f"{violation.get('message')}", file=sys.stderr)
        print("verdict: VIOLATED")
        return 1

    # replay: render the cluster events of a captured journal.
    from repro.journal import read_jsonl
    try:
        events = read_jsonl(args.journal)
    except (OSError, ValueError) as exc:
        return _usage_error(
            "cluster", f"cannot read {args.journal}: {exc}")
    cluster_events = [e for e in events if e.component == "cluster"]
    if not cluster_events:
        print(f"cluster: {args.journal} holds no cluster events",
              file=sys.stderr)
        return 1
    print(f"{len(cluster_events)} cluster event(s) "
          f"of {len(events)} total:")
    for event in cluster_events:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(event.attrs.items()))
        print(f"  {event.time_us / 1e6:10.6f}s  {event.host:8s} "
              f"{event.kind:18s} {attrs}")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """Evaluate SLOs over a captured journal (status/alerts/report)."""
    from repro.journal import read_jsonl
    from repro.slo import (
        default_slo_specs,
        evaluate_slos,
        load_slo_specs,
        slo_alerts,
        slo_html,
        slo_report,
        slo_status,
    )

    try:
        events = read_jsonl(args.journal)
    except (OSError, ValueError) as exc:
        return _usage_error("slo", f"cannot read {args.journal}: {exc}")
    if not events:
        print(f"slo: {args.journal} holds no events", file=sys.stderr)
        return 1
    if args.spec:
        try:
            specs = load_slo_specs(args.spec)
        except (ConfigurationError, OSError, ValueError) as exc:
            return _usage_error("slo", f"bad spec {args.spec}: {exc}")
    else:
        specs = default_slo_specs()
    outcome = evaluate_slos(events, specs)

    if args.action == "alerts":
        print(slo_alerts(outcome))
    elif args.action == "report":
        print(slo_report(events, outcome))
    else:  # status
        print(slo_status(outcome))
    html = getattr(args, "html", None)
    if html:
        with open(html, "w") as handle:
            handle.write(slo_html(outcome, title=args.journal))
        print(f"\nwrote {html}")
    return 0 if outcome.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report
    write_report(sys.stdout, n_requests=args.requests, seed=args.seed)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Self-check: calibration anchors + the Table 2 pattern."""
    failures = 0

    breakdown = run_rtt_breakdown(n_requests=max(args.requests, 150),
                                  seed=args.seed)
    print("calibration anchors (paper Fig. 3, tolerance 20 %):")
    from repro.sim import PAPER_FIG3_BREAKDOWN as anchors
    for component, paper_value in anchors.items():
        measured = breakdown.get(component, 0.0)
        drift = abs(measured - paper_value) / paper_value
        status = "ok" if drift <= 0.20 else "DRIFTED"
        if status != "ok":
            failures += 1
        print(f"  {component:22s} paper {paper_value:6.0f}  "
              f"measured {measured:6.0f}  ({drift * 100:4.1f} %)  {status}")

    print("\nTable 2 pattern (paper: A(3) A(3) P(3) P(3) P(2)):")
    profile, _ = _sweep(args)
    policy = ScalabilityPolicy.synthesize(profile, Constraints(),
                                          CostFunction())
    pattern = [policy.best_configuration(n).config.label
               for n in (1, 2, 3, 4, 5)]
    expected = ["A(3)", "A(3)", "P(3)", "P(3)", "P(2)"]
    status = "ok" if pattern == expected else "MISMATCH"
    if status != "ok":
        failures += 1
    print(f"  measured: {pattern}  {status}")

    print(f"\nverify: {'PASS' if failures == 0 else 'FAIL'} "
          f"({failures} problem(s))")
    return 0 if failures == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Versatile Dependability (DSN 2004) reproduction")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default 0)")
    parser.add_argument("--requests", type=int, default=150,
                        help="requests per client per configuration "
                             "(default 150; paper used 10000)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("breakdown", help=_SUMMARIES["breakdown"])

    profile_parser = sub.add_parser("profile", help=_SUMMARIES["profile"])
    profile_parser.add_argument("--csv", help="write the sweep as CSV")

    policy_parser = sub.add_parser("policy", help=_SUMMARIES["policy"])
    policy_parser.add_argument("--max-latency", type=float, default=7000.0)
    policy_parser.add_argument("--max-bandwidth", type=float, default=3.0)
    policy_parser.add_argument("--weight", type=float, default=0.5,
                               help="cost weight p (default 0.5)")
    policy_parser.add_argument("--csv", help="write the policy as CSV")

    adaptive_parser = sub.add_parser("adaptive",
                                     help=_SUMMARIES["adaptive"])
    adaptive_parser.add_argument("--base-rate", type=float, default=100.0)
    adaptive_parser.add_argument("--spike-rate", type=float, default=1100.0)
    adaptive_parser.add_argument("--high", type=float, default=400.0,
                                 help="switch-up threshold [req/s]")
    adaptive_parser.add_argument("--low", type=float, default=200.0,
                                 help="switch-down threshold [req/s]")

    campaign_parser = sub.add_parser(
        "campaign", help=_SUMMARIES["campaign"])
    campaign_parser.add_argument("spec", help="campaign spec JSON file")
    campaign_parser.add_argument("--workers", type=int, default=1,
                                 help="parallel worker processes "
                                      "(default 1 = serial)")
    campaign_parser.add_argument("--results",
                                 help="results JSONL path (default: "
                                      "<spec>.results.jsonl); an "
                                      "existing store resumes the "
                                      "campaign")
    campaign_parser.add_argument("--fresh", action="store_true",
                                 help="discard any existing results "
                                      "instead of resuming")
    campaign_parser.add_argument("--trial-timeout", type=float,
                                 default=300.0,
                                 help="per-trial wall-clock timeout [s]")
    campaign_parser.add_argument("--csv", help="export scores as CSV")
    campaign_parser.add_argument("--markdown",
                                 help="export a Markdown report")
    campaign_parser.add_argument("--quiet", action="store_true",
                                 help="suppress per-trial progress lines")
    campaign_parser.add_argument("--telemetry", action="store_true",
                                 help="record spans during trials and "
                                      "attach per-trial telemetry "
                                      "summaries to the records")
    campaign_parser.add_argument("--journal", metavar="DIR",
                                 help="capture each trial's dependability "
                                      "journal as DIR/<trial>.journal.jsonl "
                                      "and attach journal digests to the "
                                      "records")
    campaign_parser.add_argument("--check", action="store_true",
                                 help="verify each trial's operation "
                                      "history (linearizability) and "
                                      "protocol invariants; attach the "
                                      "verdict to the records and fail "
                                      "the campaign on violations")
    campaign_parser.add_argument("--slo", action="store_true",
                                 help="evaluate per-shard SLO error "
                                      "budgets and burn-rate alerts for "
                                      "each trial; attach the verdict to "
                                      "the records and fail the campaign "
                                      "on fault/alert inconsistency")

    trace_parser = sub.add_parser("trace", help=_SUMMARIES["trace"])
    trace_parser.add_argument(
        "--style", default=ReplicationStyle.ACTIVE.value,
        choices=[s.value for s in ReplicationStyle],
        help="replication style (default active)")
    trace_parser.add_argument("--replicas", type=int, default=1,
                              help="replica count (default 1)")
    trace_parser.add_argument("--clients", type=int, default=1,
                              help="client count (default 1)")
    trace_parser.add_argument(
        "--format", default="summary",
        choices=["summary", "chrome", "prometheus", "csv"],
        help="export format (default summary; chrome = Chrome "
             "trace-event JSON for chrome://tracing / Perfetto)")
    trace_parser.add_argument("--out",
                              help="write the export to a file "
                                   "instead of stdout")

    observe_parser = sub.add_parser("observe",
                                    help=_SUMMARIES["observe"])
    observe_parser.add_argument("journal",
                                help="journal JSONL file (from a "
                                     "campaign --journal run or "
                                     "write_jsonl)")
    observe_parser.add_argument("--kind",
                                help="only show events of this kind "
                                     "(exact or prefix, e.g. 'switch')")
    observe_parser.add_argument("--shard",
                                help="only show events attributed to "
                                     "this shard (replica group)")
    observe_parser.add_argument("--limit", type=int,
                                help="cap the timeline at N events")
    observe_parser.add_argument("--no-timeline", action="store_true",
                                help="print only the summary")
    observe_parser.add_argument("--html",
                                help="also write a self-contained HTML "
                                     "report to this path")

    bench_parser = sub.add_parser("bench", help=_SUMMARIES["bench"])
    bench_parser.add_argument("--quick", action="store_true",
                              help="CI-smoke sizing (seconds per "
                                   "profile instead of minutes)")
    bench_parser.add_argument("--out-dir", default=".",
                              help="directory for BENCH_*.json "
                                   "artifacts (default: cwd)")
    bench_parser.add_argument("--profile", action="append",
                              help="run only this profile (repeatable; "
                                   "default: all; see --list)")
    bench_parser.add_argument("--list", action="store_true",
                              dest="list_profiles",
                              help="list the available profiles and "
                                   "exit")

    check_parser = sub.add_parser("check", help=_SUMMARIES["check"])
    mode = check_parser.add_mutually_exclusive_group()
    mode.add_argument("--explore", action="store_true",
                      help="explore schedules of the canonical "
                           "crash/switch scenario (the default mode)")
    mode.add_argument("--replay", metavar="ARTIFACT",
                      help="replay a repro artifact byte-identically "
                           "and re-verify its violations")
    mode.add_argument("--minimize", metavar="ARTIFACT",
                      help="greedily shrink a repro artifact while it "
                           "still fails, then replay it")
    check_parser.add_argument("--scenario",
                              choices=("crash", "partition"),
                              default="crash",
                              help="canonical scenario to explore: "
                                   "the crash/switch default, or the "
                                   "partition/heal/merge scenario "
                                   "under primary-partition "
                                   "membership (default crash)")
    check_parser.add_argument("--budget", type=int, default=200,
                              help="schedules to explore (default 200)")
    check_parser.add_argument("--walk-seed", type=int, default=0,
                              help="base random-walk seed (default 0)")
    check_parser.add_argument("--tie-choices", type=int, default=4,
                              help="tie-break fan-out per scheduling "
                                   "decision (default 4)")
    check_parser.add_argument("--delay-bound", type=float, default=150.0,
                              help="extra per-message delay bound [us] "
                                   "(default 150)")
    check_parser.add_argument("--mutation",
                              help="seed a named protocol mutation "
                                   "(checker self-test)")
    check_parser.add_argument("--keep-going", action="store_true",
                              help="explore the full budget instead of "
                                   "stopping at the first violation")
    check_parser.add_argument("--artifact", metavar="PATH",
                              help="where to write the repro artifact "
                                   "(default repro_violation.json)")

    cluster_parser = sub.add_parser("cluster",
                                    help=_SUMMARIES["cluster"])
    cluster_sub = cluster_parser.add_subparsers(dest="action",
                                                required=True)
    summary_parser = cluster_sub.add_parser(
        "summary", help="run a sharded closed-loop load and print "
                        "per-shard rollups")
    summary_parser.add_argument("--shards", type=int, default=4,
                                help="shard count (default 4)")
    summary_parser.add_argument("--clients", type=int, default=12,
                                help="closed-loop clients (default 12)")
    summary_parser.add_argument("--cycle", type=int, default=20,
                                help="requests per client (default 20)")
    route_parser = cluster_sub.add_parser(
        "route", help="show which shard owns each key under the "
                      "deterministic hash map")
    route_parser.add_argument("keys", nargs="+",
                              help="object key(s) to route")
    route_parser.add_argument("--shards", type=int, default=4,
                              help="shard count (default 4)")
    rebalance_parser = cluster_sub.add_parser(
        "rebalance", help="migrate keys under live traffic and verify "
                          "no acked update is lost")
    rebalance_parser.add_argument("--shards", type=int, default=2,
                                  help="shard count (default 2)")
    rebalance_parser.add_argument("--clients", type=int, default=2,
                                  help="closed-loop clients (default 2)")
    rebalance_parser.add_argument("--cycle", type=int, default=16,
                                  help="requests per client (default 16)")
    replay_parser = cluster_sub.add_parser(
        "replay", help="render the cluster events (map changes, "
                       "migrations) of a journal JSONL file")
    replay_parser.add_argument("journal", help="journal JSONL file")

    slo_parser = sub.add_parser("slo", help=_SUMMARIES["slo"])
    slo_sub = slo_parser.add_subparsers(dest="action", required=True)
    slo_status_parser = slo_sub.add_parser(
        "status", help="per-shard error-budget table")
    slo_alerts_parser = slo_sub.add_parser(
        "alerts", help="burn-rate alert log")
    slo_report_parser = slo_sub.add_parser(
        "report", help="status + alerts + fault/alert cross-check")
    for action_parser in (slo_status_parser, slo_alerts_parser,
                          slo_report_parser):
        action_parser.add_argument(
            "journal", help="journal JSONL file (from a campaign "
                            "--journal run or write_jsonl)")
        action_parser.add_argument(
            "--spec", help="SLO spec JSON file (default: the built-in "
                           "three-nines availability objective)")
    for action_parser in (slo_status_parser, slo_report_parser):
        action_parser.add_argument(
            "--html", help="also write the self-contained HTML fleet "
                           "panel to this path")

    sub.add_parser("report", help=_SUMMARIES["report"])
    sub.add_parser("verify", help=_SUMMARIES["verify"])
    return parser


_COMMANDS = {
    "bench": _cmd_bench,
    "breakdown": _cmd_breakdown,
    "check": _cmd_check,
    "cluster": _cmd_cluster,
    "profile": _cmd_profile,
    "policy": _cmd_policy,
    "adaptive": _cmd_adaptive,
    "campaign": _cmd_campaign,
    "observe": _cmd_observe,
    "report": _cmd_report,
    "slo": _cmd_slo,
    "trace": _cmd_trace,
    "verify": _cmd_verify,
}

#: Global options that consume a value; the unknown-command scan must
#: skip their arguments to find the subcommand token.
_VALUE_OPTIONS = ("--seed", "--requests")


def _find_command(argv: List[str]) -> Optional[str]:
    """The first positional token of ``argv`` (the subcommand), or
    None when only options are present."""
    skip = False
    for token in argv:
        if skip:
            skip = False
            continue
        if token in _VALUE_OPTIONS:
            skip = True
            continue
        if token.startswith("-"):
            continue
        return token
    return None


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    command = _find_command(argv)
    if command is not None and command not in _COMMANDS:
        lines = [f"repro: unknown command {command!r}", "", "commands:"]
        for name in sorted(_COMMANDS):
            lines.append(f"  {name:10s} {_SUMMARIES[name]}")
        print("\n".join(lines), file=sys.stderr)
        return 2
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
