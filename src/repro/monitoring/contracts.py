"""Behavioural contracts and warnings.

Section 2 requires "defining contracts for the specified behavior of
the overall system"; Section 3.1 adds that the replicator "generates
warnings when the operating conditions are about to change" and, if a
contract "can no longer be honored", offers degraded alternatives or
notifies the operator.

A :class:`Contract` is a named predicate over metric snapshots with a
margin: inside the margin a *warning* fires (conditions about to
change); beyond the limit a *violation* fires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.monitoring.sensors import MetricsSnapshot


class ContractStatus(enum.Enum):
    """Honoured / warning / violated state of a contract."""
    HONOURED = "honoured"
    WARNING = "warning"
    VIOLATED = "violated"


@dataclass(frozen=True)
class Contract:
    """A bound on one metric, with a warning margin on the correct side.

    ``metric`` names a :class:`MetricsSnapshot` field.  With
    ``bound="upper"`` (latency, jitter, queue depth) the contract is
    violated when the metric exceeds ``limit`` and in warning state
    when it exceeds ``limit * warning_fraction``.  With
    ``bound="lower"`` (availability, throughput — properties that must
    stay *above* a floor) the contract is violated when the metric
    drops below ``limit``, and the warning band of the same relative
    width sits *above* the limit: warning when the metric drops below
    ``limit * (2 - warning_fraction)``.
    """

    name: str
    metric: str
    limit: float
    warning_fraction: float = 0.8
    bound: str = "upper"

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ValueError("contract limit must be positive")
        if not 0.0 < self.warning_fraction <= 1.0:
            raise ValueError("warning fraction must be in (0, 1]")
        if self.bound not in ("upper", "lower"):
            raise ValueError("bound must be 'upper' or 'lower'")

    @property
    def warning_threshold(self) -> float:
        """Where the warning band starts (inside the honoured region)."""
        if self.bound == "upper":
            return self.limit * self.warning_fraction
        return self.limit * (2.0 - self.warning_fraction)

    def evaluate(self, snapshot: MetricsSnapshot) -> ContractStatus:
        """Status of this contract against one snapshot."""
        value = getattr(snapshot, self.metric)
        if self.bound == "upper":
            if value > self.limit:
                return ContractStatus.VIOLATED
            if value > self.warning_threshold:
                return ContractStatus.WARNING
        else:
            if value < self.limit:
                return ContractStatus.VIOLATED
            if value < self.warning_threshold:
                return ContractStatus.WARNING
        return ContractStatus.HONOURED


@dataclass(frozen=True)
class ContractEvent:
    """A status transition of one contract."""

    time: float
    contract: str
    status: ContractStatus
    value: float


class ContractMonitor:
    """Evaluates a set of contracts against successive snapshots and
    reports status *transitions* to subscribers."""

    def __init__(self, contracts: Optional[List[Contract]] = None,
                 journal: Optional[object] = None,
                 host: str = "monitor"):
        self.contracts: List[Contract] = list(contracts or [])
        self._status: Dict[str, ContractStatus] = {}
        self._subscribers: List[Callable[[ContractEvent], None]] = []
        self.events: List[ContractEvent] = []
        #: Optional dependability journal; transitions are recorded as
        #: ``contract.<status>`` events attributed to ``host``.
        self.journal = journal
        self.host = host

    def add(self, contract: Contract) -> None:
        """Register another contract (names must be unique)."""
        if any(c.name == contract.name for c in self.contracts):
            raise ValueError(f"duplicate contract name: {contract.name}")
        self.contracts.append(contract)

    def subscribe(self, callback: Callable[[ContractEvent], None]) -> None:
        """Invoke ``callback`` on every status transition."""
        self._subscribers.append(callback)

    def evaluate(self, snapshot: MetricsSnapshot) -> Dict[str, ContractStatus]:
        """Evaluate all contracts; emit events on transitions."""
        result = {}
        for contract in self.contracts:
            status = contract.evaluate(snapshot)
            result[contract.name] = status
            previous = self._status.get(contract.name,
                                        ContractStatus.HONOURED)
            if status is not previous:
                event = ContractEvent(
                    time=snapshot.time, contract=contract.name,
                    status=status,
                    value=getattr(snapshot, contract.metric))
                self.events.append(event)
                if self.journal is not None and self.journal.enabled:
                    self.journal.record(
                        snapshot.time, self.host, "monitor",
                        f"contract.{status.value}",
                        contract=contract.name, metric=contract.metric,
                        value=getattr(snapshot, contract.metric),
                        limit=contract.limit, bound=contract.bound)
                for subscriber in self._subscribers:
                    subscriber(event)
            self._status[contract.name] = status
        return result

    def status(self, name: str) -> ContractStatus:
        """Last known status of the named contract."""
        return self._status.get(name, ContractStatus.HONOURED)

    @property
    def all_honoured(self) -> bool:
        return all(s is ContractStatus.HONOURED
                   for s in self._status.values())
