"""The replicated system-state object.

Section 3.1: "the replicator ... maintains (using the group
communication layer) within itself an identically replicated object
with information about the entire system ... All of the decisions to
re-tune the system parameters ... are made in a distributed manner by
a deterministic algorithm that takes this replicated state as its
input."

:class:`ReplicatedState` implements exactly that: each participant
publishes key/value updates over an AGREED multicast; because updates
are totally ordered, every participant holds an identical map after
the same prefix of updates, so a deterministic policy evaluated
locally reaches the same decision everywhere without extra agreement
rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.gcs.client import GcsClient
from repro.gcs.messages import Grade, GroupView, MemberId


@dataclass(frozen=True)
class StateUpdate:
    """One key/value publication."""

    key: str
    value: Any
    publisher: MemberId

    @property
    def wire_bytes(self) -> int:
        return 96


class ReplicatedState:
    """An identically-replicated key/value map over a GCS group."""

    def __init__(self, gcs: GcsClient, group: str):
        self.gcs = gcs
        self.group = group
        self._data: Dict[str, Any] = {}
        self._version = 0
        self._listeners: List[Callable[[str, Any], None]] = []
        gcs.join(group, _StateListener(self))

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(self, key: str, value: Any) -> None:
        """Publish an update; it lands in everyone's map (including
        this one) in the same totally-ordered position."""
        update = StateUpdate(key=key, value=value, publisher=self.gcs.member)
        self.gcs.multicast(self.group, update, update.wire_bytes,
                           grade=Grade.AGREED)

    def publish_own(self, suffix: str, value: Any) -> None:
        """Publish under a per-member key (``<member>/<suffix>``)."""
        self.publish(f"{self.gcs.member}/{suffix}", value)

    # ------------------------------------------------------------------
    # Reads (local, already agreed)
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Read a key from the local (agreed) copy."""
        return self._data.get(key, default)

    def items_matching(self, suffix: str) -> Dict[str, Any]:
        """All per-member values published under ``suffix``."""
        out = {}
        for key, value in self._data.items():
            if key.endswith(f"/{suffix}"):
                out[key] = value
        return out

    def values_matching(self, suffix: str) -> List[Any]:
        """Values of all per-member keys with ``suffix``."""
        return list(self.items_matching(suffix).values())

    @property
    def version(self) -> int:
        """Number of updates applied (identical across members after
        the same delivery prefix)."""
        return self._version

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the whole map."""
        return dict(self._data)

    def on_update(self, listener: Callable[[str, Any], None]) -> None:
        """Invoke ``listener(key, value)`` on every applied update."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Delivery (from the GCS)
    # ------------------------------------------------------------------
    def _apply(self, update: StateUpdate) -> None:
        self._data[update.key] = update.value
        self._version += 1
        for listener in self._listeners:
            listener(update.key, update.value)


class _StateListener:
    def __init__(self, state: ReplicatedState):
        self._state = state

    def on_message(self, group: str, sender: MemberId, payload: Any,
                   nbytes: int) -> None:
        if isinstance(payload, StateUpdate):
            self._state._apply(payload)

    def on_view(self, view: GroupView, joined, left, crashed) -> None:
        """Membership of the monitoring group is informational only."""
