"""Time-windowed metric aggregation.

The replicator "monitors various system metrics (e.g., latency,
jitter, CPU load) in order to evaluate the conditions in the working
environment" (Section 2).  Sensors store samples in sliding windows so
policies react to *recent* conditions rather than lifetime averages.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Tuple


class SlidingWindow:
    """Samples within the trailing ``window_us`` microseconds."""

    def __init__(self, window_us: float = 1_000_000.0):
        if window_us <= 0:
            raise ValueError("window must be positive")
        self.window_us = window_us
        self._samples: Deque[Tuple[float, float]] = deque()
        self.total_count = 0

    def add(self, time: float, value: float) -> None:
        """Record one sample at ``time``."""
        self._samples.append((time, value))
        self.total_count += 1
        self._expire(time)

    def _expire(self, now: float) -> None:
        cutoff = now - self.window_us
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    # ------------------------------------------------------------------
    # Aggregates (over the current window)
    # ------------------------------------------------------------------
    def values(self, now: Optional[float] = None) -> List[float]:
        """Samples currently inside the window."""
        if now is not None:
            self._expire(now)
        return [v for _, v in self._samples]

    def count(self, now: Optional[float] = None) -> int:
        """Number of samples inside the window."""
        if now is not None:
            self._expire(now)
        return len(self._samples)

    def mean(self, now: Optional[float] = None) -> float:
        """Mean of the windowed samples (0 when empty)."""
        values = self.values(now)
        return sum(values) / len(values) if values else 0.0

    def std(self, now: Optional[float] = None) -> float:
        """Population standard deviation — the paper's 'jitter'."""
        values = self.values(now)
        if len(values) < 2:
            return 0.0
        mean = sum(values) / len(values)
        return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))

    def percentile(self, fraction: float,
                   now: Optional[float] = None) -> float:
        """Windowed percentile at ``fraction`` in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        values = sorted(self.values(now))
        if not values:
            return 0.0
        index = min(len(values) - 1, int(fraction * len(values)))
        return values[index]

    def maximum(self, now: Optional[float] = None) -> float:
        """Largest windowed sample (0 when empty)."""
        values = self.values(now)
        return max(values) if values else 0.0

    def rate_per_second(self, now: float) -> float:
        """Events per second over the window (for arrival rates)."""
        self._expire(now)
        if not self._samples:
            return 0.0
        span = max(now - self._samples[0][0], 1.0)
        return len(self._samples) / span * 1_000_000.0
