"""Metric sensors: latency, jitter, arrival rate, bandwidth, CPU.

A :class:`MetricsHub` aggregates the sensors of one process and
renders a :class:`MetricsSnapshot` — the unit that gets published into
the replicated system state and fed to adaptation policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.monitoring.windows import SlidingWindow
from repro.net.stats import NetworkStats
from repro.sim.host import Cpu
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class MetricsSnapshot:
    """One process's view of the working conditions at an instant."""

    time: float
    latency_mean_us: float = 0.0
    latency_jitter_us: float = 0.0
    request_rate_per_s: float = 0.0
    bandwidth_mbps: float = 0.0
    cpu_utilization: float = 0.0
    #: Quantiles from the telemetry registry's latency histogram
    #: (0.0 when telemetry is off or no samples landed yet).
    latency_p50_us: float = 0.0
    latency_p99_us: float = 0.0
    #: Replicator intake-queue depth and last checkpoint size, read
    #: from the telemetry registry when present.
    queue_depth: float = 0.0
    checkpoint_bytes: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict rendition for publication/serialization."""
        return {
            "time": self.time,
            "latency_mean_us": self.latency_mean_us,
            "latency_jitter_us": self.latency_jitter_us,
            "request_rate_per_s": self.request_rate_per_s,
            "bandwidth_mbps": self.bandwidth_mbps,
            "cpu_utilization": self.cpu_utilization,
            "latency_p50_us": self.latency_p50_us,
            "latency_p99_us": self.latency_p99_us,
            "queue_depth": self.queue_depth,
            "checkpoint_bytes": self.checkpoint_bytes,
        }


class LatencySensor:
    """Round-trip latency samples; mean is the paper's 'latency' and
    the standard deviation its 'jitter'."""

    def __init__(self, window_us: float = 1_000_000.0):
        self.window = SlidingWindow(window_us)

    def record(self, time: float, latency_us: float) -> None:
        """Record one round-trip latency sample."""
        self.window.add(time, latency_us)

    def mean(self, now: float) -> float:
        """Windowed mean latency."""
        return self.window.mean(now)

    def jitter(self, now: float) -> float:
        """Windowed latency standard deviation."""
        return self.window.std(now)


class RateSensor:
    """Arrival-rate estimation (Fig. 6's 'request rate [req/s]')."""

    def __init__(self, window_us: float = 1_000_000.0):
        self.window = SlidingWindow(window_us)

    def record_arrival(self, time: float) -> None:
        """Record one arrival event."""
        self.window.add(time, 1.0)

    def rate(self, now: float) -> float:
        """Windowed arrival rate in events/second."""
        return self.window.rate_per_second(now)


class BandwidthSensor:
    """Recent network throughput, read from the LAN's accounting."""

    def __init__(self, stats: NetworkStats):
        self._stats = stats

    def mbps(self, now: float) -> float:
        """Recent LAN throughput in MB/s."""
        return self._stats.bandwidth_mbps(now)


class CpuSensor:
    """CPU utilization over successive sampling intervals."""

    def __init__(self, cpu: Cpu):
        self._cpu = cpu
        self._last_busy = 0.0
        self._last_time = 0.0
        self._utilization = 0.0

    def sample(self, now: float) -> float:
        """Utilization over the interval since the last sample."""
        elapsed = now - self._last_time
        if elapsed > 0:
            busy = self._cpu.busy_us
            self._utilization = min(1.0, (busy - self._last_busy) / elapsed)
            self._last_busy = busy
            self._last_time = now
        return self._utilization

    @property
    def utilization(self) -> float:
        return self._utilization


class MetricsHub:
    """All sensors of one process, snapshot-able in one call.

    When the simulator runs with telemetry enabled, the hub reads the
    shared :class:`~repro.telemetry.metrics.MetricsRegistry` too, so
    snapshots gain latency quantiles, queue depth and checkpoint
    size alongside the windowed sensor values (``registry=None`` and
    disabled telemetry both degrade to zeros).
    """

    def __init__(self, sim: Simulator,
                 network_stats: Optional[NetworkStats] = None,
                 cpu: Optional[Cpu] = None,
                 window_us: float = 1_000_000.0,
                 registry: Optional[object] = None):
        self.sim = sim
        self.latency = LatencySensor(window_us)
        self.rate = RateSensor(window_us)
        self.bandwidth = BandwidthSensor(network_stats) \
            if network_stats is not None else None
        self.cpu = CpuSensor(cpu) if cpu is not None else None
        self.registry = (registry if registry is not None
                         else getattr(sim.telemetry, "metrics", None))

    def record_request(self) -> None:
        """Count one request arrival now."""
        self.rate.record_arrival(self.sim.now)

    def record_latency(self, latency_us: float) -> None:
        """Record one latency sample now."""
        self.latency.record(self.sim.now, latency_us)

    def snapshot(self) -> MetricsSnapshot:
        """Freeze all sensors into a :class:`MetricsSnapshot`."""
        now = self.sim.now
        p50 = p99 = queue = ckpt = 0.0
        registry = self.registry
        if registry is not None:
            latency = registry.merged_histogram("request_latency_us")
            if latency is not None and latency.count:
                p50 = latency.quantile(0.50)
                p99 = latency.quantile(0.99)
            depths = [metric.value for _, metric
                      in registry.find("replicator_queue_depth")]
            queue = max(depths) if depths else 0.0
            ckpts = registry.merged_histogram("checkpoint_bytes")
            if ckpts is not None and ckpts.count:
                ckpt = ckpts.mean
        return MetricsSnapshot(
            time=now,
            latency_mean_us=self.latency.mean(now),
            latency_jitter_us=self.latency.jitter(now),
            request_rate_per_s=self.rate.rate(now),
            bandwidth_mbps=(self.bandwidth.mbps(now)
                            if self.bandwidth is not None else 0.0),
            cpu_utilization=(self.cpu.sample(now)
                             if self.cpu is not None else 0.0),
            latency_p50_us=p50,
            latency_p99_us=p99,
            queue_depth=queue,
            checkpoint_bytes=ckpt,
        )
