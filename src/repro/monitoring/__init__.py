"""Monitoring: sensors, replicated state and contracts.

Public surface:

- :class:`SlidingWindow` — time-windowed aggregation
- :class:`MetricsHub`, :class:`MetricsSnapshot` and the individual
  sensors (:class:`LatencySensor`, :class:`RateSensor`,
  :class:`BandwidthSensor`, :class:`CpuSensor`)
- :class:`ReplicatedState` — the identically-replicated system-state
  object adaptation decisions are computed from
- :class:`Contract`, :class:`ContractMonitor`, :class:`ContractStatus`,
  :class:`ContractEvent` — behavioural contracts and warnings
"""

from repro.monitoring.contracts import (
    Contract,
    ContractEvent,
    ContractMonitor,
    ContractStatus,
)
from repro.monitoring.replicated_state import ReplicatedState, StateUpdate
from repro.monitoring.sensors import (
    BandwidthSensor,
    CpuSensor,
    LatencySensor,
    MetricsHub,
    MetricsSnapshot,
    RateSensor,
)
from repro.monitoring.windows import SlidingWindow

__all__ = [
    "BandwidthSensor",
    "Contract",
    "ContractEvent",
    "ContractMonitor",
    "ContractStatus",
    "CpuSensor",
    "LatencySensor",
    "MetricsHub",
    "MetricsSnapshot",
    "RateSensor",
    "ReplicatedState",
    "SlidingWindow",
    "StateUpdate",
]
