"""Trace context: the compact token that rides along with a request.

The paper's stack crosses four process boundaries per invocation
(client stub -> interposer/replicator -> GCS daemon hops -> server
servant and back).  To attribute measured time to the right request,
each hop must carry *which trace* it belongs to and *which span* is
its causal parent.  Real CORBA carries such data in GIOP *service
contexts*; this module defines the equivalent for the simulation: a
frozen :class:`TraceContext` stored under a well-known key in a
message's ``service_contexts`` dict (GIOP messages) or exposed via a
``trace_context`` property (GCS frame payload wrappers).

The context is deliberately tiny — the wire representation would be
two 64-bit ids plus a string trace id (:data:`CONTEXT_WIRE_BYTES`).
The simulation does not add it to ``payload_bytes``: the paper's
measurements were taken without tracing enabled, and keeping the
byte accounting identical keeps calibration anchors intact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

#: Key under which the context lives in ``service_contexts`` dicts.
SERVICE_CONTEXT_TRACE = "telemetry.trace"

#: Nominal encoded size of a context (trace id hash + two span ids +
#: flags), documented for the overhead budget in docs/observability.md.
CONTEXT_WIRE_BYTES = 24


@dataclass(frozen=True)
class TraceContext:
    """Immutable trace token propagated across hops.

    ``trace_id``
        The request id of the originating invocation; all spans of one
        logical request (including per-replica forks) share it.
    ``root_id``
        Span id of the trace's root span (the whole round trip).
    ``span_id``
        Causal parent for spans opened under this context.
    ``inflight``
        Id of an open *transit* span (a cross-process interval whose
        end is observed by the receiver), or 0 when none is pending.
    """

    trace_id: str
    root_id: int
    span_id: int
    inflight: int = 0

    def in_transit(self, transit_id: int) -> "TraceContext":
        """Context carried *inside* a transit span: new spans parent to
        the transit span, and the receiver knows which span to close."""
        return replace(self, span_id=transit_id, inflight=transit_id)

    def at_root(self) -> "TraceContext":
        """Context after a hop completed: parent back to the root."""
        return replace(self, span_id=self.root_id, inflight=0)


def context_of(message: Any) -> Optional[TraceContext]:
    """Extract the trace context from a GIOP request/reply (or any
    object with a ``service_contexts`` dict); None when absent."""
    contexts = getattr(message, "service_contexts", None)
    if not contexts:
        return None
    ctx = contexts.get(SERVICE_CONTEXT_TRACE)
    return ctx if isinstance(ctx, TraceContext) else None


def set_context(message: Any, ctx: TraceContext) -> None:
    """Install ``ctx`` on a GIOP message's service contexts."""
    message.service_contexts[SERVICE_CONTEXT_TRACE] = ctx


def payload_context(payload: Any) -> Optional[TraceContext]:
    """Duck-typed context lookup for GCS frame payloads.

    GCS wrappers (Forward/Stamped/Direct/...) expose ``trace_context``
    by delegating to their wrapped replication message, which in turn
    reads the GIOP service contexts.  Control messages (heartbeats,
    acks, view changes) expose nothing and return None.
    """
    ctx = getattr(payload, "trace_context", None)
    return ctx if isinstance(ctx, TraceContext) else None
