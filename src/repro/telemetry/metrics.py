"""Metrics registry: counters, gauges, and mergeable histograms.

Subsystems register named instruments once and update them on their
hot paths; the registry is the single export surface (Prometheus
text, per-trial summaries) and feeds quantiles into the monitoring
snapshots that drive adaptation.

Histograms use *fixed* bucket bounds so two histograms with the same
bounds merge by adding counts — the property that lets a campaign
aggregate per-trial state without keeping raw samples (the same trick
Prometheus client libraries use).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Default latency bucket upper bounds in µs: geometric, spanning the
#: paper's 100 µs..7 ms operating range with headroom for outages.
DEFAULT_LATENCY_BUCKETS_US = (
    50.0, 100.0, 200.0, 400.0, 800.0, 1_600.0, 3_200.0, 6_400.0,
    12_800.0, 25_600.0, 51_200.0, 102_400.0, 409_600.0, 1_638_400.0,
)

#: Default byte-size bucket bounds (checkpoints, payloads).
DEFAULT_BYTES_BUCKETS = (
    64.0, 256.0, 1_024.0, 4_096.0, 16_384.0, 65_536.0, 262_144.0,
    1_048_576.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value (queue depths, sizes)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the gauge by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the gauge by ``amount``."""
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with mergeable state.

    ``bounds`` are inclusive upper bounds; an implicit +Inf bucket
    catches overflow.  ``quantile`` interpolates linearly inside the
    selected bucket (the usual Prometheus ``histogram_quantile``
    estimate), clamping the overflow bucket to its lower bound.
    """

    __slots__ = ("bounds", "counts", "count", "sum")
    kind = "histogram"

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS_US):
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample into its bucket (overflow past the bounds)."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        """Add ``other``'s state into this histogram (same bounds).

        Merging an *empty* histogram is a no-op regardless of bounds —
        an unpopulated instrument carries no information, so it cannot
        conflict.  Symmetrically, an empty histogram adopts the bounds
        of the first populated one merged into it.
        """
        if other.count == 0:
            return
        if other.bounds != self.bounds:
            if self.count == 0:
                self.bounds = other.bounds
                self.counts = [0] * (len(other.bounds) + 1)
            else:
                raise ValueError("cannot merge histograms with different "
                                 f"bounds: {self.bounds} vs {other.bounds}")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 <= q <= 1); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            return 0.0
        if self.count == 1:
            # One sample: every quantile is that sample, and ``sum``
            # still holds its exact value — no need to interpolate a
            # bucket midpoint out of it.  Overflow keeps the usual
            # clamp to the last bound.
            return min(self.sum, self.bounds[-1])
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                if i == len(self.bounds):
                    return self.bounds[-1]  # overflow: clamp
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                within = (rank - cumulative) / n
                return lower + (upper - lower) * within
            cumulative += n
        return self.bounds[-1]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready state (mergeable: counts + bounds + sum)."""
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "sum": self.sum}


class MetricsRegistry:
    """Named instrument store with label support.

    ``counter("x_total", replica="s01")`` is get-or-create: the first
    call registers, later calls with the same name+labels return the
    same instrument (so instrumented code never needs an init order).
    Re-registering a name as a different kind is an error.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}

    def _get(self, name: str, kind: str, factory, labels: Dict[str, str]):
        if not name or not name.replace("_", "a").isidentifier():
            raise ValueError(f"bad metric name: {name!r}")
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ValueError(f"metric {name!r} already registered "
                             f"as {known}, not {kind}")
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
            self._kinds[name] = kind
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get(name, "counter", Counter, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get(name, "gauge", Gauge, labels)

    def histogram(self, name: str,
                  bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS_US,
                  **labels: str) -> Histogram:
        """Get or create the histogram ``name``; ``bounds`` only bind
        on creation (later calls must not disagree on kind)."""
        return self._get(name, "histogram",
                         lambda: Histogram(bounds), labels)

    def items(self) -> Iterator[Tuple[str, Dict[str, str], object]]:
        """Iterate ``(name, labels, metric)`` sorted by name+labels."""
        for (name, labels) in sorted(self._metrics):
            yield name, dict(labels), self._metrics[(name, labels)]

    def find(self, name: str) -> List[Tuple[Dict[str, str], object]]:
        """All label-sets registered under ``name``."""
        return [(dict(labels), metric)
                for (n, labels), metric in sorted(self._metrics.items())
                if n == name]

    def merged_histogram(self, name: str,
                         **labels: str) -> Optional[Histogram]:
        """Merge every label-set of histogram ``name`` into one view
        (e.g. the group-wide latency distribution); None if absent.

        ``labels`` restricts the merge to label-sets that carry all the
        given items — ``merged_histogram("request_latency_us",
        shard="shard0")`` is one shard's latency distribution.
        """
        want = {(k, str(v)) for k, v in labels.items()}
        merged: Optional[Histogram] = None
        matched = False
        for label_set, metric in self.find(name):
            if not isinstance(metric, Histogram):
                return None
            if want and not want <= set(label_set.items()):
                continue
            matched = True
            if merged is None:
                merged = Histogram(metric.bounds)
            merged.merge(metric)
        return merged if matched else None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dump of every instrument (for trial summaries)."""
        out: Dict[str, object] = {}
        for name, labels, metric in self.items():
            key = name
            if labels:
                rendered = ",".join(f"{k}={v}"
                                    for k, v in sorted(labels.items()))
                key = f"{name}{{{rendered}}}"
            if isinstance(metric, Histogram):
                out[key] = metric.to_dict()
            else:
                out[key] = metric.value  # type: ignore[union-attr]
        return out

    def __len__(self) -> int:
        return len(self._metrics)
