"""repro.telemetry — causal request tracing and metrics.

The observability layer of the reproduction: request-scoped spans
propagated through every hop of the replication stack (client stub ->
interposer -> replicator -> GCS daemons -> servant and back), a
metrics registry with mergeable histograms, critical-path analysis
that re-derives the paper's Fig. 3 per-layer breakdown from measured
spans, and exporters (Chrome trace events, Prometheus text, CSV).

Telemetry is **off by default**: the simulator carries a dependency-
free no-op recorder (``repro.sim.kernel.NullTelemetry``) and every
instrumentation site guards on ``telemetry.enabled``.  Enable it via
``TelemetryConfig(enabled=True)`` in the substrate calibration; the
testbed then attaches a :class:`Telemetry` recorder.  Recording never
schedules events or adds simulated time, so simulation outcomes are
byte-identical with telemetry on or off.

Production modules import from the specific submodules
(``repro.telemetry.context`` etc.) to stay cycle-safe; this package
namespace is the convenience surface for tests, tools and the CLI.
"""

from repro.telemetry.analysis import (
    PathSegment,
    SpanStats,
    breakdown_table,
    completed_traces,
    component_breakdown,
    critical_path,
    exclusive_durations,
    style_aggregates,
    telemetry_summary,
    trace_component_us,
    validate_spans,
)
from repro.telemetry.context import (
    CONTEXT_WIRE_BYTES,
    SERVICE_CONTEXT_TRACE,
    TraceContext,
    context_of,
    payload_context,
    set_context,
)
from repro.telemetry.export import (
    chrome_trace_json,
    parse_chrome_trace,
    parse_prometheus_text,
    prometheus_text,
    spans_to_csv,
    to_chrome_trace,
)
from repro.telemetry.metrics import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import (
    KIND_CHARGED,
    KIND_MEASURED,
    KIND_TRANSIT,
    Span,
    Telemetry,
    spans_by_trace,
)

__all__ = [
    "CONTEXT_WIRE_BYTES",
    "Counter",
    "DEFAULT_BYTES_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_US",
    "Gauge",
    "Histogram",
    "KIND_CHARGED",
    "KIND_MEASURED",
    "KIND_TRANSIT",
    "MetricsRegistry",
    "PathSegment",
    "SERVICE_CONTEXT_TRACE",
    "Span",
    "SpanStats",
    "Telemetry",
    "TraceContext",
    "breakdown_table",
    "chrome_trace_json",
    "completed_traces",
    "component_breakdown",
    "context_of",
    "critical_path",
    "exclusive_durations",
    "parse_chrome_trace",
    "parse_prometheus_text",
    "payload_context",
    "prometheus_text",
    "set_context",
    "spans_by_trace",
    "spans_to_csv",
    "style_aggregates",
    "telemetry_summary",
    "to_chrome_trace",
    "trace_component_us",
    "validate_spans",
]
