"""Span model and the trace recorder.

A :class:`Span` is one attributed interval of a request's life —
marshalling on the client CPU, a GCS transit, a daemon hop, servant
execution.  Spans form a tree per trace: the root span covers the
whole round trip, layer spans hang off the root, and daemon-hop spans
hang off the GCS transit span they occur inside.

Two span kinds exist because the repo's accounting does:

``measured``
    Both endpoints observed from simulated time (CPU job boundaries
    or handoff/absorb points).  Most spans are measured.
``charged``
    The layer attributes a nominal cost without occupying simulated
    time (e.g. the server replicator's reply redirect, which the
    timeline charges while the reply is already in flight).  The span
    is synthesized as ``[now, now + cost]`` so per-component sums
    still match the :class:`~repro.orb.accounting.RequestTimeline`.

The enabled recorder is :class:`Telemetry`; the disabled one is the
kernel's ``NullTelemetry`` (see :mod:`repro.sim.kernel` — it lives
there, dependency-free, so the kernel never imports this package).
Every instrumentation site guards on ``telemetry.enabled`` before
doing any work, which keeps the disabled path to one attribute load
and one branch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.telemetry.context import TraceContext
from repro.telemetry.metrics import MetricsRegistry

#: Root spans and other non-layer spans carry an empty component so
#: they never pollute per-component breakdowns.
NO_COMPONENT = ""

KIND_MEASURED = "measured"
KIND_CHARGED = "charged"
#: Cross-process transit spans close at the *first* arrival (the
#: client-visible transit time); hops serving slower fan-out replicas
#: keep nesting under them and may legitimately end later.
KIND_TRANSIT = "transit"


@dataclass
class Span:
    """One attributed interval of one trace."""

    span_id: int
    trace_id: str
    parent_id: int  # 0 = root (no parent)
    name: str
    component: str
    host: str
    process: str
    start_us: float
    end_us: Optional[float] = None
    kind: str = KIND_MEASURED
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        """Span length (0.0 while still open)."""
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    @property
    def is_root(self) -> bool:
        return self.parent_id == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = f"{self.end_us:.1f}" if self.finished else "open"
        return (f"<Span #{self.span_id} {self.name} [{self.component}] "
                f"{self.start_us:.1f}..{end} trace={self.trace_id}>")


class Telemetry:
    """The enabled trace recorder: span store + metrics registry.

    One recorder serves one :class:`~repro.sim.kernel.Simulator`.  It
    never schedules events or consumes simulated time — recording is a
    pure observation, so simulation results are byte-identical with
    telemetry on or off (asserted in tests/telemetry).
    """

    enabled = True

    def __init__(self, max_spans: int = 200_000, trace: Any = None):
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self.metrics = MetricsRegistry()
        self._open: Dict[int, Span] = {}
        self._ids = itertools.count(1)
        self._trace = trace  # optional TraceLog for telemetry.* records

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def _new(self, trace_id: str, parent_id: int, name: str,
             component: str, host: str, process: str, start_us: float,
             kind: str = KIND_MEASURED,
             attrs: Optional[Dict[str, Any]] = None) -> Optional[Span]:
        if len(self.spans) >= self.max_spans:
            if self.dropped == 0 and self._trace is not None:
                self._trace.record(start_us, "telemetry.drop",
                                   f"span capacity {self.max_spans} "
                                   f"reached; dropping further spans")
            self.dropped += 1
            return None
        span = Span(span_id=next(self._ids), trace_id=trace_id,
                    parent_id=parent_id, name=name, component=component,
                    host=host, process=process, start_us=start_us,
                    kind=kind, attrs=attrs or {})
        self.spans.append(span)
        self._open[span.span_id] = span
        return span

    def start_trace(self, trace_id: str, name: str = "request",
                    host: str = "", process: str = "",
                    now: float = 0.0,
                    **attrs: Any) -> Optional[TraceContext]:
        """Open a root span; returns the context to propagate."""
        span = self._new(trace_id, 0, name, NO_COMPONENT, host, process,
                         now, attrs=dict(attrs) if attrs else None)
        if span is None:
            return None
        return TraceContext(trace_id=trace_id, root_id=span.span_id,
                            span_id=span.span_id)

    def begin(self, ctx: Optional[TraceContext], name: str,
              component: str, host: str = "", process: str = "",
              now: float = 0.0, **attrs: Any) -> Optional[Span]:
        """Open a child span under ``ctx``; close it with :meth:`end`."""
        if ctx is None:
            return None
        return self._new(ctx.trace_id, ctx.span_id, name, component,
                         host, process, now,
                         attrs=dict(attrs) if attrs else None)

    def end(self, span: Optional[Span], now: float) -> None:
        """Close an open span (no-op for None or already-closed)."""
        if span is None or span.end_us is not None:
            return
        span.end_us = now
        self._open.pop(span.span_id, None)

    def emit(self, ctx: Optional[TraceContext], name: str,
             component: str, start_us: float, end_us: float,
             host: str = "", process: str = "",
             kind: str = KIND_CHARGED, **attrs: Any) -> Optional[Span]:
        """Record an already-closed span (the *charged* case)."""
        if ctx is None:
            return None
        span = self._new(ctx.trace_id, ctx.span_id, name, component,
                         host, process, start_us, kind=kind,
                         attrs=dict(attrs) if attrs else None)
        if span is not None:
            span.end_us = end_us
            self._open.pop(span.span_id, None)
        return span

    # ------------------------------------------------------------------
    # Cross-process transit spans
    # ------------------------------------------------------------------
    def begin_transit(self, ctx: Optional[TraceContext], name: str,
                      component: str, now: float, host: str = "",
                      process: str = "", **attrs: Any
                      ) -> Tuple[Optional[Span], Optional[TraceContext]]:
        """Open a transit span whose *end* the receiver will observe.

        Returns ``(span, carried_ctx)``; the sender stores the carried
        context on the message so the receiving process can call
        :meth:`finish_inflight` and so hop spans nest under the
        transit span.
        """
        if ctx is None:
            return None, None
        span = self._new(ctx.trace_id, ctx.span_id, name, component,
                         host, process, now, kind=KIND_TRANSIT,
                         attrs=dict(attrs) if attrs else None)
        if span is None:
            return None, ctx
        return span, ctx.in_transit(span.span_id)

    def finish_inflight(self, ctx: Optional[TraceContext],
                        now: float) -> Optional[Span]:
        """Close the transit span carried by ``ctx``.

        First arrival wins: with active-style fan-out every replica
        receives the same multicast, but only the first close takes
        effect (later calls find the span already closed and no-op).
        """
        if ctx is None or not ctx.inflight:
            return None
        span = self._open.pop(ctx.inflight, None)
        if span is None:
            return None
        span.end_us = now
        return span

    def finish_trace(self, ctx: Optional[TraceContext],
                     now: float) -> Optional[Span]:
        """Close the trace's root span."""
        if ctx is None:
            return None
        span = self._open.pop(ctx.root_id, None)
        if span is None:
            return None
        span.end_us = now
        return span

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        return len(self._open)

    def traces(self) -> Dict[str, List[Span]]:
        """Spans grouped by trace id, in recording order."""
        grouped: Dict[str, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def __len__(self) -> int:
        return len(self.spans)


def spans_by_trace(spans: Iterable[Span]) -> Dict[str, List[Span]]:
    """Group any span iterable by trace id (recording order kept)."""
    grouped: Dict[str, List[Span]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    return grouped
