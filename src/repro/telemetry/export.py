"""Telemetry exporters: Chrome trace-event JSON, Prometheus text, CSV.

Each exporter has a matching parser so tests can round-trip the
output — the acceptance gate for the formats — and so downstream
tooling can consume the files without this package:

- ``chrome`` output loads in Perfetto / ``chrome://tracing`` (the
  JSON *trace event format*, complete-event ``"ph": "X"`` records);
- ``prometheus`` output follows the text exposition format
  (``# TYPE`` comments, cumulative ``_bucket{le=...}`` series);
- CSV mirrors the :mod:`repro.tools.export` conventions.
"""

from __future__ import annotations

import csv
import io
import json
import re
from typing import Dict, Iterable, List, Optional, TextIO

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import Span

# ----------------------------------------------------------------------
# Chrome trace events (Perfetto-loadable)
# ----------------------------------------------------------------------

def to_chrome_trace(spans: Iterable[Span]) -> Dict[str, object]:
    """Build the trace-event dict for a span set.

    Open spans are skipped (the format needs complete intervals).
    ``pid`` is the host, ``tid`` the process — Perfetto then renders
    one track per simulated process, which is exactly the paper's
    deployment diagram.
    """
    events: List[Dict[str, object]] = []
    for span in spans:
        if not span.finished:
            continue
        args: Dict[str, object] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "kind": span.kind,
        }
        args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.component or "trace",
            "ph": "X",
            "ts": span.start_us,
            "dur": span.duration_us,
            "pid": span.host or "sim",
            "tid": span.process or span.host or "sim",
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: Iterable[Span],
                      out: Optional[TextIO] = None) -> str:
    """Serialize spans as trace-event JSON; returns the text."""
    text = json.dumps(to_chrome_trace(spans), indent=1, sort_keys=True)
    if out is not None:
        out.write(text)
    return text


def parse_chrome_trace(text: str) -> List[Dict[str, object]]:
    """Parse trace-event JSON back into its event list.

    Validates the envelope and the fields every complete event must
    carry; raises ``ValueError`` on malformed input.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not JSON: {exc}") from exc
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("missing traceEvents envelope")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, event in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {i} missing {key!r}")
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError(f"complete event {i} missing 'dur'")
    return events


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------

def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry,
                    out: Optional[TextIO] = None) -> str:
    """Render the registry in the Prometheus text format."""
    buffer = io.StringIO()
    typed: set = set()
    for name, labels, metric in registry.items():
        kind = getattr(metric, "kind", "untyped")
        if name not in typed:
            buffer.write(f"# TYPE {name} {kind}\n")
            typed.add(name)
        if isinstance(metric, (Counter, Gauge)):
            buffer.write(f"{name}{_render_labels(labels)} "
                         f"{_format_value(metric.value)}\n")
        elif isinstance(metric, Histogram):
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(bound)
                buffer.write(f"{name}_bucket{_render_labels(bucket_labels)} "
                             f"{cumulative}\n")
            bucket_labels = dict(labels)
            bucket_labels["le"] = "+Inf"
            buffer.write(f"{name}_bucket{_render_labels(bucket_labels)} "
                         f"{metric.count}\n")
            buffer.write(f"{name}_sum{_render_labels(labels)} "
                         f"{_format_value(metric.sum)}\n")
            buffer.write(f"{name}_count{_render_labels(labels)} "
                         f"{metric.count}\n")
    text = buffer.getvalue()
    if out is not None:
        out.write(text)
    return text


_SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse the text exposition format into ``series -> value``.

    Keys are the canonical series strings (name plus sorted label
    set, e.g. ``x_bucket{le="100",replica="s01"}``); raises
    ``ValueError`` on malformed lines.
    """
    series: Dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SERIES_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a metric line: {raw!r}")
        labels: Dict[str, str] = dict(
            (k, v) for k, v in _LABEL_RE.findall(match.group("labels") or ""))
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value: {raw!r}") from exc
        key = match.group("name") + _render_labels(labels)
        series[key] = value
    return series


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------

SPAN_COLUMNS = ("trace_id", "span_id", "parent_id", "name", "component",
                "host", "process", "start_us", "end_us", "duration_us",
                "kind")


def spans_to_csv(spans: Iterable[Span],
                 out: Optional[TextIO] = None) -> str:
    """Write spans as CSV (open spans get an empty ``end_us``)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(SPAN_COLUMNS)
    for span in spans:
        writer.writerow([
            span.trace_id, span.span_id, span.parent_id, span.name,
            span.component, span.host, span.process,
            f"{span.start_us:.3f}",
            f"{span.end_us:.3f}" if span.finished else "",
            f"{span.duration_us:.3f}" if span.finished else "",
            span.kind])
    text = buffer.getvalue()
    if out is not None:
        out.write(text)
    return text
