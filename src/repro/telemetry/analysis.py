"""Trace analysis: critical paths and per-layer breakdowns.

This is the measured-span counterpart of the hand-threaded
:class:`~repro.orb.accounting.RequestTimeline` accounting: instead of
each layer *declaring* its cost, the spans recorded at CPU-job and
handoff boundaries are reduced to the same per-component numbers
(paper Fig. 3).  Tests cross-check the two within 5 %.

Durations are *exclusive* — a span's children are subtracted — so a
GCS transit span and the daemon-hop spans nested inside it never
double-count the group-communication component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.orb.accounting import ALL_COMPONENTS
from repro.telemetry.spans import KIND_TRANSIT, Span, spans_by_trace


def exclusive_durations(trace_spans: Iterable[Span]) -> Dict[int, float]:
    """Per-span exclusive time: duration minus finished children."""
    spans = [s for s in trace_spans if s.finished]
    child_time: Dict[int, float] = {}
    for span in spans:
        if span.parent_id:
            child_time[span.parent_id] = (child_time.get(span.parent_id, 0.0)
                                          + span.duration_us)
    return {s.span_id: max(0.0, s.duration_us
                           - child_time.get(s.span_id, 0.0))
            for s in spans}


def trace_component_us(trace_spans: Iterable[Span]) -> Dict[str, float]:
    """Exclusive time per Fig. 3 component for one trace."""
    spans = list(trace_spans)
    exclusive = exclusive_durations(spans)
    totals: Dict[str, float] = {}
    for span in spans:
        if span.component and span.span_id in exclusive:
            totals[span.component] = (totals.get(span.component, 0.0)
                                      + exclusive[span.span_id])
    return totals


def completed_traces(spans: Iterable[Span]) -> Dict[str, List[Span]]:
    """Traces whose root span finished (the round trip completed)."""
    complete: Dict[str, List[Span]] = {}
    for trace_id, trace_spans in spans_by_trace(spans).items():
        roots = [s for s in trace_spans if s.is_root]
        if roots and all(r.finished for r in roots):
            complete[trace_id] = trace_spans
    return complete


def component_breakdown(spans: Iterable[Span]) -> Dict[str, float]:
    """Mean per-request component breakdown over completed traces.

    The measured-span reproduction of Fig. 3: keys are
    :data:`~repro.orb.accounting.ALL_COMPONENTS`, values mean µs per
    completed round trip.  With replica fan-out this sums the work of
    *every* replica that participated (total resource usage); for the
    Fig. 3 single-replica configuration it matches the client-visible
    path that ``RequestTimeline`` records.
    """
    complete = completed_traces(spans)
    totals = {component: 0.0 for component in ALL_COMPONENTS}
    for trace_spans in complete.values():
        for component, micros in trace_component_us(trace_spans).items():
            if component in totals:
                totals[component] += micros
    n = len(complete)
    if n == 0:
        return totals
    return {component: micros / n for component, micros in totals.items()}


@dataclass(frozen=True)
class PathSegment:
    """One step of a trace's critical path."""

    span: Span
    #: Idle time between the previous segment's end and this start
    #: (network propagation, IPC waits not covered by any span).
    gap_us: float

    @property
    def start_us(self) -> float:
        return self.span.start_us

    @property
    def duration_us(self) -> float:
        return self.span.duration_us


def critical_path(trace_spans: Iterable[Span]) -> List[PathSegment]:
    """The sequential chain of leaf spans of one trace.

    A request is a single logical token moving through the stack, so
    the critical path is the time-ordered sequence of *leaf* spans
    (spans with no finished children); parent spans only aggregate.
    Gaps between consecutive leaves surface un-instrumented waits.
    """
    spans = [s for s in trace_spans if s.finished]
    has_children = {s.parent_id for s in spans if s.parent_id}
    leaves = sorted((s for s in spans
                     if s.span_id not in has_children and not s.is_root),
                    key=lambda s: (s.start_us, s.span_id))
    path: List[PathSegment] = []
    previous_end: Optional[float] = None
    for span in leaves:
        gap = 0.0
        if previous_end is not None:
            gap = max(0.0, span.start_us - previous_end)
        path.append(PathSegment(span=span, gap_us=gap))
        previous_end = max(previous_end or 0.0, span.end_us or 0.0)
    return path


@dataclass
class SpanStats:
    """Aggregate over one span name (per style)."""

    count: int = 0
    total_us: float = 0.0
    min_us: float = float("inf")
    max_us: float = 0.0

    def add(self, duration_us: float) -> None:
        """Fold one span duration into the running statistics."""
        self.count += 1
        self.total_us += duration_us
        self.min_us = min(self.min_us, duration_us)
        self.max_us = max(self.max_us, duration_us)

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


def style_aggregates(spans: Iterable[Span]
                     ) -> Dict[str, Dict[str, SpanStats]]:
    """Per-replication-style span aggregates.

    Spans recorded by the server replicator carry a ``style`` attr
    (``active``, ``warm_passive``, ...); spans without one aggregate
    under ``"-"``.  Result: style -> span name -> stats.
    """
    out: Dict[str, Dict[str, SpanStats]] = {}
    for span in spans:
        if not span.finished:
            continue
        style = str(span.attrs.get("style", "-"))
        stats = out.setdefault(style, {}).setdefault(span.name, SpanStats())
        stats.add(span.duration_us)
    return out


def validate_spans(spans: Iterable[Span],
                   epsilon_us: float = 1e-6) -> List[str]:
    """Check propagation invariants; returns human-readable violations.

    Invariants (they must hold even under fault injection — crashes
    and lost frames leave spans *open*, never orphaned or cross-wired):

    - every trace has exactly one root span;
    - every non-root span's parent exists and belongs to the same
      trace (no cross-wiring);
    - a finished child lies within its finished parent's interval —
      except that a child of a *transit* span may end after it:
      transit spans close at the first arrival (the client-visible
      transit time), while hops serving slower fan-out replicas
      continue past that point.
    """
    problems: List[str] = []
    for trace_id, trace_spans in spans_by_trace(spans).items():
        by_id = {s.span_id: s for s in trace_spans}
        roots = [s for s in trace_spans if s.is_root]
        if len(roots) != 1:
            problems.append(f"trace {trace_id}: {len(roots)} root spans")
        for span in trace_spans:
            if span.is_root:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                problems.append(f"trace {trace_id}: span #{span.span_id} "
                                f"({span.name}) parent #{span.parent_id} "
                                f"missing or cross-wired")
                continue
            if span.finished and parent.finished:
                ends_late = (span.end_us > parent.end_us + epsilon_us
                             and parent.kind != KIND_TRANSIT)
                if (span.start_us < parent.start_us - epsilon_us
                        or ends_late):
                    problems.append(
                        f"trace {trace_id}: span #{span.span_id} "
                        f"({span.name}) escapes parent "
                        f"#{parent.span_id} ({parent.name})")
    return problems


def telemetry_summary(telemetry) -> Dict[str, object]:
    """Compact JSON-ready summary of a recorder (per-trial payload)."""
    spans = list(telemetry.spans)
    complete = completed_traces(spans)
    summary: Dict[str, object] = {
        "spans": len(spans),
        "open_spans": sum(1 for s in spans if not s.finished),
        "dropped": telemetry.dropped,
        "traces": len(spans_by_trace(spans)),
        "traces_completed": len(complete),
        "breakdown_us": {k: round(v, 3)
                         for k, v in component_breakdown(spans).items()},
    }
    latency = telemetry.metrics.merged_histogram("request_latency_us")
    if latency is not None and latency.count:
        summary["latency_p50_us"] = round(latency.quantile(0.50), 3)
        summary["latency_p99_us"] = round(latency.quantile(0.99), 3)
    return summary


def breakdown_table(breakdown: Dict[str, float],
                    reference: Optional[Dict[str, float]] = None
                    ) -> List[Tuple[str, float, Optional[float]]]:
    """Rows for rendering: (component, measured, reference-or-None)."""
    rows: List[Tuple[str, float, Optional[float]]] = []
    for component in ALL_COMPONENTS:
        ref = reference.get(component) if reference else None
        rows.append((component, breakdown.get(component, 0.0), ref))
    return rows
