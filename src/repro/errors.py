"""Exception hierarchy for the versatile-dependability reproduction.

All library-raised exceptions derive from :class:`ReproError` so that
callers can distinguish library failures from programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class NetworkError(ReproError):
    """A network-substrate operation failed (e.g. unknown host)."""


class GroupCommunicationError(ReproError):
    """A group-communication operation failed (e.g. not joined)."""


class OrbError(ReproError):
    """A mini-ORB operation failed (e.g. invoking a dead reference)."""


class ReplicationError(ReproError):
    """A replication-layer operation failed."""


class AdaptationError(ReproError):
    """A replication-style switch or adaptation action failed."""


class ClusterError(ReproError):
    """A sharding/partition-map operation failed."""


class ContractViolation(ReproError):
    """A behavioural contract can no longer be honoured.

    Raised (or reported) when no configuration satisfies the operator's
    constraints, matching the paper's requirement that the system notify
    operators when "the tuning policy can no longer be honored".
    """


class PolicyError(ReproError):
    """A knob policy was mis-specified or cannot be evaluated."""


class ConfigurationError(ReproError):
    """An invalid parameter value was supplied."""


class VerificationError(ReproError):
    """A schedule-exploration or replay step failed mechanically.

    Raised by the ``repro.check`` subsystem when verification *cannot
    run* (a replay trace drifts from the recorded decisions, an
    artifact is corrupt) — never for a protocol violation, which is
    reported as data, not raised.
    """
