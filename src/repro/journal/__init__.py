"""repro.journal — the dependability event journal.

The system-event complement to ``repro.telemetry``'s request-level
tracing: failure-detector verdicts, membership changes, checkpoints,
Fig. 5 switch phases, adaptation decisions (with the replicated-state
inputs that explain *why*), contract transitions and injected-fault
ground truth, all in one deterministic ordered stream.

Journaling is **off by default**: the simulator carries a dependency-
free no-op journal (``repro.sim.kernel.NullJournal``) and every
instrumentation site guards on ``journal.enabled``.  Enable it via
``JournalConfig(enabled=True)`` in the substrate calibration (or the
``journal=True`` convenience flags on the experiment entry points);
the testbed then attaches a :class:`Journal`.  Recording never
schedules events or adds simulated time, so simulated outcomes are
byte-identical with the journal on or off.

On top of the raw stream, :mod:`repro.journal.availability` derives
up/degraded/down windows, availability, MTTR/MTTF and the injected-
fault/detection cross-check; :mod:`repro.journal.io` serializes the
stream as canonical JSONL and digests it for campaign records.
"""

from repro.journal.availability import (
    DEFAULT_DETECTION_SLACK_US,
    OUTAGE_FAULTS,
    AvailabilityReport,
    AvailabilityWindow,
    FaultMatch,
    availability_report,
    discover_shards,
    event_shard,
    event_shards,
    match_faults,
    per_shard_reports,
    switch_windows,
    wedge_windows,
)
from repro.journal.events import ADAPTATION_DECISION, Journal, JournalEvent
from repro.journal.io import (
    event_to_line,
    events_to_jsonl,
    journal_digest,
    parse_jsonl,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "ADAPTATION_DECISION",
    "AvailabilityReport",
    "AvailabilityWindow",
    "DEFAULT_DETECTION_SLACK_US",
    "FaultMatch",
    "Journal",
    "JournalEvent",
    "OUTAGE_FAULTS",
    "availability_report",
    "discover_shards",
    "event_shard",
    "event_shards",
    "event_to_line",
    "events_to_jsonl",
    "journal_digest",
    "match_faults",
    "parse_jsonl",
    "per_shard_reports",
    "read_jsonl",
    "switch_windows",
    "wedge_windows",
    "write_jsonl",
]
