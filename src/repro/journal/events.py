"""The dependability event journal.

Section 3.1 requires the replicator to "generate warnings when the
operating conditions are about to change" and to notify the operator
when a contract can no longer be honoured.  The journal is the unified
record behind that requirement: every dependability-relevant system
event — failure-detector verdicts, membership changes, checkpoints,
Fig. 5 switch phases, adaptation decisions, contract transitions and
injected-fault ground truth — lands in one ordered, structured stream
an operator (or the campaign ranker) can audit after the fact.

Two views of the same stream:

- the **global collector**: every event in record order, capped at
  ``max_events`` (overflow is counted, not recorded);
- a per-host **flight recorder**: a small ring of the last events
  that touched each host, the black-box excerpt an operator pulls
  when one machine misbehaves.

Like telemetry, journaling is observation-only: recording never
schedules simulator events and never adds simulated time, so all
simulated outcomes are byte-identical with the journal on or off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Event kind recorded for adaptation decisions; deduplicated by
#: ``switch_id`` (see :meth:`Journal.record`).
ADAPTATION_DECISION = "adaptation.decision"

#: Event kind recorded (once per host, counter updated in place) when
#: a per-host flight-recorder ring evicts events.  Consumers — the
#: ``observe`` CLI and the ``repro.check`` verifiers — treat any
#: verdict over a truncated ring as advisory, because evidence was
#: lost silently before this marker existed.
RING_TRUNCATED = "journal.truncated"


@dataclass
class JournalEvent:
    """One dependability event: who did what, where, when.

    ``attrs`` carries the kind-specific payload (switch ids, member
    lists, fault parameters, ...); ``trace_id`` links the event to a
    telemetry trace when both layers are on (e.g. a switch event to
    its Fig. 5 switch trace); ``shard`` attributes the event to one
    replica group in a sharded cluster (``None`` outside clusters, and
    omitted from the JSON form so pre-shard artifacts stay
    byte-identical).
    """

    seq: int
    time_us: float
    host: str
    component: str
    kind: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[int] = None
    shard: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (``trace_id``/``shard`` omitted when absent)."""
        out: Dict[str, Any] = {
            "seq": self.seq,
            "t_us": self.time_us,
            "host": self.host,
            "component": self.component,
            "kind": self.kind,
            "attrs": self.attrs,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.shard is not None:
            out["shard"] = self.shard
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JournalEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(seq=int(data["seq"]), time_us=float(data["t_us"]),
                   host=str(data["host"]),
                   component=str(data["component"]),
                   kind=str(data["kind"]),
                   attrs=dict(data.get("attrs", {})),
                   trace_id=data.get("trace_id"),
                   shard=data.get("shard"))

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return (f"[{self.time_us / 1e6:10.4f} s] {self.host:6s} "
                f"{self.component}/{self.kind} {extra}")


class Journal:
    """Enabled journal recorder: global collector + per-host rings.

    Determinism: events are appended in simulator dispatch order and
    stamped with a private sequence counter, so two runs with the same
    seed produce identical event streams — the property the JSONL
    export and its regression tests rely on.
    """

    enabled = True

    def __init__(self, ring_size: int = 256, max_events: int = 100_000,
                 trace: Optional[Any] = None):
        if ring_size < 1:
            raise ValueError("ring_size must be positive")
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self.ring_size = ring_size
        self.max_events = max_events
        self.events: List[JournalEvent] = []
        self.dropped = 0
        self._trace = trace
        self._rings: Dict[str, Deque[JournalEvent]] = {}
        self._seq = 0
        # Adaptation decisions keyed by switch_id: the first manager to
        # record one wins; later identical decisions become voters.
        self._decisions: Dict[str, JournalEvent] = {}
        # One truncation marker per host whose ring evicted events;
        # its ``dropped`` attr is updated in place on every eviction
        # (same arrangement as decision ``voters``).
        self._ring_markers: Dict[str, JournalEvent] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, time_us: float, host: str, component: str,
               kind: str, trace_id: Optional[int] = None,
               shard: Optional[str] = None,
               **attrs: Any) -> Optional[JournalEvent]:
        """Append one event; returns it (or None when dropped/merged).

        ``adaptation.decision`` events are deduplicated by their
        ``switch_id`` attr: concurrent managers evaluating the same
        policy over the same replicated state produce the *same*
        decision, so the journal records one decision with N voters,
        not N decisions.  The first recorder wins; every further
        identical decision increments ``voters`` and is listed in
        ``voter_hosts``.
        """
        if kind == ADAPTATION_DECISION:
            switch_id = attrs.get("switch_id")
            if switch_id is not None and switch_id in self._decisions:
                decision = self._decisions[switch_id]
                decision.attrs["voters"] = decision.attrs.get("voters", 1) + 1
                decision.attrs.setdefault("voter_hosts", []).append(host)
                return None
        if len(self.events) >= self.max_events:
            if self.dropped == 0 and self._trace is not None:
                self._trace.record(time_us, "journal.drop",
                                   f"journal full at {self.max_events} "
                                   f"events; dropping further events",
                                   max_events=self.max_events)
            self.dropped += 1
            return None
        event = JournalEvent(seq=self._seq, time_us=time_us, host=host,
                             component=component, kind=kind,
                             attrs=dict(attrs), trace_id=trace_id,
                             shard=shard)
        self._seq += 1
        self.events.append(event)
        ring = self._rings.get(host)
        if ring is None:
            ring = self._rings[host] = deque(maxlen=self.ring_size)
        elif len(ring) == self.ring_size:
            # The ring is about to evict its oldest event.  Record the
            # loss once per host — in the global stream, so exports and
            # checkers see it — and count further evictions in place.
            marker = self._ring_markers.get(host)
            if marker is None:
                marker = JournalEvent(
                    seq=self._seq, time_us=time_us, host=host,
                    component="journal", kind=RING_TRUNCATED,
                    attrs={"dropped": 0, "ring_size": self.ring_size})
                self._seq += 1
                self.events.append(marker)
                self._ring_markers[host] = marker
            marker.attrs["dropped"] += 1
        ring.append(event)
        if kind == ADAPTATION_DECISION and "switch_id" in event.attrs:
            event.attrs.setdefault("voters", 1)
            event.attrs.setdefault("voter_hosts", [host])
            self._decisions[event.attrs["switch_id"]] = event
        return event

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def flight_recorder(self, host: str) -> Tuple[JournalEvent, ...]:
        """The last ``ring_size`` events that touched ``host``.

        When the ring has evicted events, the excerpt is prefixed with
        the host's ``journal.truncated`` marker so the black box
        self-describes how much evidence it lost.
        """
        ring = tuple(self._rings.get(host, ()))
        marker = self._ring_markers.get(host)
        if marker is not None:
            return (marker,) + ring
        return ring

    def truncated_rings(self) -> Dict[str, int]:
        """Dropped-event counts of every truncated per-host ring."""
        return {host: marker.attrs["dropped"]
                for host, marker in sorted(self._ring_markers.items())}

    def of_kind(self, prefix: str) -> Tuple[JournalEvent, ...]:
        """Events whose kind equals or starts with ``prefix``."""
        return tuple(e for e in self.events
                     if e.kind == prefix or e.kind.startswith(prefix + "."))

    def hosts(self) -> Tuple[str, ...]:
        """Hosts with at least one recorded event, sorted."""
        return tuple(sorted(self._rings))

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (f"<Journal events={len(self.events)} "
                f"dropped={self.dropped} hosts={len(self._rings)}>")
