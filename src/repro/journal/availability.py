"""Availability accounting derived from the journal.

Folds the raw event stream into the figures the paper's trade-off
space is built on: per-group up/degraded/down intervals, MTTR/MTTF,
unavailability per fault — and cross-checks the injected-fault ground
truth (``fault.inject`` events) against what the stack actually
*detected* (failure-detector suspicions, membership changes, contract
transitions), yielding detection latencies, missed faults and false
positives.

Interval semantics
------------------
- A **down** window opens at the injection time of an outage-kind
  fault (process/host crash, crash-restart) and closes at the first
  subsequent recovery marker: a failover, a completed state transfer,
  or a membership view that reconfigures the group around the dead
  member.  Unclosed windows run to the end of the observation window.
- A **degraded** window covers a Fig. 5 style switch: from the first
  replica entering step II (``switch.prepare``) to the last replica
  finishing step III (``switch.complete`` / ``switch.rollback``).
  Requests keep completing during a switch — they are queued, not
  dropped — which is exactly what "degraded, not down" means.
- A minority-**wedge** window (``partition.wedged`` to the matching
  ``partition.healed`` on the same host) is also degraded, not down:
  the majority component keeps serving while the wedged minority
  refuses requests, so the service lost redundancy, not liveness.
- Everything else is **up**.

Crash-only fallback: a ``crash_restart`` fault promises recovery at
``until_us``, but the injector skips the restart when the host itself
is down at restart time and journals ``fault.restart_skipped``.  The
phantom restart then cannot close the fault's down window — any
``state.sync`` at or after the promised restart time belongs to some
other replica — so recovery falls back to crash-only semantics (group
reconfiguration around the dead member, or never) instead of
under-billing MTTR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.journal.events import JournalEvent

#: Fault kinds that take (part of) the service down; mirrors the
#: campaign trial's outage accounting.
OUTAGE_FAULTS = ("process_crash", "host_crash", "crash_restart")

#: Event kinds that mark the service as restored after an outage.
RECOVERY_KINDS = ("failover", "state.sync")

#: Event kinds a non-outage (timing / communication / topology) fault
#: may legitimately surface as.  Partition faults wedge the minority
#: (``partition.*``); gray failures (flaky links, slow hosts) trip
#: client circuit breakers (``client.breaker_open``) or the adaptive
#: failure detector before anything crashes.
DEGRADATION_SIGNALS = ("contract.warning", "contract.violated",
                       "adaptation.decision", "client.giveup",
                       "detector.suspect", "partition.detected",
                       "partition.wedged", "client.breaker_open")

#: Default window after a fault within which a detection event is
#: attributed to it (covers heartbeat timeout + flush + settle).
DEFAULT_DETECTION_SLACK_US = 2_000_000.0


@dataclass(frozen=True)
class AvailabilityWindow:
    """One contiguous interval in a single service state."""

    state: str  # "up" | "degraded" | "down"
    start_us: float
    end_us: float

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(frozen=True)
class FaultMatch:
    """Ground truth vs detection for one injected fault."""

    fault_kind: str
    target: str
    at_us: float
    until_us: Optional[float]
    detected: bool
    detected_kind: Optional[str] = None
    detected_at_us: Optional[float] = None

    @property
    def detection_latency_us(self) -> float:
        if not self.detected or self.detected_at_us is None:
            return 0.0
        return self.detected_at_us - self.at_us

    @property
    def missed(self) -> bool:
        return not self.detected


@dataclass(frozen=True)
class AvailabilityReport:
    """The journal folded into availability figures."""

    windows: Tuple[AvailabilityWindow, ...]
    window_start_us: float
    window_end_us: float
    downtime_us: float
    degraded_us: float
    n_outages: int
    false_positives: int

    @property
    def span_us(self) -> float:
        return max(self.window_end_us - self.window_start_us, 0.0)

    @property
    def availability(self) -> float:
        if self.span_us <= 0:
            return 1.0
        return max(0.0, 1.0 - self.downtime_us / self.span_us)

    @property
    def degraded_fraction(self) -> float:
        if self.span_us <= 0:
            return 0.0
        return self.degraded_us / self.span_us

    @property
    def mttr_us(self) -> float:
        """Mean time to repair: mean down-window duration."""
        if self.n_outages == 0:
            return 0.0
        return self.downtime_us / self.n_outages

    @property
    def mttf_us(self) -> float:
        """Mean time to failure: uptime per outage (the whole window
        when nothing failed)."""
        uptime = self.span_us - self.downtime_us
        if self.n_outages == 0:
            return self.span_us
        return uptime / self.n_outages


def _is_detection(event: JournalEvent) -> bool:
    """Membership-level evidence that something was detected as dead."""
    if event.kind == "detector.suspect":
        return True
    return event.kind == "membership.view" and bool(event.attrs.get("left"))


def _fault_events(events: Sequence[JournalEvent]) -> List[JournalEvent]:
    return [e for e in events if e.kind == "fault.inject"]


def _skipped_restarts(events: Sequence[JournalEvent]
                      ) -> set:
    """(target, at_us) of every ``crash_restart`` whose restart the
    injector skipped because the host was down at restart time."""
    return {(str(e.attrs.get("target", "")),
             float(e.attrs.get("at_us", e.time_us)))
            for e in events if e.kind == "fault.restart_skipped"}


def _recovery_time(events: Sequence[JournalEvent], fault: JournalEvent,
                   end_us: float,
                   skipped: frozenset = frozenset()) -> float:
    """First recovery marker after the fault fires, else ``end_us``.

    When the fault is a ``crash_restart`` whose restart was skipped
    (host down at restart time), crash-only semantics apply: the
    promised restart never produced a replica, so ``state.sync``
    markers at or after the promised ``until_us`` are some other
    replica's and cannot close this fault's window.
    """
    at = float(fault.attrs.get("at_us", fault.time_us))
    target = str(fault.attrs.get("target", ""))
    restart_skipped = (target, at) in skipped
    until = fault.attrs.get("until_us")
    promised = float(until) if until else None
    for event in events:
        if event.time_us <= at:
            continue
        if event.kind in RECOVERY_KINDS:
            if (restart_skipped and event.kind == "state.sync"
                    and promised is not None
                    and event.time_us >= promised):
                continue
            return event.time_us
        if event.kind == "membership.view":
            left = [str(m) for m in event.attrs.get("left", ())]
            if left and (not target
                         or any(target in member for member in left)
                         or any(fault.host == member.split("@")[-1]
                                for member in left)):
                return event.time_us
    return end_us


def _merge(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping intervals."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def switch_windows(events: Sequence[JournalEvent]
                   ) -> Dict[str, Tuple[float, float]]:
    """Per-switch group-wide window: first ``switch.prepare`` to last
    ``switch.complete`` / ``switch.rollback``."""
    starts: Dict[str, float] = {}
    ends: Dict[str, float] = {}
    for event in events:
        switch_id = event.attrs.get("switch_id")
        if switch_id is None:
            continue
        if event.kind == "switch.prepare":
            starts.setdefault(switch_id, event.time_us)
            starts[switch_id] = min(starts[switch_id], event.time_us)
        elif event.kind in ("switch.complete", "switch.rollback"):
            ends[switch_id] = max(ends.get(switch_id, event.time_us),
                                  event.time_us)
    return {sid: (starts[sid], ends[sid])
            for sid in starts if sid in ends}


def wedge_windows(events: Sequence[JournalEvent]
                  ) -> List[Tuple[str, float, Optional[float]]]:
    """Per-host minority-wedge windows as ``(host, start, end)``.

    A window opens at ``partition.wedged`` and closes at the first
    subsequent ``partition.healed`` from the same host; ``end`` is
    None while the host is still wedged (the caller clips to its
    observation window).
    """
    open_: Dict[str, float] = {}
    windows: List[Tuple[str, float, Optional[float]]] = []
    for event in sorted(events, key=lambda e: (e.time_us, e.seq)):
        if event.kind == "partition.wedged":
            open_.setdefault(event.host, event.time_us)
        elif event.kind == "partition.healed" and event.host in open_:
            windows.append((event.host, open_.pop(event.host),
                            event.time_us))
    windows.extend((host, start, None)
                   for host, start in sorted(open_.items()))
    return windows


def availability_report(events: Sequence[JournalEvent],
                        window_start_us: Optional[float] = None,
                        window_end_us: Optional[float] = None
                        ) -> AvailabilityReport:
    """Fold the journal into up/degraded/down windows and figures.

    The observation window defaults to [0, last event time or fault
    deadline]; a trial passes its load window explicitly so settle
    time is not billed as uptime.
    """
    ordered = sorted(events, key=lambda e: (e.time_us, e.seq))
    times = [e.time_us for e in ordered]
    fault_until = [float(e.attrs.get("until_us") or
                         e.attrs.get("at_us", e.time_us))
                   for e in _fault_events(ordered)]
    start = 0.0 if window_start_us is None else window_start_us
    end = (max(times + fault_until, default=start)
           if window_end_us is None else window_end_us)

    skipped = frozenset(_skipped_restarts(ordered))
    down: List[Tuple[float, float]] = []
    n_outages = 0
    for fault in _fault_events(ordered):
        if fault.attrs.get("fault") not in OUTAGE_FAULTS:
            continue
        at = float(fault.attrs.get("at_us", fault.time_us))
        recovered = _recovery_time(ordered, fault, end, skipped)
        lo, hi = max(at, start), min(recovered, end)
        if hi <= lo and not start <= at < end:
            # The outage lies wholly outside the observation window
            # (fired after it, or recovered before it): billing it as
            # an outage with zero downtime would skew MTTR/MTTF.
            continue
        n_outages += 1
        down.append((lo, hi))
    down = _merge(down)

    # Degraded: style-switch windows plus minority-wedge windows —
    # the majority keeps serving through both, so neither is downtime.
    degraded = _merge(
        [(max(s, start), min(e, end))
         for s, e in switch_windows(ordered).values()]
        + [(max(s, start), min(e if e is not None else end, end))
           for _host, s, e in wedge_windows(ordered)])
    # Downtime trumps degradation: clip degraded out of down intervals.
    clipped: List[Tuple[float, float]] = []
    for d_start, d_end in degraded:
        cursor = d_start
        for o_start, o_end in down:
            if o_end <= cursor or o_start >= d_end:
                continue
            if o_start > cursor:
                clipped.append((cursor, o_start))
            cursor = max(cursor, o_end)
        if cursor < d_end:
            clipped.append((cursor, d_end))
    degraded = _merge(clipped)

    windows: List[AvailabilityWindow] = []
    marks = sorted(set([start, end]
                       + [t for pair in down for t in pair]
                       + [t for pair in degraded for t in pair]))
    for left, right in zip(marks, marks[1:]):
        if right <= left:
            continue
        mid = (left + right) / 2.0
        if any(s <= mid < e for s, e in down):
            state = "down"
        elif any(s <= mid < e for s, e in degraded):
            state = "degraded"
        else:
            state = "up"
        if windows and windows[-1].state == state:
            windows[-1] = AvailabilityWindow(state, windows[-1].start_us,
                                             right)
        else:
            windows.append(AvailabilityWindow(state, left, right))

    covered: List[Tuple[float, float]] = []
    for fault in _fault_events(ordered):
        at = float(fault.attrs.get("at_us", fault.time_us))
        until = fault.attrs.get("until_us")
        covered.append((at, (float(until) if until else at)
                        + DEFAULT_DETECTION_SLACK_US))
    false_positives = sum(
        1 for e in ordered if _is_detection(e)
        and not any(s <= e.time_us <= f for s, f in covered))

    return AvailabilityReport(
        windows=tuple(windows),
        window_start_us=start, window_end_us=end,
        downtime_us=sum(e - s for s, e in down),
        degraded_us=sum(e - s for s, e in degraded),
        n_outages=n_outages,
        false_positives=false_positives)


def discover_shards(events: Sequence[JournalEvent]) -> Tuple[str, ...]:
    """Service units seen in the stream, sorted.

    A "shard" here is one replica group: explicit ``shard`` tags from
    cluster emitters, plus any group named by membership events — so a
    single-group deployment folds into exactly one unit (its group
    name) and pre-shard journals still attribute cleanly.  Control
    groups (``*.ctl``) are infrastructure, not service units.
    """
    shards = set()
    for event in events:
        if event.shard is not None:
            shards.add(event.shard)
        group = event.attrs.get("group")
        if isinstance(group, str) and group \
                and not group.endswith(".ctl"):
            shards.add(group)
        for name in event.attrs.get("groups") or ():
            if isinstance(name, str) and name \
                    and not name.endswith(".ctl"):
                shards.add(name)
    return tuple(sorted(shards))


def event_shards(event: JournalEvent,
                 shards: Sequence[str]) -> Tuple[str, ...]:
    """Every shard one event attributes to; empty means fleet-level.

    Priority: the first-class ``shard`` field (cluster emitters), then
    a ``group`` attr naming a known shard (GCS membership), then a
    ``groups`` list attr (partition wedge/heal events name every group
    the wedged daemon hosts — the wedge degrades all of them), then a
    ``process`` or fault ``target`` attr with the shard's replica
    prefix (``{shard}-...``, the deterministic deployment naming).
    """
    if event.shard is not None:
        return (event.shard,)
    group = event.attrs.get("group")
    if isinstance(group, str) and group in shards:
        return (group,)
    listed = tuple(name for name in event.attrs.get("groups") or ()
                   if isinstance(name, str) and name in shards)
    if listed:
        return listed
    for attr in ("process", "target"):
        name = event.attrs.get(attr)
        if not isinstance(name, str):
            continue
        for shard in shards:
            if name == shard or name.startswith(shard + "-"):
                return (shard,)
    return ()


def event_shard(event: JournalEvent,
                shards: Sequence[str]) -> Optional[str]:
    """Attribute one event to a single shard; None means fleet-level.

    Multi-group events (see :func:`event_shards`) collapse to their
    first listed shard here — single-shard callers (alert matching)
    need one owner, the per-shard fold uses the full set.
    """
    attributed = event_shards(event, shards)
    return attributed[0] if attributed else None


def per_shard_reports(events: Sequence[JournalEvent],
                      window_start_us: Optional[float] = None,
                      window_end_us: Optional[float] = None,
                      shards: Optional[Sequence[str]] = None
                      ) -> Dict[str, AvailabilityReport]:
    """Fold the journal into one availability report per shard.

    Each shard's report sees only the events attributed to it, so a
    crash in one replica group bills downtime to that shard alone —
    the per-shard MTTR/MTTF the SLO engine budgets against.  Events
    that attribute to no shard (coordinator map commits, router
    flips) stay fleet-level and appear in no per-shard report.
    """
    ordered = sorted(events, key=lambda e: (e.time_us, e.seq))
    universe = (tuple(shards) if shards is not None
                else discover_shards(ordered))
    attributed: Dict[str, List[JournalEvent]] = {s: [] for s in universe}
    for event in ordered:
        for shard in event_shards(event, universe):
            if shard in attributed:
                attributed[shard].append(event)
    return {shard: availability_report(
                attributed[shard], window_start_us=window_start_us,
                window_end_us=window_end_us)
            for shard in universe}


def match_faults(events: Sequence[JournalEvent],
                 slack_us: float = DEFAULT_DETECTION_SLACK_US
                 ) -> List[FaultMatch]:
    """Cross-check injected-fault ground truth against detections.

    Outage faults must be *detected at the membership level*: a
    failure-detector suspicion naming the fault's host, or a group
    view that drops the crashed member.  Timing and communication
    faults (loss bursts, delay spikes, CPU hogs) are matched against
    any degradation signal — contract transitions, adaptation
    decisions, client give-ups, or spurious suspicions — inside the
    fault window plus ``slack_us``.  A fault with no matching event is
    flagged ``missed``.
    """
    ordered = sorted(events, key=lambda e: (e.time_us, e.seq))
    matches: List[FaultMatch] = []
    for fault in _fault_events(ordered):
        kind = str(fault.attrs.get("fault", ""))
        target = str(fault.attrs.get("target", ""))
        at = float(fault.attrs.get("at_us", fault.time_us))
        until = fault.attrs.get("until_us")
        deadline = (float(until) if until else at) + slack_us
        named: Optional[JournalEvent] = None
        unnamed: Optional[JournalEvent] = None
        for event in ordered:
            if not at < event.time_us <= deadline:
                continue
            if kind in OUTAGE_FAULTS:
                if not _is_detection(event):
                    continue
                names = ([str(m) for m in event.attrs.get("left", ())]
                         + [str(h) for h in event.attrs.get("newly", ())])
                is_named = any(target and target in name or
                               fault.host == name.split("@")[-1]
                               for name in names)
                if is_named and named is None:
                    named = event
                    break  # events are ordered; first named match wins
                if unnamed is None:
                    unnamed = event
            else:
                if event.kind in DEGRADATION_SIGNALS and unnamed is None:
                    unnamed = event
                    break
        hit = named or unnamed
        matches.append(FaultMatch(
            fault_kind=kind, target=target, at_us=at,
            until_us=float(until) if until else None,
            detected=hit is not None,
            detected_kind=hit.kind if hit else None,
            detected_at_us=hit.time_us if hit else None))
    return matches
