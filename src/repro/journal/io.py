"""Journal serialization: canonical JSONL plus the campaign digest.

The JSONL form is the journal's *artifact* format: one canonical JSON
object per line (sorted keys, no whitespace), so two runs with the
same seed produce byte-identical files — asserted in the regression
tests, and the property that lets a journal file stand in for the run
it came from.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.journal.availability import (
    availability_report,
    match_faults,
    per_shard_reports,
)
from repro.journal.events import JournalEvent


def event_to_line(event: JournalEvent) -> str:
    """One event as canonical JSON (sorted keys, compact separators)."""
    return json.dumps(event.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def events_to_jsonl(events: Iterable[JournalEvent]) -> str:
    """The whole journal as JSONL (trailing newline included)."""
    lines = [event_to_line(event) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: Iterable[JournalEvent], path: str) -> int:
    """Write the journal to ``path``; returns the event count."""
    rendered = events_to_jsonl(events)
    with open(path, "w") as handle:
        handle.write(rendered)
    return rendered.count("\n")


def parse_jsonl(text: str) -> List[JournalEvent]:
    """Parse a JSONL journal back into events.

    Raises ``ValueError`` on malformed lines — a journal is a
    reproducible artifact, so corruption is an error, not a warning.
    """
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"journal line {lineno} is not valid "
                             f"JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"journal line {lineno} is not an object")
        events.append(JournalEvent.from_dict(data))
    return events


def read_jsonl(path: str) -> List[JournalEvent]:
    """Load a journal file written by :func:`write_jsonl`."""
    with open(path) as handle:
        return parse_jsonl(handle.read())


def journal_digest(journal: Any,
                   window_start_us: Optional[float] = None,
                   window_end_us: Optional[float] = None
                   ) -> Dict[str, Any]:
    """Compact JSON digest of a journal, for campaign trial records.

    Mirrors ``telemetry_summary``: event totals, per-component counts,
    the derived availability/MTTR figures and the injected-fault
    cross-check (matched / missed / false positives).
    """
    events: Sequence[JournalEvent] = list(journal.events)
    by_component: Dict[str, int] = {}
    for event in events:
        by_component[event.component] = \
            by_component.get(event.component, 0) + 1
    report = availability_report(events, window_start_us=window_start_us,
                                 window_end_us=window_end_us)
    matches = match_faults(events)
    # Per-shard rollup only for journals with shard-tagged events
    # (cluster deployments): single-group digests keep their exact
    # pre-shard shape.
    tagged = tuple(sorted({e.shard for e in events
                           if e.shard is not None}))
    per_shard: Dict[str, Any] = {}
    if tagged:
        for shard, rep in per_shard_reports(
                events, window_start_us=window_start_us,
                window_end_us=window_end_us, shards=tagged).items():
            per_shard[shard] = {
                "availability": rep.availability,
                "degraded_fraction": rep.degraded_fraction,
                "downtime_us": rep.downtime_us,
                "mttr_us": rep.mttr_us,
                "mttf_us": rep.mttf_us,
                "outages": rep.n_outages,
            }
    return {
        **({"per_shard": per_shard} if per_shard else {}),
        "events": len(events),
        "dropped": journal.dropped,
        "truncated_rings": dict(journal.truncated_rings()),
        "by_component": dict(sorted(by_component.items())),
        "availability": report.availability,
        "degraded_fraction": report.degraded_fraction,
        "downtime_us": report.downtime_us,
        "mttr_us": report.mttr_us,
        "mttf_us": report.mttf_us,
        "outages": report.n_outages,
        "faults_injected": len(matches),
        "faults_matched": sum(1 for m in matches if m.detected),
        "faults_missed": sum(1 for m in matches if not m.detected),
        "false_positives": report.false_positives,
        "mean_detection_latency_us": (
            sum(m.detection_latency_us for m in matches if m.detected)
            / max(sum(1 for m in matches if m.detected), 1)),
    }
