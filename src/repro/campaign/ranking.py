"""Ranking campaign results in the paper's design space.

Fig. 1/9 frame every configuration as a point in {fault-tolerance x
performance x resources}; a campaign measures those points under
fault load instead of assuming them.  This module extracts the
Pareto-optimal configurations (no other configuration is at least as
good on every axis and better on one) and, for operators who want one
answer, a weighted-sum ranking in the spirit of the Section 4.3 cost
heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.campaign.results import DependabilityScore
from repro.core.design_space import DesignPoint, DesignSpace
from repro.errors import ConfigurationError, PolicyError
from repro.replication.styles import ReplicationStyle


def dominates(a: DependabilityScore, b: DependabilityScore) -> bool:
    """True when ``a`` is at least as good as ``b`` on all three axes
    (dependability up, latency down, resource cost down) and strictly
    better on at least one."""
    at_least = (a.dependability >= b.dependability
                and a.latency_us <= b.latency_us
                and a.resource_cost <= b.resource_cost)
    strictly = (a.dependability > b.dependability
                or a.latency_us < b.latency_us
                or a.resource_cost < b.resource_cost)
    return at_least and strictly


def pareto_front(scores: Sequence[DependabilityScore]
                 ) -> List[DependabilityScore]:
    """The non-dominated configurations, best-dependability first."""
    front = [s for s in scores
             if not any(dominates(other, s) for other in scores
                        if other is not s)]
    return sorted(front, key=lambda s: (-s.dependability, s.latency_us,
                                        s.resource_cost, s.config_key))


@dataclass(frozen=True)
class RankWeights:
    """Weights of the scalar ranking (normalized internally)."""

    dependability: float = 0.5
    latency: float = 0.25
    resources: float = 0.25

    def __post_init__(self) -> None:
        if min(self.dependability, self.latency, self.resources) < 0:
            raise ConfigurationError("rank weights must be non-negative")
        if self.dependability + self.latency + self.resources <= 0:
            raise ConfigurationError("at least one weight must be positive")


def rank(scores: Sequence[DependabilityScore],
         weights: RankWeights = RankWeights()
         ) -> List[Tuple[DependabilityScore, float]]:
    """Weighted-sum ranking, best first.  Latency and resource cost
    are normalized to the worst observed value so every term lies in
    [0, 1] and higher is better."""
    if not scores:
        raise PolicyError("nothing to rank: no scores")
    total = weights.dependability + weights.latency + weights.resources
    max_latency = max(s.latency_us for s in scores) or 1.0
    max_cost = max(s.resource_cost for s in scores) or 1.0
    ranked = []
    for score in scores:
        value = (weights.dependability * score.dependability
                 + weights.latency * (1.0 - score.latency_us / max_latency)
                 + weights.resources
                 * (1.0 - score.resource_cost / max_cost)) / total
        ranked.append((score, value))
    ranked.sort(key=lambda pair: (-pair[1], pair[0].config_key))
    return ranked


def to_design_space(scores: Sequence[DependabilityScore]) -> DesignSpace:
    """Project scores into the Fig. 9 normalized design space so the
    existing region/coverage machinery applies to campaign output.

    The fault-tolerance axis carries *measured* dependability rather
    than the static replicas-minus-one count — the campaign's whole
    point is replacing that assumption with data.
    """
    if not scores:
        raise PolicyError("cannot build a design space from no scores")
    max_latency = max(s.latency_us for s in scores) or 1.0
    max_cost = max(s.resource_cost for s in scores) or 1.0
    points = []
    for s in scores:
        points.append(DesignPoint(
            style=ReplicationStyle(s.style), n_replicas=s.n_replicas,
            n_clients=s.n_clients,
            fault_tolerance=s.dependability,
            performance=1.0 - s.latency_us / max_latency,
            resources=s.resource_cost / max_cost))
    return DesignSpace(points)
