"""Rendering campaign results for operators.

Plain-text tables for the CLI, Markdown for reports that live next to
the spec in version control, and CSV (via :mod:`repro.tools.export`)
for external plotting.
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence, TextIO

from repro.campaign.ranking import RankWeights, pareto_front, rank
from repro.campaign.results import DependabilityScore
from repro.campaign.spec import CampaignSpec

_COLUMNS = ("config", "dep", "avail", "fail%", "late%",
            "recov[us]", "lat[us]", "bw[MB/s]", "cost", "trials")


def _row(score: DependabilityScore) -> List[str]:
    return [score.config_key,
            f"{score.dependability:.4f}",
            f"{score.availability:.4f}",
            f"{score.failed_fraction * 100:.2f}",
            f"{score.late_fraction * 100:.2f}",
            f"{score.mean_recovery_us:.0f}",
            f"{score.latency_us:.1f}",
            f"{score.bandwidth_mbps:.3f}",
            f"{score.resource_cost:.3f}",
            str(score.n_trials)]


def render_scores(scores: Sequence[DependabilityScore],
                  title: str = "configurations") -> str:
    """Fixed-width score table, best dependability first."""
    lines = [f"{title}:"]
    widths = [max(len(c), 9) for c in _COLUMNS]
    widths[0] = max(12, max((len(s.config_key) for s in scores),
                            default=12))
    header = "  ".join(c.rjust(w) for c, w in zip(_COLUMNS, widths))
    lines.append(header)
    lines.append("-" * len(header))
    ordered = sorted(scores, key=lambda s: -s.dependability)
    for score in ordered:
        lines.append("  ".join(v.rjust(w)
                               for v, w in zip(_row(score), widths)))
    return "\n".join(lines)


def render_pareto(scores: Sequence[DependabilityScore]) -> str:
    """The Pareto front over (dependability up, latency down, cost
    down), annotated with the weighted-sum rank value."""
    front = pareto_front(scores)
    ranked = dict()
    if scores:
        ranked = {id(s): v for s, v in rank(list(scores), RankWeights())}
    lines = ["Pareto front (dependability vs latency vs resource cost):"]
    for score in front:
        lines.append(
            f"  {score.config_key:12s} dep={score.dependability:.4f} "
            f"lat={score.latency_us:8.1f}us cost={score.resource_cost:.3f} "
            f"rank={ranked.get(id(score), 0.0):.3f}")
    dominated = len(scores) - len(front)
    lines.append(f"  ({len(front)} optimal, {dominated} dominated)")
    return "\n".join(lines)


def write_markdown(spec: CampaignSpec,
                   scores: Sequence[DependabilityScore],
                   out: Optional[TextIO] = None) -> str:
    """A self-contained Markdown report of one campaign."""
    buffer = io.StringIO()
    front = {s.config_key for s in pareto_front(scores)}
    buffer.write(f"# Campaign: {spec.name}\n\n")
    buffer.write(f"{spec.n_trials()} trials — knob grid "
                 f"{spec.styles} x replicas {spec.replica_counts} x "
                 f"checkpoint {spec.checkpoint_intervals}, fault loads "
                 f"{spec.fault_loads}, seeds {spec.seeds}.\n\n")
    buffer.write("| config | dependability | availability | failed | "
                 "late | recovery [us] | latency [us] | bw [MB/s] | "
                 "cost | Pareto |\n")
    buffer.write("|---|---|---|---|---|---|---|---|---|---|\n")
    for score in sorted(scores, key=lambda s: -s.dependability):
        buffer.write(
            f"| {score.config_key} | {score.dependability:.4f} | "
            f"{score.availability:.4f} | "
            f"{score.failed_fraction * 100:.2f}% | "
            f"{score.late_fraction * 100:.2f}% | "
            f"{score.mean_recovery_us:.0f} | {score.latency_us:.1f} | "
            f"{score.bandwidth_mbps:.3f} | {score.resource_cost:.3f} | "
            f"{'yes' if score.config_key in front else ''} |\n")
    text = buffer.getvalue()
    if out is not None:
        out.write(text)
    return text
