"""Append-only campaign results store and dependability scoring.

Results live in a JSONL file: one self-contained record per trial,
each stamped with a schema version.  Append-only + one-line-per-trial
is what makes DAVOS-style checkpointing trivial — a campaign killed
mid-run leaves a valid store, and the next run skips every trial
already recorded (:meth:`ResultsStore.completed_ids`).

Records aggregate per knob configuration into
:class:`DependabilityScore` — the (dependability, latency, resource)
triple the ranking layer trades off, with resource cost computed by
the paper's :class:`~repro.core.cost.CostFunction`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.campaign.spec import TrialSpec
from repro.core.cost import CostFunction
from repro.errors import ConfigurationError

#: Bump on incompatible record layout changes; readers reject newer.
SCHEMA_VERSION = 1

_STATUSES = ("ok", "failed", "timeout")


@dataclass(frozen=True)
class TrialRecord:
    """One stored trial outcome."""

    trial_id: str
    status: str
    spec: Dict[str, object]
    metrics: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise ConfigurationError(
                f"bad trial status {self.status!r}; "
                f"expected one of {_STATUSES}")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_line(self) -> str:
        """Canonical single-line JSON (sorted keys: byte-stable)."""
        return json.dumps(
            {"schema": self.schema, "trial_id": self.trial_id,
             "status": self.status, "spec": self.spec,
             "metrics": self.metrics, "error": self.error},
            sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_line(cls, line: str) -> "TrialRecord":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"corrupt results line: {exc}") from None
        schema = data.get("schema")
        if not isinstance(schema, int) or schema > SCHEMA_VERSION:
            raise ConfigurationError(
                f"results schema {schema!r} is newer than this build "
                f"(speaks {SCHEMA_VERSION})")
        return cls(trial_id=data["trial_id"], status=data["status"],
                   spec=data.get("spec", {}),
                   metrics=data.get("metrics", {}),
                   error=data.get("error"), schema=schema)


class ResultsStore:
    """Append-only JSONL store with resume support."""

    def __init__(self, path: str):
        self.path = path

    def exists(self) -> bool:
        """True when a results file is present on disk."""
        return os.path.exists(self.path)

    def append(self, record: TrialRecord) -> None:
        """Write one record and flush (a crash loses at most the
        in-flight line, never an earlier one)."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(record.to_line() + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> List[TrialRecord]:
        """All stored records (empty when the file does not exist).
        A trailing half-written line (killed mid-append) is dropped;
        corruption anywhere else raises."""
        if not self.exists():
            return []
        out: List[TrialRecord] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                out.append(TrialRecord.from_line(line))
            except ConfigurationError:
                if index == len(lines) - 1:
                    break  # torn final write from an interrupted run
                raise
        return out

    def completed_ids(self, include_failed: bool = False) -> Set[str]:
        """Trial ids to skip on resume.  Failed/timed-out trials are
        retried by default; pass ``include_failed=True`` to keep them."""
        return {r.trial_id for r in self.records()
                if r.ok or include_failed}

    def clear(self) -> None:
        """Start over (``--fresh``)."""
        if self.exists():
            os.remove(self.path)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DependabilityScore:
    """Per-configuration aggregate over every fault load and seed.

    ``dependability`` folds the three request-visible dependability
    measures into one 0..1 figure: the probability that an offered
    request is answered, on time, by a service that is up.
    """

    config_key: str
    style: str
    n_replicas: int
    checkpoint_interval: int
    n_clients: int
    n_trials: int
    availability: float
    failed_fraction: float
    late_fraction: float
    mean_recovery_us: float
    latency_us: float
    bandwidth_mbps: float
    resource_cost: float

    @property
    def dependability(self) -> float:
        return (self.availability * (1.0 - self.failed_fraction)
                * (1.0 - self.late_fraction))

    @property
    def faults_tolerated(self) -> int:
        return self.n_replicas - 1


def aggregate_scores(records: Iterable[TrialRecord],
                     cost_function: Optional[CostFunction] = None
                     ) -> List[DependabilityScore]:
    """Group ``ok`` records by knob configuration and average the
    dependability metrics; failed/timed-out trials count as total
    outages (availability 0, everything failed) so a configuration
    that crashes the harness cannot score well by dying early."""
    cost = cost_function or CostFunction()
    groups: Dict[str, List[TrialRecord]] = {}
    for record in records:
        spec = TrialSpec.from_dict(dict(record.spec))
        groups.setdefault(spec.config_key, []).append(record)

    scores = []
    for key in sorted(groups):
        group = groups[key]
        spec = TrialSpec.from_dict(dict(group[0].spec))
        n = len(group)

        def mean(metric: str, fallback: float) -> float:
            total = 0.0
            for record in group:
                if record.ok:
                    total += float(record.metrics.get(metric, fallback))
                else:
                    total += fallback
            return total / n

        latency = mean("latency_mean_us", spec.deadline_us)
        bandwidth = mean("bandwidth_mbps", 0.0)
        scores.append(DependabilityScore(
            config_key=key, style=spec.style,
            n_replicas=spec.n_replicas,
            checkpoint_interval=spec.checkpoint_interval,
            n_clients=spec.n_clients, n_trials=n,
            availability=mean("availability", 0.0),
            failed_fraction=mean("failed_fraction", 1.0),
            late_fraction=mean("late_fraction", 1.0),
            mean_recovery_us=mean("mean_recovery_us", spec.duration_us),
            latency_us=latency, bandwidth_mbps=bandwidth,
            resource_cost=cost.cost(latency, bandwidth)))
    return scores
