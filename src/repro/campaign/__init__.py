"""Fault-injection campaigns: sweep the knob design space under fault
load, in parallel, with a persistent results store and dependability
scoring (the DAVOS-style benchmarking layer over the simulator).

Public surface:

- :class:`CampaignSpec` / :class:`TrialSpec` — declarative sweeps
  with JSON round-trip (:mod:`repro.campaign.spec`)
- the fault-load dictionary: :func:`fault_load`,
  :func:`available_loads`, :func:`register_load`, entry classes
  (:mod:`repro.campaign.dictionary`)
- :func:`run_campaign` / :class:`CampaignRunner` — parallel executor
  with resume, per-trial timeout and crash isolation
- :class:`ResultsStore`, :class:`TrialRecord`,
  :class:`DependabilityScore`, :func:`aggregate_scores` — JSONL
  persistence and per-configuration scoring
- :func:`pareto_front`, :func:`rank`, :class:`RankWeights`,
  :func:`to_design_space` — ranking in the Fig. 9 design space
- :func:`render_scores`, :func:`render_pareto`,
  :func:`write_markdown` — reporting
"""

from repro.campaign.dictionary import (
    AsymPartition,
    CpuHog,
    CrashAndRestart,
    DelaySpike,
    FaultEntry,
    FlakyLinkFault,
    HostCrash,
    LossBurst,
    Partition,
    ProcessCrash,
    SlowHostFault,
    available_loads,
    compile_load,
    fault_load,
    register_load,
)
from repro.campaign.ranking import (
    RankWeights,
    dominates,
    pareto_front,
    rank,
    to_design_space,
)
from repro.campaign.report import (
    render_pareto,
    render_scores,
    write_markdown,
)
from repro.campaign.results import (
    SCHEMA_VERSION,
    DependabilityScore,
    ResultsStore,
    TrialRecord,
    aggregate_scores,
)
from repro.campaign.runner import (
    CampaignRunner,
    CampaignSummary,
    execute_trial,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignSpec,
    TrialSpec,
    derive_trial_seed,
)

__all__ = [
    "AsymPartition",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignSummary",
    "CpuHog",
    "CrashAndRestart",
    "DelaySpike",
    "DependabilityScore",
    "FaultEntry",
    "FlakyLinkFault",
    "HostCrash",
    "LossBurst",
    "Partition",
    "ProcessCrash",
    "SlowHostFault",
    "RankWeights",
    "ResultsStore",
    "SCHEMA_VERSION",
    "TrialRecord",
    "TrialSpec",
    "aggregate_scores",
    "available_loads",
    "compile_load",
    "derive_trial_seed",
    "dominates",
    "execute_trial",
    "fault_load",
    "pareto_front",
    "rank",
    "register_load",
    "render_pareto",
    "render_scores",
    "run_campaign",
    "to_design_space",
    "write_markdown",
]
