"""Campaign execution: fan trials out across a persistent worker pool.

The simulator is single-threaded Python, so the only real speed-up
for a campaign is *process-level* parallelism (DAVOS reaches the same
conclusion for its HDL simulators).  A fixed pool of worker processes
is forked once per campaign and fed *chunks* of trials over a pipe —
amortizing the fork/import cost that a process-per-trial design pays
on every single trial.  The guarantees are unchanged:

- **crash isolation** — a trial raising is caught inside the worker
  and shipped back as a ``failed`` record; a worker segfaulting or
  exiting kills only that worker, which is respawned, and only the
  trial it was running is marked ``failed``;
- **per-trial timeout** — workers announce each trial before running
  it, so a hung simulation becomes a ``timeout`` record (the worker
  is killed and replaced) instead of a hung campaign;
- **deterministic output** — per-trial seeds derive from the spec
  alone and records are written in expansion order, so a parallel run
  produces a byte-identical results file to a serial one;
- **resume** — trials already recorded ``ok`` in the store are
  skipped, DAVOS-checkpoint style.

``workers=1`` falls back to plain in-process execution (no fork, easy
debugging, same records).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.dictionary import compile_load
from repro.campaign.results import ResultsStore, TrialRecord
from repro.campaign.spec import CampaignSpec, TrialSpec
from repro.errors import ConfigurationError

#: Generous per-trial wall-clock budget; campaigns of small simulated
#: windows finish trials in well under a second.
DEFAULT_TRIAL_TIMEOUT_S = 300.0

ProgressFn = Callable[[int, int, Optional[TrialRecord]], None]

#: Worker-local warm-start cache: one :class:`repro.sim.SimSnapshot`
#: per trial-prefix configuration, so sweeping fault loads over the
#: same (style, replicas, clients, seed, ...) forks the warmed
#: testbed instead of re-deploying it.  Private to each process —
#: pool workers each grow their own, preserving crash isolation (a
#: dead worker only loses its cache) and serial==parallel
#: byte-identity (a fork is byte-identical to a fresh prefix).
_SNAPSHOT_CACHE: "Dict[tuple, object]" = {}
_SNAPSHOT_CACHE_MAX = 32


def _trial_snapshot(trial: TrialSpec, telemetry: bool, journal: bool,
                    check: bool, slo: bool):
    """Fetch (or capture) the warmed snapshot for a trial's prefix."""
    from repro.experiments.trial import prepare_fault_trial
    from repro.sim import SimSnapshot

    key = (trial.replication_style, trial.n_replicas, trial.n_clients,
           trial.seed, trial.checkpoint_interval, telemetry, journal,
           check, slo)
    snapshot = _SNAPSHOT_CACHE.get(key)
    if snapshot is None:
        prepared = prepare_fault_trial(
            style=trial.replication_style, n_replicas=trial.n_replicas,
            n_clients=trial.n_clients, seed=trial.seed,
            checkpoint_interval=trial.checkpoint_interval,
            telemetry=telemetry, journal=journal, check=check, slo=slo)
        snapshot = SimSnapshot.capture(
            prepared, sim=prepared.testbed.sim,
            label=f"campaign-{trial.replication_style.value}"
                  f"-r{trial.n_replicas}-s{trial.seed}")
        if len(_SNAPSHOT_CACHE) >= _SNAPSHOT_CACHE_MAX:
            _SNAPSHOT_CACHE.pop(next(iter(_SNAPSHOT_CACHE)))
        _SNAPSHOT_CACHE[key] = snapshot
    return snapshot


def execute_trial(trial: TrialSpec,
                  telemetry: bool = False,
                  journal_dir: Optional[str] = None,
                  check: bool = False,
                  slo: bool = False) -> TrialRecord:
    """Run one trial in the current process and build its record.

    ``telemetry=True`` records spans during the trial and attaches the
    per-trial telemetry summary to the record's metrics; the default
    keeps records byte-identical to pre-telemetry campaigns.  With
    ``journal_dir`` set, the trial runs with the dependability journal
    on, writes ``<journal_dir>/<trial_id>.journal.jsonl`` and attaches
    the journal digest (availability, MTTR, fault matching) to the
    record's metrics.  ``check=True`` verifies the trial's operation
    history and protocol invariants (:mod:`repro.check`) and attaches
    the verdict.  ``slo=True`` evaluates the default SLO set
    (:mod:`repro.slo`) over the trial's journal and attaches the
    error-budget/alert verdict.
    """
    from repro.experiments.trial import finish_fault_trial  # lazy: keeps
    # campaign importable without dragging the full stack in at startup

    trial.validate()
    if trial.n_shards > 1:
        from repro.cluster import run_cluster_trial
        result = run_cluster_trial(
            style=trial.replication_style, n_shards=trial.n_shards,
            n_clients=trial.n_clients, duration_us=trial.duration_us,
            rate_per_s=trial.rate_per_s, seed=trial.seed,
            checkpoint_interval=trial.checkpoint_interval,
            deadline_us=trial.deadline_us, settle_us=trial.settle_us,
            fault_load=trial.fault_load,
            telemetry=telemetry, journal=journal_dir is not None,
            check=check, slo=slo)
    else:
        # Warm-start fast path: one snapshot per prefix configuration,
        # forked per fault variation.  Byte-identical to a fresh
        # run_fault_trial (the golden-digest tests pin it).
        snapshot = _trial_snapshot(trial, telemetry,
                                   journal_dir is not None, check, slo)
        result = finish_fault_trial(
            snapshot.fork(), duration_us=trial.duration_us,
            rate_per_s=trial.rate_per_s, deadline_us=trial.deadline_us,
            settle_us=trial.settle_us,
            inject=lambda ctx: compile_load(trial.fault_load, ctx))
    if journal_dir is not None and result.journal_events is not None:
        from repro.journal.io import write_jsonl
        os.makedirs(journal_dir, exist_ok=True)
        write_jsonl(result.journal_events,
                    os.path.join(journal_dir,
                                 f"{trial.trial_id}.journal.jsonl"))
    return TrialRecord(trial_id=trial.trial_id, status="ok",
                       spec=trial.to_dict(), metrics=result.metrics())


def _failure_record(trial: TrialSpec, status: str,
                    error: str) -> TrialRecord:
    return TrialRecord(trial_id=trial.trial_id, status=status,
                       spec=trial.to_dict(), error=error)


def _pool_worker(conn, telemetry: bool = False,
                 journal_dir: Optional[str] = None,
                 check: bool = False,
                 slo: bool = False) -> None:
    """Persistent worker-process loop: run chunks of trials until told
    to stop.

    Protocol (worker side): receive ``("chunk", [(index, trial_dict),
    ...])`` or ``("stop",)``; for every trial send ``("start", index)``
    before executing (arms the master's per-trial timeout) and
    ``("done", index, kind, payload)`` after, then ``("idle",)`` once
    the chunk drains.  A trial raising is shipped back as an error
    payload — the worker itself survives and keeps serving.
    """
    try:
        while True:
            try:
                command = conn.recv()
            except EOFError:
                break
            if command[0] != "chunk":
                break
            for index, trial_dict in command[1]:
                conn.send(("start", index))
                trial = TrialSpec.from_dict(trial_dict)
                try:
                    record = execute_trial(trial, telemetry=telemetry,
                                           journal_dir=journal_dir,
                                           check=check, slo=slo)
                    conn.send(("done", index, "ok", record.to_line()))
                except BaseException:  # noqa: BLE001 - isolation is the point
                    conn.send(("done", index, "error",
                               traceback.format_exc(limit=20)))
            conn.send(("idle",))
    finally:
        conn.close()


@dataclass
class CampaignSummary:
    """What a campaign run did."""

    total: int
    ran: int
    skipped: int
    failed: int
    elapsed_s: float
    records: List[TrialRecord] = field(default_factory=list)


@dataclass
class _PoolWorker:
    """Master-side book-keeping for one persistent pool worker."""

    process: multiprocessing.process.BaseProcess
    conn: object
    #: Chunk items handed to the worker and not yet reported done,
    #: keyed by expansion index (insertion order = execution order).
    assigned: "Dict[int, TrialSpec]" = field(default_factory=dict)
    #: Index of the trial the worker announced it is executing.
    current: Optional[int] = None
    #: Wall-clock start of the current trial (or chunk dispatch).
    started_at: float = 0.0
    #: True once the worker reported its chunk drained.
    idle: bool = True

    @property
    def busy(self) -> bool:
        return bool(self.assigned)


def _mp_context():
    """Fork where available (fast, Linux); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class CampaignRunner:
    """Executes one campaign against one results store."""

    def __init__(self, spec: CampaignSpec, store: ResultsStore,
                 workers: int = 1,
                 trial_timeout_s: float = DEFAULT_TRIAL_TIMEOUT_S,
                 progress: Optional[ProgressFn] = None,
                 telemetry: bool = False,
                 journal_dir: Optional[str] = None,
                 check: bool = False,
                 slo: bool = False):
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if trial_timeout_s <= 0:
            raise ConfigurationError("trial timeout must be positive")
        self.spec = spec
        self.store = store
        self.workers = workers
        self.trial_timeout_s = trial_timeout_s
        self.progress = progress
        self.telemetry = telemetry
        self.journal_dir = journal_dir
        self.check = check
        self.slo = slo

    def run(self) -> CampaignSummary:
        """Run every not-yet-completed trial; returns the summary."""
        started = time.monotonic()
        trials = self.spec.expand()
        done_ids = self.store.completed_ids()
        todo = [(i, t) for i, t in enumerate(trials)
                if t.trial_id not in done_ids]
        skipped = len(trials) - len(todo)

        if self.workers == 1:
            records = self._run_serial(todo, len(trials), skipped)
        else:
            records = self._run_parallel(todo, len(trials), skipped)

        return CampaignSummary(
            total=len(trials), ran=len(records), skipped=skipped,
            failed=sum(1 for r in records if not r.ok),
            elapsed_s=time.monotonic() - started, records=records)

    # ------------------------------------------------------------------
    # Serial path
    # ------------------------------------------------------------------
    def _run_serial(self, todo: List[Tuple[int, TrialSpec]],
                    total: int, skipped: int) -> List[TrialRecord]:
        records = []
        done = skipped
        for _, trial in todo:
            try:
                record = execute_trial(trial, telemetry=self.telemetry,
                                       journal_dir=self.journal_dir,
                                       check=self.check, slo=self.slo)
            except Exception:  # crash isolation, in-process flavour
                record = _failure_record(
                    trial, "failed", traceback.format_exc(limit=20))
            self.store.append(record)
            records.append(record)
            done += 1
            self._report(done, total, record)
        return records

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------
    def _run_parallel(self, todo: List[Tuple[int, TrialSpec]],
                      total: int, skipped: int) -> List[TrialRecord]:
        ctx = _mp_context()
        pending = list(todo)
        finished: Dict[int, TrialRecord] = {}
        # Records are buffered and flushed in expansion order so the
        # store is byte-identical to a serial run's.
        write_queue = [index for index, _ in todo]
        next_write = 0
        done = skipped
        chunk_size = self._chunk_size(len(todo))
        pool = [self._spawn(ctx)
                for _ in range(min(self.workers, len(todo)))]

        def flush() -> None:
            nonlocal next_write
            while (next_write < len(write_queue)
                   and write_queue[next_write] in finished):
                self.store.append(finished[write_queue[next_write]])
                next_write += 1

        def settle(record_pairs: List[Tuple[int, TrialRecord]]) -> None:
            nonlocal done
            for index, record in record_pairs:
                finished[index] = record
                flush()
                done += 1
                self._report(done, total, record)

        while pending or any(w.busy for w in pool):
            for worker in pool:
                if worker.idle and pending:
                    chunk, pending = pending[:chunk_size], pending[chunk_size:]
                    self._dispatch(worker, chunk)

            time.sleep(0.005)
            for slot, worker in enumerate(pool):
                records, replacement = self._collect(worker, ctx, pending)
                settle(records)
                if replacement is not None:
                    pool[slot] = replacement

        flush()
        for worker in pool:
            self._retire(worker)
        return [finished[index] for index, _ in todo]

    def _chunk_size(self, n_todo: int) -> int:
        """Trials per dispatch: small enough to keep the pool balanced
        (≈4 chunks per worker), capped so a late straggler never sits
        behind a long private queue."""
        per_worker = -(-n_todo // (self.workers * 4))
        return max(1, min(8, per_worker))

    def _spawn(self, ctx) -> _PoolWorker:
        """Fork one persistent pool worker."""
        parent, child = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_pool_worker,
            args=(child, self.telemetry, self.journal_dir, self.check,
                  self.slo),
            daemon=True)
        process.start()
        child.close()
        return _PoolWorker(process=process, conn=parent)

    @staticmethod
    def _dispatch(worker: _PoolWorker,
                  chunk: List[Tuple[int, TrialSpec]]) -> None:
        worker.assigned = {index: trial for index, trial in chunk}
        worker.current = None
        worker.idle = False
        worker.started_at = time.monotonic()
        worker.conn.send(("chunk",
                          [(index, trial.to_dict())
                           for index, trial in chunk]))

    def _collect(self, worker: _PoolWorker, ctx,
                 pending: List[Tuple[int, TrialSpec]],
                 ) -> Tuple[List[Tuple[int, TrialRecord]],
                            Optional[_PoolWorker]]:
        """One poll of a pool worker.

        Returns records produced this poll plus a replacement worker
        when this one had to be killed (timeout) or died underneath us
        (crash).  Unfinished chunk items of a dead worker go back onto
        ``pending`` — only the trial it was actually running is
        recorded as failed/timed out.
        """
        records: List[Tuple[int, TrialRecord]] = []
        if worker.conn.closed:
            return records, None
        while worker.conn.poll():
            try:
                message = worker.conn.recv()
            except EOFError:
                break
            if message[0] == "start":
                worker.current = message[1]
                worker.started_at = time.monotonic()
            elif message[0] == "done":
                _, index, kind, payload = message
                trial = worker.assigned.pop(index)
                worker.current = None
                if kind == "ok":
                    records.append((index, TrialRecord.from_line(payload)))
                else:
                    records.append((index, _failure_record(
                        trial, "failed", str(payload))))
            elif message[0] == "idle":
                worker.idle = True

        if not worker.busy:
            return records, None
        if not worker.process.is_alive():
            reason = (f"worker died "
                      f"(exit code {worker.process.exitcode})")
            records.extend(self._abandon(worker, "failed", reason, pending))
            return records, self._respawn(ctx, pending)
        if time.monotonic() - worker.started_at > self.trial_timeout_s:
            worker.process.terminate()
            reason = f"trial exceeded {self.trial_timeout_s:.0f}s"
            records.extend(self._abandon(worker, "timeout", reason, pending))
            return records, self._respawn(ctx, pending)
        return records, None

    def _abandon(self, worker: _PoolWorker, status: str, reason: str,
                 pending: List[Tuple[int, TrialSpec]],
                 ) -> List[Tuple[int, TrialRecord]]:
        """Tear down a dead/hung worker: fail the trial it was running,
        requeue the rest of its chunk, release its resources."""
        self._retire(worker)
        records = []
        for index, trial in worker.assigned.items():
            if index == worker.current or worker.current is None:
                records.append((index, _failure_record(
                    trial, status, reason)))
                worker.current = index  # requeue only what follows
            else:
                pending.append((index, trial))
        worker.assigned = {}
        return records

    def _respawn(self, ctx,
                 pending: List[Tuple[int, TrialSpec]],
                 ) -> Optional[_PoolWorker]:
        return self._spawn(ctx) if pending else None

    @staticmethod
    def _retire(worker: _PoolWorker) -> None:
        """Stop one pool worker (graceful if it is still listening)."""
        try:
            worker.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5.0)
        worker.conn.close()

    def _report(self, done: int, total: int,
                record: Optional[TrialRecord]) -> None:
        if self.progress is not None:
            self.progress(done, total, record)


def run_campaign(spec: CampaignSpec, store: ResultsStore,
                 workers: int = 1,
                 trial_timeout_s: float = DEFAULT_TRIAL_TIMEOUT_S,
                 progress: Optional[ProgressFn] = None,
                 telemetry: bool = False,
                 journal_dir: Optional[str] = None,
                 check: bool = False,
                 slo: bool = False) -> CampaignSummary:
    """Convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(spec, store, workers=workers,
                          trial_timeout_s=trial_timeout_s,
                          progress=progress, telemetry=telemetry,
                          journal_dir=journal_dir, check=check,
                          slo=slo).run()
