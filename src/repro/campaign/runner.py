"""Campaign execution: fan trials out across worker processes.

The simulator is single-threaded Python, so the only real speed-up
for a campaign is *process-level* parallelism (DAVOS reaches the same
conclusion for its HDL simulators).  Each trial runs in a worker
process of its own:

- **crash isolation** — a worker segfaulting or raising marks that
  one trial ``failed``; the campaign keeps going;
- **per-trial timeout** — a hung simulation becomes a ``timeout``
  record instead of a hung campaign;
- **deterministic output** — per-trial seeds derive from the spec
  alone and records are written in expansion order, so a parallel run
  produces a byte-identical results file to a serial one;
- **resume** — trials already recorded ``ok`` in the store are
  skipped, DAVOS-checkpoint style.

``workers=1`` falls back to plain in-process execution (no fork, easy
debugging, same records).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.dictionary import compile_load
from repro.campaign.results import ResultsStore, TrialRecord
from repro.campaign.spec import CampaignSpec, TrialSpec
from repro.errors import ConfigurationError

#: Generous per-trial wall-clock budget; campaigns of small simulated
#: windows finish trials in well under a second.
DEFAULT_TRIAL_TIMEOUT_S = 300.0

ProgressFn = Callable[[int, int, Optional[TrialRecord]], None]


def execute_trial(trial: TrialSpec,
                  telemetry: bool = False,
                  journal_dir: Optional[str] = None) -> TrialRecord:
    """Run one trial in the current process and build its record.

    ``telemetry=True`` records spans during the trial and attaches the
    per-trial telemetry summary to the record's metrics; the default
    keeps records byte-identical to pre-telemetry campaigns.  With
    ``journal_dir`` set, the trial runs with the dependability journal
    on, writes ``<journal_dir>/<trial_id>.journal.jsonl`` and attaches
    the journal digest (availability, MTTR, fault matching) to the
    record's metrics.
    """
    from repro.experiments.trial import run_fault_trial  # lazy: keeps
    # campaign importable without dragging the full stack in at startup

    trial.validate()
    result = run_fault_trial(
        style=trial.replication_style, n_replicas=trial.n_replicas,
        n_clients=trial.n_clients, duration_us=trial.duration_us,
        rate_per_s=trial.rate_per_s, seed=trial.seed,
        checkpoint_interval=trial.checkpoint_interval,
        deadline_us=trial.deadline_us, settle_us=trial.settle_us,
        inject=lambda ctx: compile_load(trial.fault_load, ctx),
        telemetry=telemetry, journal=journal_dir is not None)
    if journal_dir is not None and result.journal_events is not None:
        from repro.journal.io import write_jsonl
        os.makedirs(journal_dir, exist_ok=True)
        write_jsonl(result.journal_events,
                    os.path.join(journal_dir,
                                 f"{trial.trial_id}.journal.jsonl"))
    return TrialRecord(trial_id=trial.trial_id, status="ok",
                       spec=trial.to_dict(), metrics=result.metrics())


def _failure_record(trial: TrialSpec, status: str,
                    error: str) -> TrialRecord:
    return TrialRecord(trial_id=trial.trial_id, status=status,
                       spec=trial.to_dict(), error=error)


def _trial_worker(conn, trial_dict: Dict[str, object],
                  telemetry: bool = False,
                  journal_dir: Optional[str] = None) -> None:
    """Worker-process entry point: run one trial, ship the record."""
    trial = TrialSpec.from_dict(trial_dict)
    try:
        record = execute_trial(trial, telemetry=telemetry,
                               journal_dir=journal_dir)
        conn.send(("ok", record.to_line()))
    except BaseException:  # noqa: BLE001 - the whole point is isolation
        conn.send(("error", traceback.format_exc(limit=20)))
    finally:
        conn.close()


@dataclass
class CampaignSummary:
    """What a campaign run did."""

    total: int
    ran: int
    skipped: int
    failed: int
    elapsed_s: float
    records: List[TrialRecord] = field(default_factory=list)


@dataclass
class _Running:
    """Book-keeping for one in-flight worker."""

    index: int
    trial: TrialSpec
    process: multiprocessing.process.BaseProcess
    conn: object
    started_at: float


def _mp_context():
    """Fork where available (fast, Linux); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class CampaignRunner:
    """Executes one campaign against one results store."""

    def __init__(self, spec: CampaignSpec, store: ResultsStore,
                 workers: int = 1,
                 trial_timeout_s: float = DEFAULT_TRIAL_TIMEOUT_S,
                 progress: Optional[ProgressFn] = None,
                 telemetry: bool = False,
                 journal_dir: Optional[str] = None):
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if trial_timeout_s <= 0:
            raise ConfigurationError("trial timeout must be positive")
        self.spec = spec
        self.store = store
        self.workers = workers
        self.trial_timeout_s = trial_timeout_s
        self.progress = progress
        self.telemetry = telemetry
        self.journal_dir = journal_dir

    def run(self) -> CampaignSummary:
        """Run every not-yet-completed trial; returns the summary."""
        started = time.monotonic()
        trials = self.spec.expand()
        done_ids = self.store.completed_ids()
        todo = [(i, t) for i, t in enumerate(trials)
                if t.trial_id not in done_ids]
        skipped = len(trials) - len(todo)

        if self.workers == 1:
            records = self._run_serial(todo, len(trials), skipped)
        else:
            records = self._run_parallel(todo, len(trials), skipped)

        return CampaignSummary(
            total=len(trials), ran=len(records), skipped=skipped,
            failed=sum(1 for r in records if not r.ok),
            elapsed_s=time.monotonic() - started, records=records)

    # ------------------------------------------------------------------
    # Serial path
    # ------------------------------------------------------------------
    def _run_serial(self, todo: List[Tuple[int, TrialSpec]],
                    total: int, skipped: int) -> List[TrialRecord]:
        records = []
        done = skipped
        for _, trial in todo:
            try:
                record = execute_trial(trial, telemetry=self.telemetry,
                                       journal_dir=self.journal_dir)
            except Exception:  # crash isolation, in-process flavour
                record = _failure_record(
                    trial, "failed", traceback.format_exc(limit=20))
            self.store.append(record)
            records.append(record)
            done += 1
            self._report(done, total, record)
        return records

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------
    def _run_parallel(self, todo: List[Tuple[int, TrialSpec]],
                      total: int, skipped: int) -> List[TrialRecord]:
        ctx = _mp_context()
        pending = list(todo)
        running: List[_Running] = []
        finished: Dict[int, TrialRecord] = {}
        # Records are buffered and flushed in expansion order so the
        # store is byte-identical to a serial run's.
        write_queue = [index for index, _ in todo]
        next_write = 0
        done = skipped

        def flush() -> None:
            nonlocal next_write
            while (next_write < len(write_queue)
                   and write_queue[next_write] in finished):
                self.store.append(finished[write_queue[next_write]])
                next_write += 1

        while pending or running:
            while pending and len(running) < self.workers:
                index, trial = pending.pop(0)
                parent, child = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_trial_worker,
                    args=(child, trial.to_dict(), self.telemetry,
                          self.journal_dir),
                    daemon=True)
                process.start()
                child.close()
                running.append(_Running(index=index, trial=trial,
                                        process=process, conn=parent,
                                        started_at=time.monotonic()))

            time.sleep(0.005)
            still_running: List[_Running] = []
            for worker in running:
                record = self._collect(worker)
                if record is None:
                    still_running.append(worker)
                    continue
                finished[worker.index] = record
                flush()
                done += 1
                self._report(done, total, record)
            running = still_running

        flush()
        return [finished[index] for index, _ in todo]

    def _collect(self, worker: _Running) -> Optional[TrialRecord]:
        """One poll of an in-flight worker; a record ends it."""
        if worker.conn.poll():
            try:
                kind, payload = worker.conn.recv()
            except EOFError:
                kind, payload = "error", "worker closed the pipe"
            self._reap(worker)
            if kind == "ok":
                return TrialRecord.from_line(payload)
            return _failure_record(worker.trial, "failed", str(payload))
        if not worker.process.is_alive():
            self._reap(worker)
            return _failure_record(
                worker.trial, "failed",
                f"worker died (exit code {worker.process.exitcode})")
        if time.monotonic() - worker.started_at > self.trial_timeout_s:
            worker.process.terminate()
            self._reap(worker)
            return _failure_record(
                worker.trial, "timeout",
                f"trial exceeded {self.trial_timeout_s:.0f}s")
        return None

    @staticmethod
    def _reap(worker: _Running) -> None:
        worker.process.join(timeout=5.0)
        worker.conn.close()

    def _report(self, done: int, total: int,
                record: Optional[TrialRecord]) -> None:
        if self.progress is not None:
            self.progress(done, total, record)


def run_campaign(spec: CampaignSpec, store: ResultsStore,
                 workers: int = 1,
                 trial_timeout_s: float = DEFAULT_TRIAL_TIMEOUT_S,
                 progress: Optional[ProgressFn] = None,
                 telemetry: bool = False,
                 journal_dir: Optional[str] = None) -> CampaignSummary:
    """Convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(spec, store, workers=workers,
                          trial_timeout_s=trial_timeout_s,
                          progress=progress, telemetry=telemetry,
                          journal_dir=journal_dir).run()
