"""The fault-load dictionary: named, composable fault loads.

DAVOS-style: a campaign references fault loads *by name*; each name
maps to a tuple of :class:`FaultEntry` instances that compile
themselves into concrete :class:`FaultInjector` schedules against a
live trial (crash the primary 30 % into the window, drop frames for a
fifth of it, ...).  Entries parameterize by *fractions* of the trial
window, so one dictionary serves every workload duration.

Loads compose: a load is just a tuple of entries, and
:func:`register_load` admits project-specific combinations at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.trial import TrialContext


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultEntry:
    """One dictionary entry: knows how to schedule itself on a trial."""

    def schedule(self, ctx: "TrialContext") -> None:
        """Compile this entry into injector calls against ``ctx``."""
        raise NotImplementedError

    def _replica(self, ctx: "TrialContext", index: int):
        """Target replica, clamped to the deployed group size."""
        return ctx.replicas[min(index, len(ctx.replicas) - 1)]


@dataclass(frozen=True)
class ProcessCrash(FaultEntry):
    """Software crash fault on one replica (default: the primary, so
    failover — not just redundancy — is what gets measured)."""

    at_fraction: float = 0.3
    replica_index: int = 0

    def schedule(self, ctx: "TrialContext") -> None:
        """Kill the target replica's process mid-window."""
        _check_fraction("at_fraction", self.at_fraction)
        ctx.injector.crash_process_at(
            self._replica(ctx, self.replica_index).process,
            ctx.t0 + self.at_fraction * ctx.duration_us)


@dataclass(frozen=True)
class HostCrash(FaultEntry):
    """Hardware crash fault: the whole machine under a replica dies
    (default: the last replica's host, which never carries the GCS
    sequencer)."""

    at_fraction: float = 0.3
    replica_index: int = -1

    def schedule(self, ctx: "TrialContext") -> None:
        """Crash the target replica's whole host mid-window."""
        _check_fraction("at_fraction", self.at_fraction)
        index = (len(ctx.replicas) - 1 if self.replica_index < 0
                 else self.replica_index)
        ctx.injector.crash_host_at(
            self._replica(ctx, index).process.host,
            ctx.t0 + self.at_fraction * ctx.duration_us)


@dataclass(frozen=True)
class CrashAndRestart(FaultEntry):
    """Recovery fault: crash a replica, then redeploy it on the same
    host after a delay — the fault the re-integration path (state
    sync for a joining member) is measured by."""

    at_fraction: float = 0.3
    restart_after_fraction: float = 0.2
    replica_index: int = 0

    def schedule(self, ctx: "TrialContext") -> None:
        """Crash the replica, then respawn it after the delay."""
        _check_fraction("at_fraction", self.at_fraction)
        _check_fraction("restart_after_fraction",
                        self.restart_after_fraction)
        index = min(self.replica_index, len(ctx.replicas) - 1)
        ctx.injector.crash_and_restart_at(
            ctx.replicas[index].process,
            ctx.t0 + self.at_fraction * ctx.duration_us,
            max(self.restart_after_fraction * ctx.duration_us, 1.0),
            restart=lambda: ctx.respawn_replica(index))


@dataclass(frozen=True)
class LossBurst(FaultEntry):
    """Transient communication fault: a frame-loss window."""

    start_fraction: float = 0.3
    duration_fraction: float = 0.2
    rate: float = 1.0

    def schedule(self, ctx: "TrialContext") -> None:
        """Drop frames at ``rate`` for the configured window."""
        _check_fraction("start_fraction", self.start_fraction)
        _check_fraction("duration_fraction", self.duration_fraction)
        start = ctx.t0 + self.start_fraction * ctx.duration_us
        ctx.injector.loss_burst(
            start, start + max(self.duration_fraction * ctx.duration_us,
                               1.0),
            rate=self.rate)


@dataclass(frozen=True)
class DelaySpike(FaultEntry):
    """Timing fault: messages arrive, but late."""

    start_fraction: float = 0.3
    duration_fraction: float = 0.2
    extra_us: float = 5_000.0

    def schedule(self, ctx: "TrialContext") -> None:
        """Add ``extra_us`` to every frame in the window."""
        _check_fraction("start_fraction", self.start_fraction)
        _check_fraction("duration_fraction", self.duration_fraction)
        start = ctx.t0 + self.start_fraction * ctx.duration_us
        ctx.injector.delay_spike(
            start, start + max(self.duration_fraction * ctx.duration_us,
                               1.0),
            extra_us=self.extra_us)


@dataclass(frozen=True)
class CpuHog(FaultEntry):
    """Performance fault: a runaway co-located task steals the CPU
    under one replica."""

    at_fraction: float = 0.3
    busy_us: float = 50_000.0
    replica_index: int = 0

    def schedule(self, ctx: "TrialContext") -> None:
        """Steal the target replica's CPU for ``busy_us``."""
        _check_fraction("at_fraction", self.at_fraction)
        ctx.injector.cpu_hog_at(
            self._replica(ctx, self.replica_index).process.host,
            ctx.t0 + self.at_fraction * ctx.duration_us,
            busy_us=self.busy_us)


@dataclass(frozen=True)
class Partition(FaultEntry):
    """Topology fault: a symmetric network split that isolates one
    replica's host (default: the last replica, which never carries
    the GCS sequencer) from everyone else, healing mid-window."""

    start_fraction: float = 0.3
    duration_fraction: float = 0.3
    replica_index: int = -1

    def schedule(self, ctx: "TrialContext") -> None:
        """Cut the target replica's host off, then heal."""
        _check_fraction("start_fraction", self.start_fraction)
        _check_fraction("duration_fraction", self.duration_fraction)
        index = (len(ctx.replicas) - 1 if self.replica_index < 0
                 else min(self.replica_index, len(ctx.replicas) - 1))
        start = ctx.t0 + self.start_fraction * ctx.duration_us
        ctx.injector.partition_at(
            [[ctx.replicas[index].process.host.name]],
            start,
            start + max(self.duration_fraction * ctx.duration_us, 1.0))


@dataclass(frozen=True)
class AsymPartition(FaultEntry):
    """Topology fault: one-way reachability loss — frames *from* the
    target replica's host are dropped while frames *to* it still
    arrive, the classic gray-failure shape a symmetric-split model
    cannot express."""

    start_fraction: float = 0.3
    duration_fraction: float = 0.3
    replica_index: int = -1

    def schedule(self, ctx: "TrialContext") -> None:
        """Drop the target host's outbound frames for the window."""
        _check_fraction("start_fraction", self.start_fraction)
        _check_fraction("duration_fraction", self.duration_fraction)
        index = (len(ctx.replicas) - 1 if self.replica_index < 0
                 else min(self.replica_index, len(ctx.replicas) - 1))
        src = ctx.replicas[index].process.host.name
        dst = sorted(h for h in ctx.testbed.network.hosts if h != src)
        start = ctx.t0 + self.start_fraction * ctx.duration_us
        ctx.injector.asymmetric_partition_at(
            [src], dst, start,
            start + max(self.duration_fraction * ctx.duration_us, 1.0))


@dataclass(frozen=True)
class FlakyLinkFault(FaultEntry):
    """Gray failure: Bernoulli frame loss on the single link pair
    between two replicas' hosts — every other link stays clean, so
    only path-sensitive detection notices."""

    start_fraction: float = 0.3
    duration_fraction: float = 0.3
    rate: float = 0.5
    replica_a: int = 0
    replica_b: int = -1

    def schedule(self, ctx: "TrialContext") -> None:
        """Make the one link between the two replicas lossy."""
        _check_fraction("start_fraction", self.start_fraction)
        _check_fraction("duration_fraction", self.duration_fraction)
        last = len(ctx.replicas) - 1
        a = ctx.replicas[min(self.replica_a, last)].process.host.name
        b_index = last if self.replica_b < 0 else min(self.replica_b,
                                                      last)
        b = ctx.replicas[b_index].process.host.name
        start = ctx.t0 + self.start_fraction * ctx.duration_us
        ctx.injector.flaky_link(
            a, b, self.rate, start,
            start + max(self.duration_fraction * ctx.duration_us, 1.0))


@dataclass(frozen=True)
class SlowHostFault(FaultEntry):
    """Gray failure: every frame into or out of one replica's host is
    late by ``extra_us`` — the host is up but slow, the fault class a
    binary up/down detector mishandles."""

    start_fraction: float = 0.3
    duration_fraction: float = 0.3
    extra_us: float = 20_000.0
    replica_index: int = -1

    def schedule(self, ctx: "TrialContext") -> None:
        """Slow the target replica's host for the window."""
        _check_fraction("start_fraction", self.start_fraction)
        _check_fraction("duration_fraction", self.duration_fraction)
        index = (len(ctx.replicas) - 1 if self.replica_index < 0
                 else min(self.replica_index, len(ctx.replicas) - 1))
        start = ctx.t0 + self.start_fraction * ctx.duration_us
        ctx.injector.slow_host(
            ctx.replicas[index].process.host, self.extra_us, start,
            start + max(self.duration_fraction * ctx.duration_us, 1.0))


FaultLoad = Tuple[FaultEntry, ...]

#: The built-in dictionary: every fault class of the paper's fault
#: model (Section 3.1) plus the recovery fault and two compositions.
_LOADS: Dict[str, FaultLoad] = {
    "none": (),
    "process_crash": (ProcessCrash(),),
    "host_crash": (HostCrash(),),
    "crash_and_restart": (CrashAndRestart(),),
    "loss_burst": (LossBurst(),),
    "delay_spike": (DelaySpike(),),
    "cpu_hog": (CpuHog(),),
    "partition": (Partition(),),
    "asym_partition": (AsymPartition(),),
    "flaky_link": (FlakyLinkFault(),),
    "slow_host": (SlowHostFault(),),
    "crash_under_loss": (ProcessCrash(at_fraction=0.5),
                         LossBurst(start_fraction=0.2,
                                   duration_fraction=0.2, rate=0.5)),
    "double_crash": (ProcessCrash(at_fraction=0.3, replica_index=0),
                     ProcessCrash(at_fraction=0.6, replica_index=1)),
    "partition_under_load": (Partition(start_fraction=0.2,
                                       duration_fraction=0.4),
                             SlowHostFault(start_fraction=0.7,
                                           duration_fraction=0.2,
                                           replica_index=0)),
}


def available_loads() -> List[str]:
    """Registered fault-load names, sorted."""
    return sorted(_LOADS)


def fault_load(name: str) -> FaultLoad:
    """Look a load up by name."""
    try:
        return _LOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault load {name!r}; "
            f"known: {', '.join(available_loads())}") from None


def register_load(name: str, entries: FaultLoad,
                  replace: bool = False) -> None:
    """Add a (possibly composite) load to the dictionary."""
    if not name:
        raise ConfigurationError("a fault load needs a name")
    if name in _LOADS and not replace:
        raise ConfigurationError(f"fault load {name!r} already registered")
    _LOADS[name] = tuple(entries)


def compile_load(name: str, ctx: "TrialContext") -> int:
    """Schedule every entry of the named load; returns how many."""
    entries = fault_load(name)
    for entry in entries:
        entry.schedule(ctx)
    return len(entries)
