"""Declarative campaign and trial specifications.

A :class:`CampaignSpec` describes a sweep over the paper's knob
design space — replication style, replica count, checkpoint frequency
— crossed with fault-dictionary loads and seeds (DAVOS calls this the
*fault-injection campaign*).  It expands deterministically into
:class:`TrialSpec` instances: same spec, same trial list, same
per-trial seeds, on every machine and in every worker process — the
property the campaign engine's bit-identical-rerun guarantee rests on.

Both dataclasses round-trip through JSON so campaigns can live in
version control next to their results.
"""

from __future__ import annotations

import itertools
import json
import random
import zlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.campaign.dictionary import available_loads
from repro.errors import ConfigurationError
from repro.replication.styles import ReplicationStyle
from repro.sim.config import PAPER_LATENCY_LIMIT_US

#: Bump when the expansion/seeding rules change incompatibly.
SPEC_VERSION = 1


@dataclass(frozen=True)
class TrialSpec:
    """One fully-determined trial: a knob configuration, a fault load
    and a seed, plus the workload window it runs under."""

    trial_id: str
    style: str
    n_replicas: int
    checkpoint_interval: int
    fault_load: str
    seed: int
    n_clients: int
    duration_us: float
    rate_per_s: float
    deadline_us: float
    settle_us: float
    #: Shard count; 1 = the classic single replica group.  Sharded
    #: trials (> 1) run through :func:`repro.cluster.run_cluster_trial`
    #: and support only the ``none``/``process_crash`` fault loads.
    n_shards: int = 1

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any bad field."""
        if not self.trial_id:
            raise ConfigurationError("trial needs a non-empty id")
        try:
            ReplicationStyle(self.style)
        except ValueError:
            raise ConfigurationError(
                f"unknown replication style {self.style!r}") from None
        if self.fault_load not in available_loads():
            raise ConfigurationError(
                f"unknown fault load {self.fault_load!r}; "
                f"known: {', '.join(available_loads())}")
        if self.n_replicas < 1 or self.n_clients < 1:
            raise ConfigurationError("replicas and clients must be >= 1")
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint interval must be >= 1")
        if self.n_shards < 1:
            raise ConfigurationError("shard count must be >= 1")
        if self.n_shards > 1 and self.fault_load not in ("none",
                                                         "process_crash"):
            raise ConfigurationError(
                f"sharded trials support fault loads 'none' and "
                f"'process_crash', not {self.fault_load!r}")
        if min(self.duration_us, self.rate_per_s, self.deadline_us) <= 0:
            raise ConfigurationError(
                "duration, rate and deadline must be positive")
        if self.settle_us < 0:
            raise ConfigurationError("settle time must be non-negative")

    @property
    def replication_style(self) -> ReplicationStyle:
        return ReplicationStyle(self.style)

    @property
    def config_key(self) -> str:
        """Knob-configuration key (what scores aggregate over)."""
        style = ReplicationStyle(self.style)
        base = f"{style.short}({self.n_replicas})/k{self.checkpoint_interval}"
        if self.n_shards > 1:
            return f"{base}x{self.n_shards}"
        return base

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (embedded verbatim in trial records).

        ``n_shards`` is omitted at its default so unsharded records
        stay byte-identical to those of earlier builds."""
        data = asdict(self)
        if self.n_shards == 1:
            del data["n_shards"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrialSpec":
        try:
            spec = cls(**data)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ConfigurationError(f"bad trial spec: {exc}") from None
        spec.validate()
        return spec


@dataclass
class CampaignSpec:
    """A sweep: knob grid x fault loads x seeds.

    ``sample`` switches from exhaustive grid expansion to a random
    (but ``base_seed``-deterministic) subsample of that many trials —
    the DAVOS move for design spaces too big to sweep exhaustively.
    """

    name: str
    styles: List[str] = field(default_factory=lambda: [
        ReplicationStyle.ACTIVE.value,
        ReplicationStyle.WARM_PASSIVE.value])
    replica_counts: List[int] = field(default_factory=lambda: [2, 3])
    checkpoint_intervals: List[int] = field(default_factory=lambda: [1])
    fault_loads: List[str] = field(default_factory=lambda: [
        "none", "process_crash", "loss_burst"])
    #: Shard counts to sweep; the default [1] keeps campaigns (and
    #: their trial ids) identical to pre-cluster builds.
    shard_counts: List[int] = field(default_factory=lambda: [1])
    seeds: List[int] = field(default_factory=lambda: [0])
    n_clients: int = 2
    duration_us: float = 1_000_000.0
    rate_per_s: float = 150.0
    deadline_us: float = PAPER_LATENCY_LIMIT_US
    settle_us: float = 1_500_000.0
    sample: Optional[int] = None
    base_seed: int = 0
    version: int = SPEC_VERSION

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any bad field."""
        if not self.name:
            raise ConfigurationError("campaign needs a name")
        if self.version != SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported spec version {self.version} "
                f"(this build speaks {SPEC_VERSION})")
        for axis, values in (("styles", self.styles),
                             ("replica_counts", self.replica_counts),
                             ("checkpoint_intervals",
                              self.checkpoint_intervals),
                             ("fault_loads", self.fault_loads),
                             ("shard_counts", self.shard_counts),
                             ("seeds", self.seeds)):
            if not values:
                raise ConfigurationError(f"empty campaign axis: {axis}")
            if len(set(values)) != len(values):
                raise ConfigurationError(f"duplicate values in {axis}")
        if self.sample is not None and self.sample < 1:
            raise ConfigurationError("sample size must be >= 1")
        for trial in self._grid():
            trial.validate()

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def _grid(self) -> List[TrialSpec]:
        trials = []
        for style, n_replicas, interval, fault, n_shards, seed in \
                itertools.product(
                    self.styles, self.replica_counts,
                    self.checkpoint_intervals, self.fault_loads,
                    self.shard_counts, self.seeds):
            if n_shards > 1 and fault not in ("none", "process_crash"):
                # The other dictionary loads assume one replica group;
                # drop those combinations rather than failing the sweep.
                continue
            trial_id = (f"{style}-r{n_replicas}-k{interval}"
                        f"-{fault}"
                        f"{f'-sh{n_shards}' if n_shards > 1 else ''}"
                        f"-s{seed}")
            trials.append(TrialSpec(
                trial_id=trial_id, style=style, n_replicas=n_replicas,
                checkpoint_interval=interval, fault_load=fault,
                seed=derive_trial_seed(self.base_seed, trial_id),
                n_clients=self.n_clients, duration_us=self.duration_us,
                rate_per_s=self.rate_per_s,
                deadline_us=self.deadline_us, settle_us=self.settle_us,
                n_shards=n_shards))
        return trials

    def expand(self) -> List[TrialSpec]:
        """The deterministic trial list (grid, or a seeded subsample)."""
        self.validate()
        trials = self._grid()
        if self.sample is not None and self.sample < len(trials):
            rng = random.Random(self.base_seed)
            keep = set(rng.sample(range(len(trials)), self.sample))
            trials = [t for i, t in enumerate(trials) if i in keep]
        return trials

    def n_trials(self) -> int:
        """Trial count after sampling."""
        return len(self.expand())

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_json(self, indent: int = 2) -> str:
        """Serialize the spec as canonical (sorted-key) JSON."""
        return json.dumps(asdict(self), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"bad campaign JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigurationError("campaign spec must be a JSON object")
        try:
            spec = cls(**data)
        except TypeError as exc:
            raise ConfigurationError(f"bad campaign spec: {exc}") from None
        spec.validate()
        return spec

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def derive_trial_seed(base_seed: int, trial_id: str) -> int:
    """Deterministic per-trial seed: independent of Python's hash
    randomization and of which worker process runs the trial."""
    return zlib.crc32(f"{base_seed}|{trial_id}".encode("utf-8")) & 0x7FFFFFFF
