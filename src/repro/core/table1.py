"""Paper Table 1: the mapping from high-level to low-level knobs.

The table records, for each high-level knob, (a) which low-level
knobs implement it and (b) which application parameters — outside the
framework's control — influence it.  The registry is used by the
documentation benchmark (it *is* Table 1) and by the knob layer to
sanity-check that a high-level knob only drives low-level knobs it is
declared to depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Canonical low-level knob names.
LOW_LEVEL_KNOBS = (
    "replication_style",
    "n_replicas",
    "checkpoint_interval",
)

#: Canonical application-parameter names (not under framework control).
APPLICATION_PARAMETERS = (
    "request_rate",
    "request_size",
    "response_size",
    "state_size",
    "resources",
)


@dataclass(frozen=True)
class KnobMapping:
    """One row of Table 1."""

    high_level: str
    low_level: Tuple[str, ...]
    application_parameters: Tuple[str, ...]


#: The three rows of the paper's Table 1.
TABLE_1: Dict[str, KnobMapping] = {
    "scalability": KnobMapping(
        high_level="scalability",
        low_level=("replication_style", "n_replicas"),
        application_parameters=("request_rate", "request_size",
                                "response_size", "resources"),
    ),
    "availability": KnobMapping(
        high_level="availability",
        low_level=("replication_style", "checkpoint_interval"),
        application_parameters=("state_size", "resources"),
    ),
    "real_time": KnobMapping(
        high_level="real_time",
        low_level=("replication_style", "n_replicas",
                    "checkpoint_interval"),
        application_parameters=("request_rate", "request_size",
                                "response_size", "state_size",
                                "resources"),
    ),
}


def validate_table() -> None:
    """Internal consistency: every referenced knob/parameter exists."""
    for mapping in TABLE_1.values():
        for knob in mapping.low_level:
            if knob not in LOW_LEVEL_KNOBS:
                raise ValueError(f"unknown low-level knob: {knob}")
        for parameter in mapping.application_parameters:
            if parameter not in APPLICATION_PARAMETERS:
                raise ValueError(f"unknown application parameter: "
                                 f"{parameter}")
