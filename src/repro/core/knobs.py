"""The knob hierarchy: low-level and high-level tuning controls.

Low-level knobs set internal fault-tolerance parameters directly (the
replication style, the number of replicas, the checkpointing
frequency).  High-level knobs expose externally meaningful properties
(scalability, availability) and translate a setting into low-level
knob actions through a policy — "the users ... do not need to quantify
or understand the intricate relationships between internal and
external properties" (Section 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.core.policies import PolicyEntry, ScalabilityPolicy
from repro.errors import PolicyError
from repro.replication.factory import ReplicaFactory
from repro.replication.server import ServerReplicator
from repro.replication.styles import ReplicationStyle


class Knob:
    """Base class: a named control with a current value."""

    def __init__(self, name: str, level: str):
        if level not in ("low", "high"):
            raise PolicyError(f"knob level must be low|high, not {level}")
        self.name = name
        self.level = level
        self.history: List[Any] = []

    def get(self) -> Any:
        """Current value of the knob."""
        raise NotImplementedError

    def set(self, value: Any) -> None:
        """Apply a new value and record it in the history."""
        self._apply(value)
        self.history.append(value)

    def _apply(self, value: Any) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.level}-level knob {self.name!r} = {self.get()!r}>"


# ---------------------------------------------------------------------------
# Low-level knobs
# ---------------------------------------------------------------------------

class ReplicationStyleKnob(Knob):
    """Low-level knob: the group's replication style, switched at
    runtime through the Fig. 5 protocol on any live replica."""

    def __init__(self, replicas: Sequence[ServerReplicator]):
        super().__init__("replication_style", "low")
        self._replicas = list(replicas)

    def add_replica(self, replicator: ServerReplicator) -> None:
        """Track another replica's replicator."""
        self._replicas.append(replicator)

    def _live(self) -> List[ServerReplicator]:
        return [r for r in self._replicas if r.alive]

    def get(self) -> Optional[ReplicationStyle]:
        """Style of the first live replica (None if none)."""
        live = self._live()
        return live[0].style if live else None

    def _apply(self, value: ReplicationStyle) -> None:
        live = self._live()
        if not live:
            raise PolicyError("no live replica to switch")
        if live[0].style is value and not live[0].switching:
            return  # already there
        live[0].request_switch(value)


class NumReplicasKnob(Knob):
    """Low-level knob: the redundancy level, via the replica factory."""

    def __init__(self, factory: ReplicaFactory):
        super().__init__("n_replicas", "low")
        self._factory = factory

    def get(self) -> int:
        """The factory's current target."""
        return self._factory.target

    def _apply(self, value: int) -> None:
        self._factory.set_target(int(value))


class CheckpointIntervalKnob(Knob):
    """Low-level knob: checkpoint every N requests (warm/cold passive)."""

    def __init__(self, replicas: Sequence[ServerReplicator]):
        super().__init__("checkpoint_interval", "low")
        self._replicas = list(replicas)

    def add_replica(self, replicator: ServerReplicator) -> None:
        """Track another replica's replicator."""
        self._replicas.append(replicator)

    def get(self) -> Optional[int]:
        """Interval at the first live replica (None if none)."""
        live = [r for r in self._replicas if r.alive]
        return live[0].config.checkpoint_interval_requests if live else None

    def _apply(self, value: int) -> None:
        for replicator in self._replicas:
            if replicator.alive:
                replicator.set_checkpoint_interval(int(value))


# ---------------------------------------------------------------------------
# High-level knobs
# ---------------------------------------------------------------------------

class ScalabilityKnob(Knob):
    """High-level knob of Section 4.3: "given a number of clients,
    decide the best possible configuration for the servers".

    Setting the knob to N clients looks up the synthesized policy and
    drives the style and redundancy low-level knobs accordingly.
    """

    def __init__(self, policy: ScalabilityPolicy,
                 style_knob: ReplicationStyleKnob,
                 replicas_knob: NumReplicasKnob):
        super().__init__("scalability", "high")
        self.policy = policy
        self._style_knob = style_knob
        self._replicas_knob = replicas_knob
        self._current: Optional[int] = None
        self.last_entry: Optional[PolicyEntry] = None

    def get(self) -> Optional[int]:
        """The client count the knob was last set to."""
        return self._current

    def _apply(self, n_clients: int) -> None:
        entry = self.policy.best_configuration(int(n_clients))
        # Order matters: grow the group before relaxing the style, so
        # fault-tolerance never dips below both settings' minimum.
        if entry.config.n_replicas >= (self._replicas_knob.get() or 0):
            self._replicas_knob.set(entry.config.n_replicas)
            self._style_knob.set(entry.config.style)
        else:
            self._style_knob.set(entry.config.style)
            self._replicas_knob.set(entry.config.n_replicas)
        self._current = int(n_clients)
        self.last_entry = entry


@dataclass(frozen=True)
class AvailabilityModel:
    """Steady-state availability of a replicated service.

    With per-replica MTTF and a style-dependent recovery time, the
    service is unavailable only when all replicas are down (active /
    warm) or during the recovery window (cold).  This simple Markov
    approximation is enough to invert "desired availability" into a
    redundancy level — the paper's availability high-level knob
    (Table 1 maps it to the replication style, the number of replicas
    and the checkpointing frequency).
    """

    replica_mttf_us: float = 3.6e9          # ~1 hour
    active_failover_us: float = 1_000.0     # surviving replicas answer
    warm_failover_us: float = 500_000.0     # detection + promotion
    cold_failover_us: float = 5_000_000.0   # detection + spawn + restore

    def failover_us(self, style: ReplicationStyle) -> float:
        """Failover window for ``style``."""
        if style is ReplicationStyle.ACTIVE:
            return self.active_failover_us
        if style is ReplicationStyle.WARM_PASSIVE:
            return self.warm_failover_us
        return self.cold_failover_us

    def availability(self, style: ReplicationStyle,
                     n_replicas: int) -> float:
        """Fraction of time the service answers requests.

        Unavailability has two terms: (a) the failover window paid on
        each primary fault (style-dependent; a single unreplicated
        copy always pays the cold restart), and (b) the probability
        that *every* replica is simultaneously down (each replica is
        independently in its restart window a fraction of the time),
        which shrinks geometrically with the redundancy level.
        """
        if n_replicas < 1:
            return 0.0
        per_fault = (self.failover_us(style) if n_replicas >= 2
                     else self.cold_failover_us)
        u_failover = per_fault / self.replica_mttf_us
        restart_fraction = self.cold_failover_us / self.replica_mttf_us
        u_exhaust = restart_fraction ** n_replicas
        return max(0.0, 1.0 - u_failover - u_exhaust)


class AvailabilityKnob(Knob):
    """High-level knob: set a target availability (e.g. 0.9999); the
    knob picks the cheapest (style, n_replicas) meeting it."""

    def __init__(self, model: AvailabilityModel,
                 style_knob: ReplicationStyleKnob,
                 replicas_knob: NumReplicasKnob,
                 candidate_styles: Sequence[ReplicationStyle] = (
                     ReplicationStyle.COLD_PASSIVE,
                     ReplicationStyle.WARM_PASSIVE,
                     ReplicationStyle.ACTIVE),
                 max_replicas: int = 5):
        super().__init__("availability", "high")
        self.model = model
        self._style_knob = style_knob
        self._replicas_knob = replicas_knob
        self.candidate_styles = list(candidate_styles)
        self.max_replicas = max_replicas
        self._current: Optional[float] = None
        self.chosen: Optional[tuple] = None

    def get(self) -> Optional[float]:
        """The availability target last applied."""
        return self._current

    def plan(self, target: float) -> tuple:
        """Cheapest (style, n_replicas) reaching ``target``; candidate
        styles are tried in the given (cheap-first) order."""
        if not 0.0 < target < 1.0:
            raise PolicyError("availability target must be in (0, 1)")
        for n_replicas in range(1, self.max_replicas + 1):
            for style in self.candidate_styles:
                if self.model.availability(style, n_replicas) >= target:
                    return style, n_replicas
        raise PolicyError(
            f"availability {target} unreachable with "
            f"<= {self.max_replicas} replicas")

    def _apply(self, target: float) -> None:
        style, n_replicas = self.plan(float(target))
        self._replicas_knob.set(n_replicas)
        self._style_knob.set(style)
        self._current = float(target)
        self.chosen = (style, n_replicas)
