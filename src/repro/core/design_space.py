"""The dependability design space (paper Figures 1 and 9).

Three axes: fault-tolerance, performance, resources.  Figure 9 plots
the measured configurations of both replication styles in this space,
normalized to their maxima, and observes that each style covers a
*region* (not a point) and that the two regions do not overlap — the
knobs are what let the system move anywhere in the union.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.measurements import Profile
from repro.errors import PolicyError
from repro.replication.styles import ReplicationStyle


@dataclass(frozen=True)
class DesignPoint:
    """One configuration in the normalized design space.

    - ``fault_tolerance``: faults tolerated / max faults tolerated
    - ``performance``: inverse normalized latency (higher = faster)
    - ``resources``: bandwidth / max bandwidth (higher = hungrier)
    """

    style: ReplicationStyle
    n_replicas: int
    n_clients: int
    fault_tolerance: float
    performance: float
    resources: float

    def as_tuple(self) -> Tuple[float, float, float]:
        """(fault_tolerance, performance, resources)."""
        return self.fault_tolerance, self.performance, self.resources


class DesignSpace:
    """The normalized {FT x performance x resources} point cloud."""

    def __init__(self, points: List[DesignPoint]):
        if not points:
            raise PolicyError("design space needs at least one point")
        self.points = list(points)

    @classmethod
    def from_profile(cls, profile: Profile) -> "DesignSpace":
        """Normalize a measurement profile exactly as Fig. 9 does:
        each axis scaled to its maximum over the data set."""
        max_latency, max_bandwidth, max_faults = profile.maxima()
        points = []
        for m in profile:
            ft = (m.config.faults_tolerated / max_faults
                  if max_faults > 0 else 0.0)
            performance = (1.0 - m.latency_us / max_latency
                           if max_latency > 0 else 0.0)
            resources = (m.bandwidth_mbps / max_bandwidth
                         if max_bandwidth > 0 else 0.0)
            points.append(DesignPoint(
                style=m.config.style, n_replicas=m.config.n_replicas,
                n_clients=m.n_clients, fault_tolerance=ft,
                performance=performance, resources=resources))
        return cls(points)

    def region(self, style: ReplicationStyle) -> List[DesignPoint]:
        """All points of one replication style (a Fig. 9 region)."""
        return [p for p in self.points if p.style is style]

    def region_bounds(self, style: ReplicationStyle
                      ) -> Dict[str, Tuple[float, float]]:
        """Axis-aligned bounding box of a style's region."""
        region = self.region(style)
        if not region:
            raise PolicyError(f"no points for style {style.value}")
        return {
            "fault_tolerance": _bounds([p.fault_tolerance for p in region]),
            "performance": _bounds([p.performance for p in region]),
            "resources": _bounds([p.resources for p in region]),
        }

    def regions_overlap(self, a: ReplicationStyle,
                        b: ReplicationStyle) -> bool:
        """Do two styles' regions overlap?

        Formalization of Fig. 9's "the two regions are non-overlapping":
        each measured point represents one operating condition
        (fault-tolerance level x offered load).  The regions are
        disjoint when, at every *matched* condition, the two styles'
        points are strictly separated on the performance axis.
        (Comparing points across different loads is not meaningful: a
        lightly loaded passive system can outrun a saturated active
        one, but they are not the same operating point.)
        """
        for pa in self.region(a):
            for pb in self.region(b):
                if pa.fault_tolerance != pb.fault_tolerance:
                    continue
                if pa.n_clients != pb.n_clients:
                    continue
                if pa.performance == pb.performance:
                    return True
        return False

    def coverage_volume(self) -> float:
        """Fraction of the unit cube inside the union of region boxes —
        a crude 'how much of the design space do we span' number that
        grows as more styles/configurations are added (Fig. 1's point:
        versatile dependability covers a region, not a point)."""
        boxes = []
        for style in {p.style for p in self.points}:
            bounds = self.region_bounds(style)
            boxes.append(bounds)
        # Monte-Carlo-free approximation: sum of box volumes capped at 1
        # (regions are disjoint in practice, per Fig. 9).
        total = 0.0
        for bounds in boxes:
            volume = 1.0
            for low, high in bounds.values():
                volume *= max(high - low, 0.0)
            total += volume
        return min(total, 1.0)


def _bounds(values: List[float]) -> Tuple[float, float]:
    return min(values), max(values)


def _between(x: float, y: float, slack: float) -> bool:
    return abs(x - y) <= slack


def _intervals_overlap(a: Tuple[float, float],
                       b: Tuple[float, float]) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]
