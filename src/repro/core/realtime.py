"""The real-time-guarantees high-level knob (paper Table 1, row 3).

Table 1 maps "Real-Time Guarantees" onto *all three* low-level knobs
(replication style, number of replicas, checkpointing frequency) plus
the full set of application parameters.  The knob's contract is a
probabilistic deadline: "round trips complete within D µs with
probability at least p".

Selection uses the empirical profile's latency mean and jitter: under
a one-sided Chebyshev/Cantelli bound, a configuration with mean m and
standard deviation s meets the deadline D with probability at least
1 - s² / (s² + (D - m)²) whenever m < D.  Among the qualifying
configurations the knob maximizes fault-tolerance and breaks ties by
the lowest mean latency (the tightest real-time behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.measurements import Measurement, Profile
from repro.errors import ContractViolation, PolicyError


@dataclass(frozen=True)
class RealTimeRequirement:
    """A probabilistic deadline contract."""

    deadline_us: float
    confidence: float = 0.99

    def __post_init__(self) -> None:
        if self.deadline_us <= 0:
            raise PolicyError("deadline must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise PolicyError("confidence must be in (0, 1)")


def deadline_meet_probability(mean_us: float, jitter_us: float,
                              deadline_us: float) -> float:
    """Lower bound on P(latency <= deadline) via Cantelli's
    inequality.  Returns 0 when the mean already misses the deadline
    (no distribution-free guarantee is possible)."""
    if mean_us >= deadline_us:
        return 0.0
    if jitter_us <= 0.0:
        return 1.0
    slack = deadline_us - mean_us
    variance = jitter_us * jitter_us
    return slack * slack / (variance + slack * slack)


@dataclass(frozen=True)
class RealTimeEntry:
    """The selected configuration for one (requirement, load) pair."""

    measurement: Measurement
    guaranteed_probability: float


class RealTimePolicy:
    """Configuration selection for probabilistic deadlines.

    Synthesized from the same empirical profile as the scalability
    policy; queried per client load.
    """

    def __init__(self, profile: Profile):
        if len(profile) == 0:
            raise PolicyError("empty profile")
        self.profile = profile

    def best_configuration(self, requirement: RealTimeRequirement,
                           n_clients: int) -> RealTimeEntry:
        """The qualifying configuration with the best fault-tolerance,
        ties broken by the lowest mean latency.

        Raises :class:`ContractViolation` when no configuration can
        guarantee the deadline at the requested confidence — the
        operator must relax the contract (the paper's degraded-
        contract negotiation, Section 3.1).
        """
        candidates = []
        for measurement in self.profile.for_clients(n_clients):
            probability = deadline_meet_probability(
                measurement.latency_us, measurement.jitter_us,
                requirement.deadline_us)
            if probability >= requirement.confidence:
                candidates.append((measurement, probability))
        if not candidates:
            raise ContractViolation(
                f"no configuration guarantees {requirement.deadline_us} us "
                f"at confidence {requirement.confidence} with "
                f"{n_clients} clients; offer a degraded contract")
        best_ft = max(m.config.faults_tolerated for m, _ in candidates)
        finalists = [(m, p) for m, p in candidates
                     if m.config.faults_tolerated == best_ft]
        measurement, probability = min(
            finalists, key=lambda pair: (pair[0].latency_us,
                                         pair[0].config.label))
        return RealTimeEntry(measurement=measurement,
                             guaranteed_probability=probability)

    def tightest_feasible_deadline(self, n_clients: int,
                                   confidence: float = 0.99,
                                   resolution_us: float = 50.0
                                   ) -> Optional[float]:
        """The smallest deadline some configuration can guarantee at
        the given confidence (binary search over the profile)."""
        measurements = self.profile.for_clients(n_clients)
        if not measurements:
            return None
        low = min(m.latency_us for m in measurements)
        high = max(m.latency_us + 100 * max(m.jitter_us, 1.0)
                   for m in measurements)
        requirement = None
        while high - low > resolution_us:
            mid = (low + high) / 2.0
            feasible = any(
                deadline_meet_probability(m.latency_us, m.jitter_us, mid)
                >= confidence for m in measurements)
            if feasible:
                high = mid
            else:
                low = mid
        return high


class RealTimeKnob:
    """High-level knob: set a (deadline, confidence) contract; the
    knob drives the style and redundancy low-level knobs to the
    selected configuration for the current load."""

    def __init__(self, policy: RealTimePolicy, style_knob,
                 replicas_knob):
        self.policy = policy
        self._style_knob = style_knob
        self._replicas_knob = replicas_knob
        self.current: Optional[RealTimeRequirement] = None
        self.last_entry: Optional[RealTimeEntry] = None

    def set(self, requirement: RealTimeRequirement,
            n_clients: int) -> RealTimeEntry:
        """Apply the configuration selected for the requirement."""
        entry = self.policy.best_configuration(requirement, n_clients)
        config = entry.measurement.config
        if config.n_replicas >= (self._replicas_knob.get() or 0):
            self._replicas_knob.set(config.n_replicas)
            self._style_knob.set(config.style)
        else:
            self._style_knob.set(config.style)
            self._replicas_knob.set(config.n_replicas)
        self.current = requirement
        self.last_entry = entry
        return entry
