"""Core: versatile dependability's knobs, policies, cost model and
design space — the paper's primary contribution.

Public surface:

- :class:`Constraints`, :class:`CostFunction` — Section 4.3's limits
  and tie-breaking heuristic
- :class:`ConfigPoint`, :class:`Measurement`, :class:`Profile` —
  empirical profile data
- :class:`ScalabilityPolicy`, :class:`PolicyEntry` — Table 2 synthesis
- :class:`ThresholdSwitchPolicy` — Fig. 6's adaptive-replication rule
- knobs: :class:`ReplicationStyleKnob`, :class:`NumReplicasKnob`,
  :class:`CheckpointIntervalKnob` (low-level);
  :class:`ScalabilityKnob`, :class:`AvailabilityKnob` with
  :class:`AvailabilityModel` (high-level)
- :class:`DesignSpace`, :class:`DesignPoint` — Fig. 1/9 model
- :data:`TABLE_1`, :class:`KnobMapping` — the knob-mapping table
"""

from repro.core.cost import Constraints, CostFunction
from repro.core.design_space import DesignPoint, DesignSpace
from repro.core.knobs import (
    AvailabilityKnob,
    AvailabilityModel,
    CheckpointIntervalKnob,
    Knob,
    NumReplicasKnob,
    ReplicationStyleKnob,
    ScalabilityKnob,
)
from repro.core.markov import (
    RepairableGroupModel,
    failover_window_for_style,
    plan_redundancy,
)
from repro.core.measurements import ConfigPoint, Measurement, Profile
from repro.core.policies import (
    PolicyEntry,
    ScalabilityPolicy,
    ThresholdSwitchPolicy,
)
from repro.core.realtime import (
    RealTimeEntry,
    RealTimeKnob,
    RealTimePolicy,
    RealTimeRequirement,
    deadline_meet_probability,
)
from repro.core.table1 import (
    APPLICATION_PARAMETERS,
    LOW_LEVEL_KNOBS,
    TABLE_1,
    KnobMapping,
    validate_table,
)

__all__ = [
    "APPLICATION_PARAMETERS",
    "AvailabilityKnob",
    "AvailabilityModel",
    "CheckpointIntervalKnob",
    "ConfigPoint",
    "Constraints",
    "CostFunction",
    "DesignPoint",
    "DesignSpace",
    "Knob",
    "KnobMapping",
    "LOW_LEVEL_KNOBS",
    "Measurement",
    "NumReplicasKnob",
    "PolicyEntry",
    "Profile",
    "RealTimeEntry",
    "RepairableGroupModel",
    "RealTimeKnob",
    "RealTimePolicy",
    "RealTimeRequirement",
    "ReplicationStyleKnob",
    "ScalabilityKnob",
    "ScalabilityPolicy",
    "TABLE_1",
    "ThresholdSwitchPolicy",
    "deadline_meet_probability",
    "failover_window_for_style",
    "plan_redundancy",
    "validate_table",
]
